#!/usr/bin/env python3
"""Scheduling past basic blocks: the section 7 "ongoing work" extension.

Run:  python examples/control_flow.py

The 1990 paper schedules single basic blocks and defers "arbitrary
control flow" to future work.  The :mod:`repro.flow` extension implements
the conservative version of that plan: a structured program (while/if
over the same assignment language) is lowered to a control-flow graph,
every block is scheduled with the unmodified section 4 algorithms, and a
machine-wide barrier at each block boundary re-zeroes the timing skew so
each block starts from the exact-synchrony state the intra-block
analysis assumes.

The script compiles a small GCD-flavoured kernel, shows the CFG and the
per-block schedules, then executes the program dynamically on the SBM --
verifying both the *values* (against the reference interpreter) and the
*timing* (every dynamic block instance is checked for dependence
soundness, and the total time must fall inside the compile-time bound of
the taken path).
"""

from repro.core import SchedulerConfig
from repro.flow import (
    build_cfg,
    execute_flow_schedule,
    parse_program,
    run_program,
    schedule_program,
)

SOURCE = """
// iterative gcd with a bit of extra arithmetic per iteration
steps = 0
while (b) {
    t = a % b
    a = b
    b = t
    steps = steps + 1
}
check = a * steps
"""


def main() -> None:
    program = parse_program(SOURCE)
    cfg = build_cfg(program)
    print("== control-flow graph ==")
    print(cfg.render())

    flow = schedule_program(program, SchedulerConfig(n_pes=4, seed=3))
    print("\n== per-block schedules ==")
    print(flow.describe())

    env = {"a": 252, "b": 105}
    reference = run_program(program, env)
    trace = execute_flow_schedule(flow, env, rng=1)
    print("\n== one dynamic execution ==")
    print(trace.describe())
    bound = flow.static_path_bound(trace.block_sequence)
    print(f"total time {trace.total_time} within compile-time path bound {bound}")

    final = trace.final_state()
    assert all(final[k] == reference[k] for k in reference)
    print(f"values verified against the reference interpreter: "
          f"gcd={final['a']} after {final['steps']} iterations "
          f"(check={final['check']})")


if __name__ == "__main__":
    main()
