#!/usr/bin/env python3
"""Barrier MIMD vs VLIW vs conventional MIMD on one workload (section 6).

Run:  python examples/vliw_comparison.py

The paper's central architectural argument in miniature:

* a VLIW must budget every instruction at its maximum latency -- its
  clock can never profit when a Load hits in cache or a multiply
  early-outs;
* a conventional MIMD pays a runtime synchronization for every
  cross-processor value, even after Shaffer-style transitive reduction;
* the barrier MIMD resolves most synchronizations statically and lets
  execution finish anywhere inside the compiler-proven [min,max] window.

The script schedules a corpus of synthetic benchmarks for all three
models and prints average completion times and synchronization counts.
"""

import random
import statistics

from repro import (
    GeneratorConfig,
    MachineProgram,
    SchedulerConfig,
    schedule_dag,
    simulate_conventional_mimd,
    simulate_sbm,
    vliw_schedule,
)
from repro.machine.durations import UniformSampler
from repro.synth.corpus import generate_cases

N_PES = 8
N_BENCHMARKS = 25


def main() -> None:
    gen = GeneratorConfig(n_statements=60, n_variables=10)
    vliw_times, sbm_times, mimd_times = [], [], []
    sbm_syncs, mimd_syncs = [], []

    for case in generate_cases(gen, N_BENCHMARKS, master_seed=6):
        seed = case.seed & 0xFFFFFFFF
        vliw = vliw_schedule(case.dag, N_PES)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=N_PES, seed=seed))
        program = MachineProgram.from_schedule(result.schedule)

        # average of a few stochastic runs (real executions, verified)
        runs = []
        for k in range(5):
            trace = simulate_sbm(program, UniformSampler(), rng=k)
            trace.assert_sound(program.edges)
            runs.append(trace.makespan)

        conventional = simulate_conventional_mimd(
            result.schedule, UniformSampler(), rng=seed, sync_latency=2
        )

        vliw_times.append(vliw.makespan)
        sbm_times.append(statistics.mean(runs))
        mimd_times.append(conventional.makespan)
        sbm_syncs.append(result.counts.barriers_final)
        mimd_syncs.append(conventional.n_after_reduction)

    mean = statistics.mean
    v = mean(vliw_times)
    print(f"{N_BENCHMARKS} benchmarks, 60 statements, 10 variables, {N_PES} PEs\n")
    print(f"{'model':<22}{'completion':>12}{'vs VLIW':>10}{'runtime syncs':>16}")
    print("-" * 60)
    print(f"{'VLIW (lock-step)':<22}{v:>12.1f}{1.0:>10.2f}{'0 (by clock)':>16}")
    print(
        f"{'barrier MIMD (SBM)':<22}{mean(sbm_times):>12.1f}"
        f"{mean(sbm_times) / v:>10.2f}{mean(sbm_syncs):>16.1f}"
    )
    print(
        f"{'conventional MIMD':<22}{mean(mimd_times):>12.1f}"
        f"{mean(mimd_times) / v:>10.2f}{mean(mimd_syncs):>16.1f}"
    )
    print(
        "\nThe barrier MIMD runs VLIW-class schedules while executing only "
        "a handful\nof barriers -- and unlike the VLIW it speeds up whenever "
        "variable-time\ninstructions finish early."
    )


if __name__ == "__main__":
    main()
