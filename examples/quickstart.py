#!/usr/bin/env python3
"""Quickstart: compile a basic block and schedule it on a barrier MIMD.

Run:  python examples/quickstart.py

Walks the shortest path through the library: write a tiny program in the
mini language, compile it to an instruction DAG, schedule it on an
8-processor Static Barrier MIMD, and look at what the compiler did with
every producer/consumer synchronization.
"""

from repro import (
    SchedulerConfig,
    compile_source,
    fractions_of,
    schedule_dag,
    render_embedding,
)

SOURCE = """
// A little fixed-point kernel: loads, cheap ALU ops, one multiply.
scale  = gain * x
biased = scale + offset
clip   = biased & mask
delta  = clip - x
y      = delta + y
err    = y % 255
"""


def main() -> None:
    # Front end: parse -> tuples -> local optimizations -> instruction DAG.
    dag = compile_source(SOURCE)
    print(f"{len(dag)} instructions, "
          f"{dag.implied_synchronizations} implied synchronizations, "
          f"critical path {dag.critical_path()} time units\n")

    # The paper's list scheduler with conservative barrier insertion.
    result = schedule_dag(dag, SchedulerConfig(n_pes=8, seed=0))

    # Figure 9 style barrier embedding: columns are processors, '=' rules
    # are barriers, time flows downward.
    print(render_embedding(result.schedule))
    print()

    # How was each synchronization discharged?
    print(result.describe())
    print(fractions_of(result).render())
    print(f"\nThe schedule completes in {result.makespan} time units "
          f"(every execution, for any realization of the variable-time "
          f"instructions, lands in this interval).")


if __name__ == "__main__":
    main()
