#!/usr/bin/env python3
"""Characterize real kernels on a barrier MIMD (the library as a tool).

Run:  python examples/workload_characterization.py

Uses the curated kernel suite (`repro.synth.kernels`) the way an
architect would: for each kernel, schedule it, read the quality report
(barrier widths, utilization, imbalance), and decide whether the kernel
is barrier-bound, serial-bound, or nicely parallel.  Also exports one
kernel's instruction DAG and barrier dag as Graphviz DOT files.
"""

from pathlib import Path

from repro import SchedulerConfig, compile_block, schedule_dag
from repro.analysis import analyze_schedule
from repro.synth.kernels import KERNELS
from repro.viz import barrier_dag_to_dot, instruction_dag_to_dot

N_PES = 4


def classify(report) -> str:
    if report.fractions.serialized > 0.8:
        return "serial-bound (one long chain; barriers irrelevant)"
    if report.fractions.barrier > 0.3:
        return "barrier-bound (fine-grain sharing; wants cheaper barriers)"
    if report.utilization.utilization > 0.5:
        return "nicely parallel (machine well used)"
    return "width-limited (parallel but short)"


def main() -> None:
    print(f"kernel characterization on a {N_PES}-PE SBM\n")
    for name, kernel in KERNELS.items():
        dag = compile_block(kernel.block())
        result = schedule_dag(dag, SchedulerConfig(n_pes=N_PES, seed=0))
        report = analyze_schedule(result)
        print(f"== {name}: {kernel.description}")
        print(report.render())
        print(f"  verdict: {classify(report)}\n")

    # Export one kernel's graphs for graphviz rendering.
    name = "matmul2"
    dag = compile_block(KERNELS[name].block())
    result = schedule_dag(dag, SchedulerConfig(n_pes=N_PES, seed=0))
    out_dir = Path("/tmp/repro-dot")
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"{name}-dag.dot").write_text(instruction_dag_to_dot(dag))
    (out_dir / f"{name}-barriers.dot").write_text(
        barrier_dag_to_dot(result.schedule)
    )
    print(f"DOT files for {name!r} written to {out_dir} "
          f"(render with: dot -Tsvg <file>)")


if __name__ == "__main__":
    main()
