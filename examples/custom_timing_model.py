#!/usr/bin/env python3
"""Architecture exploration with custom timing models (section 2.1 / 5.4).

Run:  python examples/custom_timing_model.py

The paper motivates its Load interval [1,4] with shared-bus cache/main
memory access and notes that interconnection networks make the spread
"more pronounced".  Because the timing model is a first-class parameter
here, we can ask the paper's what-if questions directly:

* an interconnection-network machine where Loads take 1..20 units;
* a machine with a pipelined (fixed 16-cycle) multiplier, the hardware
  trade-off section 2.1 discusses;
* a fully deterministic machine (every latency pinned at its minimum),
  where the compiler can resolve *everything* statically.

For each machine the script reports how the synchronization fractions
and the completion window move.
"""

from repro import DEFAULT_TIMING, GeneratorConfig, Interval, SchedulerConfig, schedule_dag
from repro.metrics.fractions import fractions_of
from repro.metrics.stats import aggregate_results
from repro.synth.corpus import generate_cases

MODELS = [
    ("Table 1 (paper)", DEFAULT_TIMING),
    ("network loads [1,20]", DEFAULT_TIMING.override(load=Interval(1, 20), name="netload")),
    ("pipelined mul [16,16]", DEFAULT_TIMING.override(mul=Interval(16, 16), name="pipemul")),
    ("no variation at all", DEFAULT_TIMING.scaled(0.0, name="deterministic")),
]

GEN = GeneratorConfig(n_statements=60, n_variables=10)
N = 30


def main() -> None:
    print(f"{N} benchmarks, 60 statements, 10 variables, 8 PEs\n")
    print(f"{'machine':<24}{'barrier':>9}{'serial':>9}{'static':>9}"
          f"{'makespan (mean)':>20}")
    print("-" * 71)
    for name, timing in MODELS:
        results = []
        for case in generate_cases(GEN, N, master_seed=11, timing=timing):
            results.append(
                schedule_dag(
                    case.dag,
                    SchedulerConfig(n_pes=8, seed=case.seed & 0xFFFFFFFF),
                )
            )
        stats = aggregate_results(results)
        print(
            f"{name:<24}{stats.barrier.mean:>9.1%}{stats.serialized.mean:>9.1%}"
            f"{stats.static.mean:>9.1%}"
            f"{stats.mean_makespan_min:>10.1f}..{stats.mean_makespan_max:<8.1f}"
        )

    print(
        "\nReading the rows: wider Load variation widens the completion\n"
        "window but barely moves the barrier fraction (the section 5.4\n"
        "sensitivity result); with no timing variation the completion\n"
        "window collapses to a point and noticeably more synchronization\n"
        "resolves statically -- the remaining barriers only align streams,\n"
        "playing the role of a VLIW's NOP padding."
    )


if __name__ == "__main__":
    main()
