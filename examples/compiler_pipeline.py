#!/usr/bin/env python3
"""Walk the compiler front end stage by stage (paper section 2).

Run:  python examples/compiler_pipeline.py

Shows how a randomly generated synthetic benchmark moves through the
pipeline the paper describes: random assignment statements -> numbered
tuples (Loads inserted at first read, Stores at assignments) -> standard
local optimizations (constant folding, CSE, dead-code elimination; note
the gaps the optimizer leaves in the tuple numbering, exactly as in
figure 1 of the paper) -> the instruction DAG with [min,max] finish
levels on infinitely many processors (the two rightmost columns of
figure 1).
"""

from repro import GeneratorConfig, generate_block, interpret
from repro.ir import generate_tuples, optimize
from repro.ir.dag import InstructionDAG


def main() -> None:
    config = GeneratorConfig(n_statements=10, n_variables=5, n_constants=3)
    block = generate_block(config, 2024)

    print("== generated source (the paper's synthetic benchmark) ==")
    print(block.source())

    raw = generate_tuples(block)
    print(f"\n== raw tuples ({len(raw)}) ==")
    print(raw.render())

    opt = optimize(raw)
    print(f"\n== optimized tuples ({len(opt)}; note the id gaps) ==")
    print(opt.render())

    # The optimizer must preserve semantics; prove it on a sample input.
    env = {name: 10 + 3 * k for k, name in enumerate(block.live_in_variables())}
    assert interpret(raw, env) == interpret(opt, env) == block.execute(env)
    print("\nsemantics check: raw == optimized == source semantics  OK")

    dag = InstructionDAG.from_program(opt)
    print("\n== instruction DAG (node, [min,max] latency, producers) ==")
    print(dag.render())

    levels = dag.finish_levels()
    print("\n== figure 1 columns: earliest [min,max] finish on infinite PEs ==")
    for node in dag.real_nodes:
        print(f"  tuple {node:>3}  {dag.tuple_of(node).render():<16} {levels[node]}")
    print(f"\ncritical path: {dag.critical_path()}  "
          f"parallelism width ~ {dag.parallelism_width():.2f}")


if __name__ == "__main__":
    main()
