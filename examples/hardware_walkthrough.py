#!/usr/bin/env python3
"""Execute one schedule on the SBM and DBM hardware models (section 3.2).

Run:  python examples/hardware_walkthrough.py

Lowers a schedule to the machine-level program (per-PE streams of ops and
wait instructions, plus the barrier bit-mask queue of figure 11), then
executes it:

* on the Static Barrier MIMD, whose FIFO queue only ever fires the head
  mask -- watch the compile-time barrier order in the queue dump;
* on the Dynamic Barrier MIMD, whose associative matching fires any
  ready barrier;
* under several instruction-duration models (all-minimum, all-maximum,
  uniform, cache-hit/miss bimodal), verifying after every run that every
  producer finished before its consumers started and that the measured
  makespan falls inside the compiler's static [min,max] bound.
"""

from repro import (
    MachineProgram,
    SchedulerConfig,
    compile_source,
    schedule_dag,
    simulate_dbm,
    simulate_sbm,
)
from repro.machine.durations import BimodalSampler, MaxSampler, MinSampler, UniformSampler
from repro.viz import render_barrier_dag, render_gantt

SOURCE = """
t0 = a * b        // 16..24 time units: the big asynchronous multiply
t1 = c + d
t2 = t1 - e
t3 = t2 & t1
u  = t0 + t3
v  = u % m        // 24..32 time units
w  = t1 | t3
"""


def main() -> None:
    dag = compile_source(SOURCE)
    result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=7))
    program = MachineProgram.from_schedule(result.schedule)

    print("== loader image ==")
    print(program.render())
    print()
    print(render_barrier_dag(result.schedule))
    print(f"\nstatic makespan bound: {result.makespan}\n")

    samplers = [
        ("all-minimum ", MinSampler()),
        ("all-maximum ", MaxSampler()),
        ("uniform     ", UniformSampler()),
        ("bimodal 80% ", BimodalSampler(p_fast=0.8)),
    ]
    for name, sampler in samplers:
        sbm = simulate_sbm(program, sampler, rng=1)
        dbm = simulate_dbm(program, sampler, rng=1)
        sbm.assert_sound(program.edges)
        dbm.assert_sound(program.edges)
        in_bound = result.makespan.lo <= sbm.makespan <= result.makespan.hi
        print(f"{name}: SBM makespan {sbm.makespan:>3}  "
              f"DBM makespan {dbm.makespan:>3}  "
              f"within static bound: {in_bound}")

    print("\n== one SBM execution, Gantt view ==")
    trace = simulate_sbm(program, UniformSampler(), rng=5)
    print(render_gantt(program, trace))


if __name__ == "__main__":
    main()
