"""Smoke + shape tests for the paper experiments (small corpora).

The full-size runs live in ``benchmarks/``; here each experiment is
exercised with a reduced corpus and its qualitative *shape* claims are
asserted where they are statistically stable at small n.
"""

import pytest

from repro.experiments import (
    ablation_lookahead,
    ablation_ordering,
    ablation_round_robin,
    ablation_timing_variation,
    figure14_scatter,
    figure15_statements,
    figure16_variables,
    figure17_processors,
    figure18_vliw,
    merging_experiment,
    optimal_vs_conservative,
    overall_ranges,
    secondary_effect,
    table1_instruction_mix,
)


class TestTable1:
    def test_mix_within_tolerance(self):
        result = table1_instruction_mix(n_blocks=120)
        assert result.max_abs_deviation < 0.02
        assert "Mul" in result.render()


class TestFigure14:
    def test_sync_filter_and_center(self):
        result = figure14_scatter(count=30, master_seed=140)
        assert len(result.points) >= 30
        # the headline: most synchronization has no runtime cost
        assert result.center_no_runtime > 0.70
        assert "center of mass" in result.render()


class TestFigure15:
    def test_shapes(self):
        result = figure15_statements(count=12, values=(5, 20, 60))
        barrier = [s.barrier.mean for s in result.stats]
        serialized = [s.serialized.mean for s in result.stats]
        static = [s.static.mean for s in result.stats]
        # serialization decreases with block size; static grows
        assert serialized[0] > serialized[-1]
        assert static[0] < static[-1]
        # all fractions within the paper's global envelope (loosened)
        assert all(0.0 <= b <= 0.35 for b in barrier)
        assert "Figure 15" in result.render()


class TestFigure16:
    def test_shapes(self):
        result = figure16_variables(count=12, values=(2, 5, 15))
        serialized = [s.serialized.mean for s in result.stats]
        barrier = [s.barrier.mean for s in result.stats]
        # serialization falls and barrier fraction rises with width
        assert serialized[0] > serialized[-1]
        assert barrier[0] < barrier[-1]


class TestFigure17:
    def test_shapes(self):
        result = figure17_processors(count=12, values=(2, 8, 32))
        barrier = [s.barrier.mean for s in result.stats]
        # barrier fraction rises until width exhausted, then ~constant
        assert barrier[0] < barrier[1]
        assert abs(barrier[2] - barrier[1]) < 0.08

    def test_processors_used_saturates(self):
        result = figure17_processors(count=8, values=(2, 32, 128))
        used = [s.mean_processors_used for s in result.stats]
        assert used[2] <= used[1] * 1.5 + 1  # no runaway processor use


class TestFigure18:
    def test_vliw_comparison_shape(self):
        result = figure18_vliw(count=10, values=(2, 8, 32))
        for bmin, bmax in zip(result.barrier_min, result.barrier_max):
            assert bmin < bmax
        # min barrier completion is well below VLIW (paper: ~25% lower)
        assert min(result.barrier_min) < 0.85
        # max barrier completion is near VLIW
        assert all(0.8 <= bmax <= 1.35 for bmax in result.barrier_max)
        assert "Figure 18" in result.render()

    def test_vliw_mostly_optimal(self):
        result = figure18_vliw(count=10, values=(8,))
        assert result.vliw_optimal_fraction[0] >= 0.7


class TestOverallRanges:
    def test_envelope(self):
        result = overall_ranges(count_per_point=3)
        assert result.barrier_range[1] <= 0.40
        assert result.serialized_range[1] >= 0.60
        assert result.mean_no_runtime > 0.55
        assert "paper" in result.render()


class TestMerging:
    def test_reduction_and_completion(self):
        result = merging_experiment(count=10, n_runs=2)
        assert result.mean_barriers_merged < result.mean_barriers_unmerged
        assert result.reduction > 0.10
        assert result.static_merged > result.static_unmerged
        # SBM and DBM completion "quite close"
        ratio = result.sbm_mean_completion / result.dbm_mean_completion
        assert 0.8 <= ratio <= 1.3
        assert "merging" in result.render().lower()


class TestAblations:
    def test_round_robin(self):
        result = ablation_round_robin(count=10, values=(4, 16))
        for base, rr in zip(result.baseline, result.variant):
            assert rr.serialized.mean < base.serialized.mean
            assert rr.barrier.mean > base.barrier.mean
        # serialization nearly vanishes for many PEs
        assert result.variant[-1].serialized.mean < 0.15

    def test_ordering_changes_small(self):
        result = ablation_ordering(count=10, values=(8,))
        base, var = result.baseline[0], result.variant[0]
        assert abs(base.mean_makespan_max - var.mean_makespan_max) < (
            0.35 * base.mean_makespan_max
        )

    def test_lookahead_increases_serialization(self):
        result = ablation_lookahead(count=12, values=(2, 8))
        gains = [
            v.serialized.mean - b.serialized.mean
            for b, v in zip(result.baseline, result.variant)
        ]
        assert max(gains) > -0.02  # never a large loss; typically a gain

    def test_timing_variation_insensitive(self):
        result = ablation_timing_variation(count=10, factors=(0.5, 4.0))
        spread = max(result.barrier_fraction) - min(result.barrier_fraction)
        assert spread < 0.15  # "not very sensitive"


class TestSecondaryEffect:
    def test_fraction_in_plausible_band(self):
        result = secondary_effect(count=25)
        assert 0.10 <= result.timing_only_fraction <= 0.45
        assert result.broad_fraction >= result.timing_only_fraction
        assert "28%" in result.render()


class TestOptimalVsConservative:
    def test_optimal_never_worse(self):
        result = optimal_vs_conservative(count=15)
        assert result.mean_barriers_optimal <= result.mean_barriers_conservative + 0.3
        assert result.n_cases == 15


class TestBarrierCost:
    def test_monotone_makespan(self):
        from repro.experiments import barrier_cost_experiment

        result = barrier_cost_experiment(count=8, latencies=(0, 2, 8))
        assert list(result.mean_makespan_max) == sorted(result.mean_makespan_max)
        assert result.mean_makespan_max[-1] > result.mean_makespan_max[0]
        assert "latency" in result.render()


class TestFlowOverhead:
    def test_values_and_bounds(self):
        from repro.experiments import flow_overhead_experiment

        result = flow_overhead_experiment(count=6)
        assert result.value_mismatches == 0
        assert result.mean_total_time <= result.mean_path_bound_hi
        assert "boundary" in result.render()
