"""Tests for the generic experiment runner and sweeps."""

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_corpus, run_point, sweep
from repro.experiments.render import line_chart, scatter_plot, table
from repro.synth.generator import GeneratorConfig


def small_point(**kw):
    return ExperimentPoint(
        generator=GeneratorConfig(n_statements=15, n_variables=6),
        scheduler=SchedulerConfig(n_pes=4),
        count=5,
        master_seed=1,
        **kw,
    )


class TestRunners:
    def test_run_corpus_count(self):
        results = run_corpus(small_point())
        assert len(results) == 5

    def test_run_point_reduces(self):
        stats = run_point(small_point())
        assert stats.n_benchmarks == 5

    def test_deterministic(self):
        s1 = run_point(small_point())
        s2 = run_point(small_point())
        assert s1.barrier.mean == s2.barrier.mean

    def test_sweep_generator_axis(self):
        out = sweep(small_point(), "generator.n_statements", [5, 10])
        assert [v for v, _ in out] == [5, 10]
        assert out[1][1].mean_implied_syncs > out[0][1].mean_implied_syncs

    def test_sweep_scheduler_axis(self):
        out = sweep(small_point(), "scheduler.n_pes", [1, 4])
        one_pe = out[0][1]
        assert one_pe.serialized.mean == pytest.approx(1.0)

    def test_sweep_bad_axis(self):
        with pytest.raises(ValueError):
            sweep(small_point(), "a.b.c", [1])

    def test_with_override(self):
        point = small_point().with_(count=2)
        assert point.count == 2


class TestRender:
    def test_table_alignment(self):
        text = table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines))) == 1  # equal widths

    def test_line_chart_contains_legend(self):
        text = line_chart([1, 2, 3], {"s": [0.1, 0.2, 0.3]}, y_max=1.0)
        assert "legend" in text and "B=s" in text

    def test_line_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [0.1]})

    def test_line_chart_overlap_glyph(self):
        text = line_chart([1], {"a": [0.5], "b": [0.5]}, y_max=1.0)
        assert "*" in text

    def test_scatter_plot_density(self):
        text = scatter_plot([(0.5, 0.5)] * 3, width=20, height=10)
        assert "3" in text

    def test_scatter_plot_overflow_marker(self):
        text = scatter_plot([(0.5, 0.5)] * 12, width=20, height=10)
        assert "#" in text
