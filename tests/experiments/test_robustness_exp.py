"""Tests for the robustness experiment and its aggregation layer."""

import math

import pytest

from repro.experiments.robustness_exp import (
    DEFAULT_EPSILONS,
    robustness_experiment,
)
from repro.metrics.robustness import CaseRobustness, aggregate_robustness


def small_result(**kw):
    defaults = dict(
        count=3,
        epsilons=(0.0, 0.25),
        runs=5,
        n_statements=20,
        n_pes=4,
        master_seed=0,
    )
    defaults.update(kw)
    return robustness_experiment(**defaults)


class TestRobustnessExperiment:
    def test_one_point_per_epsilon(self):
        result = small_result()
        assert [p.epsilon for p in result.points] == [0.0, 0.25]
        assert all(p.n_cases == 3 for p in result.points)

    def test_epsilon_zero_row_is_race_free(self):
        result = small_result()
        zero = result.points[0]
        assert zero.epsilon == 0.0
        assert zero.racy_fraction == 0.0
        assert zero.racy_fraction_hardened == 0.0
        assert zero.n_deadlocks == 0

    def test_hardening_never_increases_racy_fraction(self):
        result = small_result(epsilons=(0.25, 0.5))
        for point in result.points:
            assert point.racy_fraction_hardened <= point.racy_fraction

    def test_render_is_a_fault_tolerance_curve(self):
        result = small_result()
        text = result.render()
        assert "fault-tolerance curve" in text
        for column in ("eps", "racy", "hardened-racy", "+barriers"):
            assert column in text

    def test_deterministic(self):
        a = small_result()
        b = small_result()
        assert a == b

    def test_default_epsilons_start_at_zero(self):
        # The eps = 0 row doubles as a soundness regression: the curve
        # must always show the fault-free baseline.
        assert DEFAULT_EPSILONS[0] == 0.0
        assert list(DEFAULT_EPSILONS) == sorted(DEFAULT_EPSILONS)


class TestAggregateRobustness:
    def _case(self, **kw):
        defaults = dict(
            epsilon=0.25,
            n_timing_edges=4,
            epsilon_star=0.5,
            races_unhardened=1,
            races_hardened=0,
            extra_barriers=2,
            makespan_overhead=0.1,
        )
        defaults.update(kw)
        return CaseRobustness(**defaults)

    def test_aggregates_fractions(self):
        point = aggregate_robustness(
            [self._case(), self._case(races_unhardened=0, extra_barriers=0)]
        )
        assert point.n_cases == 2
        assert point.racy_fraction == pytest.approx(0.5)
        assert point.racy_fraction_hardened == 0.0
        assert point.mean_extra_barriers == pytest.approx(1.0)

    def test_covered_fraction_counts_epsilon_star(self):
        covered = self._case(epsilon_star=0.5)  # eps* >= eps: covered
        exposed = self._case(epsilon_star=0.1)
        point = aggregate_robustness([covered, exposed])
        assert point.covered_fraction == pytest.approx(0.5)

    def test_infinite_epsilon_star_counts_as_covered(self):
        point = aggregate_robustness([self._case(epsilon_star=math.inf)])
        assert point.covered_fraction == 1.0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_robustness([])

    def test_mixed_epsilon_batch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_robustness([self._case(epsilon=0.1), self._case(epsilon=0.2)])
