"""Tests for SBM barrier merging (section 4.4.3)."""

import random

import pytest

from repro.timing import Interval
from repro.core.merging import (
    find_merge_candidate,
    merge_all_overlapping,
    merge_new_barrier,
)
from repro.core.schedule import Schedule
from repro.ir.dag import InstructionDAG

from tests.conftest import make_case


def independent_pairs_dag():
    """Two disjoint producer/consumer pairs on four PEs."""
    return InstructionDAG.build(
        {
            "g1": Interval(1, 4),
            "i1": Interval(1, 1),
            "g2": Interval(1, 4),
            "i2": Interval(1, 1),
        },
        [("g1", "i1"), ("g2", "i2")],
    )


def build_two_parallel_barriers():
    """Barriers over {0,1} and {2,3}, both firing in [1,4]: unordered and
    overlapping -> merge candidates."""
    sched = Schedule(independent_pairs_dag(), 4)
    sched.append_instruction(0, "g1")
    sched.append_instruction(2, "g2")
    b1 = sched.insert_barrier({0: 2, 1: 1})
    b2 = sched.insert_barrier({2: 2, 3: 1})
    sched.append_instruction(1, "i1")
    sched.append_instruction(3, "i2")
    return sched, b1, b2


class TestFindCandidate:
    def test_overlapping_unordered_found(self):
        sched, b1, b2 = build_two_parallel_barriers()
        assert find_merge_candidate(sched, b1) is b2

    def test_ordered_pair_not_candidates(self):
        sched, b1, b2 = build_two_parallel_barriers()
        # Chain them: a third barrier ordering b1 before b2 via PE1/PE3 is
        # complex; instead check the hb order directly after merging the
        # streams: here we simply verify same-PE chained barriers are
        # never candidates.
        b3 = sched.insert_barrier({0: len(sched.streams[0])})
        assert find_merge_candidate(sched, b3) is not b1  # b1 < b3 on PE0

    def test_disjoint_windows_not_candidates(self):
        dag = InstructionDAG.build(
            {
                "fast": Interval(1, 1),
                "slow": Interval(30, 30),
                "c1": Interval(1, 1),
                "c2": Interval(1, 1),
            },
            [("fast", "c1"), ("slow", "c2")],
        )
        sched = Schedule(dag, 4)
        sched.append_instruction(0, "fast")
        sched.append_instruction(2, "slow")
        b1 = sched.insert_barrier({0: 2, 1: 1})   # fires [1,1]
        b2 = sched.insert_barrier({2: 2, 3: 1})   # fires [30,30]
        assert find_merge_candidate(sched, b1) is None
        assert find_merge_candidate(sched, b2) is None


class TestMergeNewBarrier:
    def test_merge_unions_participants(self):
        sched, b1, b2 = build_two_parallel_barriers()
        absorbed = merge_new_barrier(sched, b1)
        assert absorbed == 1
        assert b1.participants == {0, 1, 2, 3}
        assert sched.n_barriers == 1
        # b2 is gone from every stream
        for stream in sched.streams:
            assert b2 not in stream

    def test_merged_schedule_still_consistent(self):
        sched, b1, b2 = build_two_parallel_barriers()
        merge_new_barrier(sched, b1)
        sched.barrier_dag()  # no cycle
        fire = sched.fire_times()
        assert fire[b1.id] == Interval(1, 4)

    def test_merge_fires_at_join(self):
        # different windows that overlap: merged barrier waits for both.
        dag = InstructionDAG.build(
            {
                "a": Interval(1, 4),
                "b": Interval(2, 6),
                "c1": Interval(1, 1),
                "c2": Interval(1, 1),
            },
            [("a", "c1"), ("b", "c2")],
        )
        sched = Schedule(dag, 4)
        sched.append_instruction(0, "a")
        sched.append_instruction(2, "b")
        b1 = sched.insert_barrier({0: 2, 1: 1})
        b2 = sched.insert_barrier({2: 2, 3: 1})
        merge_new_barrier(sched, b1)
        assert sched.fire_times()[b1.id] == Interval(2, 6)


class TestMergeAllOverlapping:
    def test_sweep_reaches_fixpoint(self):
        sched, b1, b2 = build_two_parallel_barriers()
        assert merge_all_overlapping(sched) == 1
        assert merge_all_overlapping(sched) == 0

    def test_sweep_respects_data_edge_order(self):
        """Two barriers whose windows overlap but where an instruction
        data edge forces one before the other must NOT merge."""
        dag = InstructionDAG.build(
            {
                "g": Interval(1, 10),
                "i": Interval(1, 10),
                "x": Interval(1, 10),
                "y": Interval(1, 1),
            },
            [("g", "i")],
        )
        sched = Schedule(dag, 4)
        sched.append_instruction(0, "g")
        b1 = sched.insert_barrier({0: 2, 1: 1})  # after g, fires [1,10]
        sched.append_instruction(1, "i")         # i after b1 on PE1
        sched.append_instruction(2, "x")
        b2 = sched.insert_barrier({1: 3, 2: 2})  # after i on PE1: b1 <hb b2
        sched.append_instruction(2, "y")
        assert sched.hb_barrier_ordered(b1.id, b2.id)
        merged = merge_all_overlapping(sched)
        assert merged == 0
        assert sched.n_barriers == 2


def naive_merge_all_overlapping(schedule):
    """The pre-worklist implementation: a full O(B^2) re-scan of every
    pair after every merge.  Kept here as the reference fixpoint the
    cached-verdict worklist must reproduce exactly."""
    absorbed = 0
    while True:
        fire = schedule.fire_times()
        barriers = schedule.barriers()
        pair = None
        for a_idx, a in enumerate(barriers):
            for b in barriers[a_idx + 1:]:
                if schedule.hb_barrier_ordered(a.id, b.id):
                    continue
                if fire[a.id].overlaps(fire[b.id]):
                    pair = (a, b)
                    break
            if pair:
                break
        if pair is None:
            return absorbed
        survivor, victim = pair
        survivor.absorb(victim)
        schedule.replace_barrier(victim, survivor)
        absorbed += 1


def build_random_schedule(seed):
    """A deterministic barrier-heavy schedule: replaying the same seed
    yields identical streams and identical barrier ids."""
    rng = random.Random(seed)
    case = make_case(n_statements=20, n_variables=5, seed=seed)
    n_pes = 4
    sched = Schedule(case.dag, n_pes)
    for node in case.dag.real_nodes:
        sched.append_instruction(rng.randrange(n_pes), node)
        if rng.random() < 0.45:
            pes = [
                pe for pe in range(n_pes)
                if len(sched.streams[pe]) > 1 and rng.random() < 0.5
            ]
            placements = {
                pe: rng.randint(1, len(sched.streams[pe])) for pe in pes
            }
            if placements and not sched.insertion_creates_hb_cycle(
                placements
            ):
                sched.insert_barrier(placements)
    return sched


class TestWorklistMatchesNaiveRescan:
    """The worklist sweep must produce the *same merge sequence* -- and
    therefore the same surviving barriers, participants, and fire times
    -- as a full pair re-scan after every merge."""

    @pytest.mark.parametrize("seed", range(12))
    def test_same_fixpoint_on_random_schedules(self, seed):
        reference = build_random_schedule(seed)
        candidate = build_random_schedule(seed)
        ref_ids = sorted(b.id for b in reference.barriers())
        assert ref_ids == sorted(b.id for b in candidate.barriers())

        ref_absorbed = naive_merge_all_overlapping(reference)
        new_absorbed = merge_all_overlapping(candidate)

        assert new_absorbed == ref_absorbed
        ref_by_id = {b.id: b for b in reference.barriers()}
        new_by_id = {b.id: b for b in candidate.barriers()}
        assert sorted(ref_by_id) == sorted(new_by_id)
        for bid, b in ref_by_id.items():
            assert new_by_id[bid].participants == b.participants
        assert reference.fire_times() == candidate.fire_times()

    def test_second_sweep_is_a_no_op(self):
        sched = build_random_schedule(3)
        merge_all_overlapping(sched)
        assert merge_all_overlapping(sched) == 0
