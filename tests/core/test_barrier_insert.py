"""Tests for edge classification and barrier insertion (section 4.4).

Includes a faithful reconstruction of the figure 13 scenario where the
conservative algorithm inserts a needless barrier and the optimal
algorithm does not.
"""

import pytest

from repro.timing import Interval
from repro.core.barrier_insert import (
    BarrierInserter,
    ResolutionKind,
    choose_safe_placements,
    classify_edge,
)
from repro.core.schedule import Schedule
from repro.ir.dag import InstructionDAG

from tests.conftest import chain_dag


def two_pe_producer_consumer(producer_latency, consumer_pad=()):
    """g on PE0; optional padding instructions then i on PE1."""
    latencies = {"g": Interval(*producer_latency), "i": Interval(1, 1)}
    for k, pad in enumerate(consumer_pad):
        latencies[f"pad{k}"] = Interval(*pad)
    dag = InstructionDAG.build(latencies, [("g", "i")])
    sched = Schedule(dag, 2)
    sched.append_instruction(0, "g")
    for k in range(len(consumer_pad)):
        sched.append_instruction(1, f"pad{k}")
    sched.append_instruction(1, "i")
    return sched


class TestClassifySerialized:
    def test_same_pe(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        sched.append_instruction(0, 1)
        assert classify_edge(sched, 0, 1).kind is ResolutionKind.SERIALIZED

    def test_inverted_same_pe_order_rejected(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 1)
        sched.append_instruction(0, 0)
        with pytest.raises(ValueError):
            classify_edge(sched, 0, 1)


class TestClassifyTiming:
    def test_padded_consumer_resolves_statically(self):
        # producer [1,4]; consumer preceded by [16,24] of work: the
        # consumer cannot start before t=16 > 4 -> no barrier (figure 4).
        sched = two_pe_producer_consumer((1, 4), consumer_pad=((16, 24),))
        verdict = classify_edge(sched, "g", "i")
        assert verdict.kind is ResolutionKind.TIMING
        assert verdict.dominator == sched.initial_barrier.id
        assert not verdict.secondary  # resolved straight from b0

    def test_unpadded_consumer_needs_barrier(self):
        sched = two_pe_producer_consumer((1, 4))
        assert classify_edge(sched, "g", "i").kind is ResolutionKind.BARRIER

    def test_exact_boundary_resolves(self):
        # producer max 4; consumer padded by exactly [4,4]: start_min == 4
        # == finish_max -> no barrier needed (>= comparison).
        sched = two_pe_producer_consumer((1, 4), consumer_pad=((4, 4),))
        assert classify_edge(sched, "g", "i").kind is ResolutionKind.TIMING


class TestInsertion:
    def test_barrier_inserted_after_g_before_i(self):
        sched = two_pe_producer_consumer((1, 4))
        inserter = BarrierInserter(sched)
        outcome = inserter.ensure_edge("g", "i")
        assert outcome.kind is ResolutionKind.BARRIER
        bar = outcome.barrier
        assert bar.participants == {0, 1}
        # g before the barrier on PE0; barrier before i on PE1
        assert sched.next_barrier_after(0, sched.position_of("g")[1]) is bar
        pe, idx = sched.position_of("i")
        assert sched.last_barrier_before(pe, idx) is bar

    def test_edge_resolved_after_insertion(self):
        sched = two_pe_producer_consumer((1, 4))
        BarrierInserter(sched).ensure_edge("g", "i")
        assert classify_edge(sched, "g", "i").kind is ResolutionKind.PATH

    def test_gplus_rule_lets_producer_work(self):
        # Producer g [1,1] with a long follower on PE0; consumer preceded
        # by lots of work: T_max(i-) is large, so the barrier is placed
        # after the follower (g+), not right after g.
        dag = InstructionDAG.build(
            {
                "g": Interval(1, 1),
                "follow": Interval(16, 24),
                "pad": Interval(16, 24),
                "i": Interval(1, 1),
                "x": Interval(1, 1),
            },
            [("g", "i"), ("pad", "x")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(0, "follow")
        sched.append_instruction(1, "pad")
        sched.append_instruction(1, "x")
        sched.append_instruction(1, "i")
        # Force a barrier by classifying the edge: T_min(i-) = 17 >= T_max(g)=1
        # -> actually resolved by timing; tighten by checking placement path
        verdict = classify_edge(sched, "g", "i")
        assert verdict.kind is ResolutionKind.TIMING  # sanity of setup

        # Make the producer slower so timing fails but the follower window
        # still contains the consumer arrival.
        dag2 = InstructionDAG.build(
            {
                "g": Interval(1, 30),
                "follow": Interval(16, 24),
                "i": Interval(1, 1),
                "pad": Interval(16, 24),
                "x": Interval(1, 1),
            },
            [("g", "i"), ("pad", "x")],
        )
        sched2 = Schedule(dag2, 2)
        sched2.append_instruction(0, "g")
        sched2.append_instruction(0, "follow")
        sched2.append_instruction(1, "pad")
        sched2.append_instruction(1, "x")
        sched2.append_instruction(1, "i")
        outcome = BarrierInserter(sched2).ensure_edge("g", "i")
        assert outcome.kind is ResolutionKind.BARRIER
        # T_max(i-) = 25 falls inside follow's window [30, 54] start=30?
        # -> 25 < 30 so barrier right after g; verify it's before follow.
        bar = outcome.barrier
        stream = sched2.streams[0]
        assert stream.index(bar) == stream.index("g") + 1

    def test_gplus_advances_past_follower(self):
        dag = InstructionDAG.build(
            {
                "g": Interval(1, 4),
                "follow": Interval(1, 1),
                "i": Interval(1, 1),
                "pad": Interval(1, 2),
            },
            [("g", "i"), ("pad", "i")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(0, "follow")
        sched.append_instruction(1, "pad")
        sched.append_instruction(1, "i")
        outcome = BarrierInserter(sched).ensure_edge("g", "i")
        bar = outcome.barrier
        stream = sched.streams[0]
        # T_max(i-) = 2 (pad hi)... T_max(g) = 4 >= 2 -> right after g.
        assert stream.index(bar) == stream.index("g") + 1


class TestFigure13:
    """Reconstruct figure 13: three PEs, barriers x, y and the overlap.

    PE0: [5,5] of work between x and y; PE1: [4,7] between x and y;
    PE2 leaves x, does [4,4], then its own barrier z, then i- [1,?].
    Producer g sits just before y on PE1... we model it as:

      x = b0 spans all; y spans {0,1}; z spans {0,2} reached from x via
      PE2's [4,4] region and from y via... PE0 continues [2,2] to z.

    Consumer i on PE2 after z; producer g on PE1 right after y.
    Conservative: psi_max(x -> y) = 7, delta_max(g) = 1 -> T_max(g) = 8.
    psi_min(x -> z) = max(4, 5+2) = 7, delta_min(i-) = 1 -> T_min = 8...
    to match the paper's numbers exactly we use delta values below and
    check conservative-vs-optimal disagreement.
    """

    def build(self):
        dag = InstructionDAG.build(
            {
                "w0": Interval(5, 5),   # PE0 region x..y
                "w1": Interval(4, 7),   # PE1 region x..y
                "g": Interval(1, 1),    # producer after y on PE1
                "w0b": Interval(2, 2),  # PE0 region y..z
                "w2": Interval(4, 4),   # PE2 region x..z
                "i": Interval(1, 1),    # consumer after z on PE2
            },
            [("g", "i")],
        )
        sched = Schedule(dag, 3)
        # regions between x (=b0) and y
        sched.append_instruction(0, "w0")
        sched.append_instruction(1, "w1")
        y = sched.insert_barrier({0: 2, 1: 2})  # spans PE0, PE1
        sched.append_instruction(1, "g")
        sched.append_instruction(0, "w0b")
        sched.append_instruction(2, "w2")
        z = sched.insert_barrier({0: 4, 2: 2})  # spans PE0, PE2 (after w0b)
        sched.append_instruction(2, "i")
        return sched, y, z

    def test_setup_matches_paper_numbers(self):
        sched, y, z = self.build()
        bd = sched.barrier_dag()
        b0 = sched.initial_barrier.id
        assert bd.weight((b0, y.id)) if False else True
        assert bd.weight(b0, y.id) == Interval(5, 7)
        assert bd.weight(b0, z.id) == Interval(4, 4)
        assert bd.weight(y.id, z.id) == Interval(2, 2)
        # min fire of z: max(4, 5+2) = 7 (the figure's point)
        assert bd.fire_times()[z.id] == Interval(7, 9)

    def test_conservative_wants_a_barrier(self):
        sched, y, z = self.build()
        verdict = classify_edge(sched, "g", "i", mode="conservative")
        # T_max(g) = 7 + 1 = 8; T_min(i-) = 7 + 0 = 7 -> 7 < 8: barrier.
        assert verdict.kind is ResolutionKind.BARRIER

    def test_optimal_resolves_statically(self):
        sched, y, z = self.build()
        verdict = classify_edge(sched, "g", "i", mode="optimal")
        # psi_max(x,y) = 7 overlaps psi_min(x,z); forcing (x,y) to max
        # gives min path 7 + 2 = 9 >= 8 -> no barrier (paper's resolution).
        assert verdict.kind is ResolutionKind.TIMING
        assert verdict.via_optimal


class TestSafePlacements:
    def test_prefers_requested_position(self):
        sched = two_pe_producer_consumer((1, 4))
        pe_p, pos_g = sched.position_of("g")
        placements = choose_safe_placements(sched, "g", "i", preferred_p=pos_g + 1)
        assert placements[pe_p] == pos_g + 1

    def test_searches_on_conflict(self):
        # x after g on PE0 happens-before y before i on PE1 (data edge):
        # the naive placement after g / before i would be cyclic.
        dag = InstructionDAG.build(
            {
                "g": Interval(1, 1),
                "x": Interval(1, 1),
                "y": Interval(1, 1),
                "i": Interval(1, 1),
            },
            [("g", "i"), ("x", "y")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(0, "x")
        sched.append_instruction(1, "y")
        sched.append_instruction(1, "i")
        placements = choose_safe_placements(sched, "g", "i")
        assert not sched.insertion_creates_hb_cycle(placements)
        bar = sched.insert_barrier(placements)
        sched.barrier_dag()  # must not raise
        # correctness: barrier after g on PE0 and before i on PE1
        assert sched.streams[0].index(bar) > sched.streams[0].index("g")
        assert sched.streams[1].index(bar) < sched.streams[1].index("i")
