"""Tests for node heights (section 4.1) and list ordering (section 4.2)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import Interval
from repro.core.labeling import compute_heights, critical_path_nodes
from repro.core.ordering import order_nodes
from repro.ir.dag import EXIT, ENTRY, InstructionDAG
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

from tests.conftest import chain_dag, diamond_dag


class TestHeights:
    def test_exit_height_zero(self):
        heights = compute_heights(diamond_dag())
        assert heights[EXIT] == Interval(0, 0)

    def test_chain_heights_accumulate(self):
        dag = chain_dag([(1, 4), (1, 1), (16, 24)])
        heights = compute_heights(dag)
        assert heights[2] == Interval(16, 24)
        assert heights[1] == Interval(17, 25)
        assert heights[0] == Interval(18, 29)

    def test_diamond_takes_slowest_arm(self):
        heights = compute_heights(diamond_dag())
        # a: own [1,4] + max(b-chain [2,2], c-chain [17,25])
        assert heights["a"] == Interval(18, 29)
        assert heights["c"] == Interval(17, 25)
        assert heights["b"] == Interval(2, 2)

    def test_entry_height_is_critical_path(self):
        dag = diamond_dag()
        heights = compute_heights(dag)
        assert heights[ENTRY] == dag.critical_path()

    def test_producer_height_exceeds_consumer(self):
        case = compile_case(GeneratorConfig(n_statements=25, n_variables=8), 3)
        heights = compute_heights(case.dag)
        for g, i in case.dag.real_edges():
            assert heights[g].hi > heights[i].hi
            assert heights[g].lo > heights[i].lo


class TestFigure12:
    """The two DAG examples of figure 12 (ordering keys)."""

    def test_left_dag_hmax_orders(self):
        # b has larger h_max than a -> b first in the list.
        dag = InstructionDAG.build(
            {
                "a": Interval(1, 2),
                "b": Interval(1, 6),
                "t": Interval(1, 1),
            },
            [("a", "t"), ("b", "t")],
        )
        order = order_nodes(dag)
        assert order.index("b") < order.index("a")

    def test_right_dag_hmin_breaks_tie(self):
        # equal h_max, larger h_min wins (node e before node d).
        dag = InstructionDAG.build(
            {
                "d": Interval(1, 6),
                "e": Interval(4, 6),
                "t": Interval(1, 1),
            },
            [("d", "t"), ("e", "t")],
        )
        order = order_nodes(dag)
        assert order.index("e") < order.index("d")


class TestOrdering:
    def test_orders_producers_first(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 1)
        for kind in ("maxmin", "minmax"):
            order = order_nodes(case.dag, kind)
            pos = {n: k for k, n in enumerate(order)}
            for g, i in case.dag.real_edges():
                assert pos[g] < pos[i], kind

    def test_deterministic(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 2)
        assert order_nodes(case.dag) == order_nodes(case.dag)

    def test_unknown_kind(self):
        import pytest

        with pytest.raises(ValueError):
            order_nodes(diamond_dag(), "sideways")

    def test_minmax_differs_when_keys_conflict(self):
        dag = InstructionDAG.build(
            {
                # x: h = [10, 12]; y: h = [4, 20] -- maxmin puts y first,
                # minmax puts x first.
                "x": Interval(10, 12),
                "y": Interval(4, 20),
            },
            [],
        )
        assert order_nodes(dag, "maxmin") == ["y", "x"]
        assert order_nodes(dag, "minmax") == ["x", "y"]


class TestCriticalPathNodes:
    def test_chain_fully_critical(self):
        dag = chain_dag([(1, 1), (2, 2), (3, 3)])
        assert set(critical_path_nodes(dag)) == {0, 1, 2}

    def test_diamond_fast_arm_not_critical(self):
        crit = set(critical_path_nodes(diamond_dag()))
        assert "b" not in crit
        assert {"a", "c", "d"} <= crit


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 9999), stmts=st.integers(2, 40))
def test_heights_dominate_successors_on_random_dags(seed, stmts):
    case = compile_case(GeneratorConfig(n_statements=stmts, n_variables=6), seed)
    heights = compute_heights(case.dag)
    for node in case.dag.real_nodes:
        own = case.dag.latency(node)
        for s in case.dag.real_succs(node):
            assert heights[node].hi >= heights[s].hi + own.hi
            assert heights[node].lo >= heights[s].lo + own.lo
