"""Tests for the processor-assignment policies (section 4.3 / 5.4)."""

import random

import pytest

from repro.timing import Interval
from repro.core.assignment import (
    ListPolicy,
    LookaheadPolicy,
    RoundRobinPolicy,
    make_policy,
    serialization_candidates,
)
from repro.core.schedule import Schedule
from repro.ir.dag import InstructionDAG

from tests.conftest import chain_dag


def fan_dag():
    """p0, p1 -> c (two producers, one consumer) plus an independent z."""
    return InstructionDAG.build(
        {
            "p0": Interval(1, 1),
            "p1": Interval(1, 4),
            "c": Interval(1, 1),
            "z": Interval(1, 1),
        },
        [("p0", "c"), ("p1", "c")],
    )


class TestSerializationCandidates:
    def test_open_slot_detected(self):
        sched = Schedule(fan_dag(), 4)
        sched.append_instruction(0, "p0")
        sched.append_instruction(1, "p1")
        assert serialization_candidates(sched, "c") == [0, 1]

    def test_filled_slot_excluded(self):
        sched = Schedule(fan_dag(), 4)
        sched.append_instruction(0, "p0")
        sched.append_instruction(0, "z")  # fills PE0's slot
        sched.append_instruction(1, "p1")
        assert serialization_candidates(sched, "c") == [1]

    def test_no_producers(self):
        sched = Schedule(fan_dag(), 4)
        assert serialization_candidates(sched, "z") == []


class TestListPolicy:
    def test_single_open_slot_taken(self):
        sched = Schedule(fan_dag(), 4)
        sched.append_instruction(0, "p0")
        sched.append_instruction(0, "z")
        sched.append_instruction(1, "p1")
        policy = ListPolicy()
        pe = policy.choose(sched, "c", 3, (), random.Random(0))
        assert pe == 1

    def test_largest_max_time_among_open_slots(self):
        sched = Schedule(fan_dag(), 4)
        sched.append_instruction(0, "p0")  # completion hi = 1
        sched.append_instruction(1, "p1")  # completion hi = 4
        policy = ListPolicy()
        pe = policy.choose(sched, "c", 2, (), random.Random(0))
        assert pe == 1  # "largest current maximum time" (step [1])

    def test_step2_earliest_start(self):
        dag = chain_dag([(1, 1)])
        sched = Schedule(dag, 3)
        policy = ListPolicy()
        # no producers: every PE ties at est 0; choice must be a valid PE
        pe = policy.choose(sched, 0, 0, (), random.Random(1))
        assert 0 <= pe < 3

    def test_step2_is_seed_deterministic(self):
        dag = chain_dag([(1, 1)])
        picks = set()
        for _ in range(5):
            sched = Schedule(dag, 8)
            pe = ListPolicy().choose(sched, 0, 0, (), random.Random(42))
            picks.add(pe)
        assert len(picks) == 1

    def test_serialization_slack_prefers_producer(self):
        # Both producers on PE0 with the slot closed by 'z': step [2] runs,
        # and a generous slack keeps the consumer on the producer PE even
        # though a fresh PE would start it earlier.
        sched = Schedule(fan_dag(), 4)
        sched.append_instruction(0, "p0")
        sched.append_instruction(0, "p1")
        sched.append_instruction(0, "z")  # close the slot
        with_slack = ListPolicy(serialization_slack=50)
        pe = with_slack.choose(sched, "c", 3, (), random.Random(0))
        assert pe == 0
        without = ListPolicy(serialization_slack=0)
        pe2 = without.choose(sched, "c", 3, (), random.Random(0))
        assert pe2 != 0  # strict earliest-start leaves the producer PE


class TestRoundRobin:
    def test_modular_assignment(self):
        sched = Schedule(fan_dag(), 3)
        policy = RoundRobinPolicy()
        rng = random.Random(0)
        assert policy.choose(sched, "p0", 0, (), rng) == 0
        assert policy.choose(sched, "p1", 1, (), rng) == 1
        assert policy.choose(sched, "c", 5, (), rng) == 2


class TestLookahead:
    def test_diverts_from_pending_slot(self):
        dag = InstructionDAG.build(
            {
                "p": Interval(1, 1),
                "w": Interval(1, 1),  # upcoming consumer of p
                "n": Interval(1, 1),  # unrelated node being placed
            },
            [("p", "w")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "p")
        policy = LookaheadPolicy(window=2)
        rng = random.Random(3)
        # 'n' would tie between PE0 and PE1; lookahead must avoid PE0 where
        # p's serialization slot is open for upcoming 'w'.
        pe = policy.choose(sched, "n", 1, ("w",), rng)
        assert pe == 1

    def test_own_serialization_wins(self):
        dag = InstructionDAG.build(
            {"p": Interval(1, 1), "c": Interval(1, 1), "w": Interval(1, 1)},
            [("p", "c"), ("p", "w")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "p")
        policy = LookaheadPolicy(window=4)
        pe = policy.choose(sched, "c", 1, ("w",), random.Random(0))
        assert pe == 0  # c serializes with p even though w also wants it

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LookaheadPolicy(window=0)


class TestFactory:
    def test_list_default(self):
        assert isinstance(make_policy("list"), ListPolicy)

    def test_lookahead_wrapping(self):
        policy = make_policy("list", lookahead=3)
        assert isinstance(policy, LookaheadPolicy) and policy.window == 3

    def test_slack_threading(self):
        policy = make_policy("list", serialization_slack=5)
        assert policy.serialization_slack == 5
        wrapped = make_policy("list", lookahead=2, serialization_slack=5)
        assert wrapped.inner.serialization_slack == 5

    def test_roundrobin(self):
        assert isinstance(make_policy("roundrobin"), RoundRobinPolicy)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_policy("magic")
