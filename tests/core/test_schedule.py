"""Tests for the Schedule data structure: streams, navigation, timing."""

import pytest

from repro.timing import Interval
from repro.core.schedule import Schedule
from repro.ir.dag import ENTRY, InstructionDAG

from tests.conftest import chain_dag, diamond_dag


@pytest.fixture
def sched():
    return Schedule(diamond_dag(), n_pes=3)


class TestStreams:
    def test_streams_start_with_b0(self, sched):
        for pe in range(3):
            assert sched.streams[pe][0] is sched.initial_barrier
        assert sched.initial_barrier.participants == {0, 1, 2}

    def test_append_and_position(self, sched):
        sched.append_instruction(0, "a")
        sched.append_instruction(1, "b")
        assert sched.position_of("a") == (0, 1)
        assert sched.processor_of("b") == 1
        assert sched.instructions_on(0) == ["a"]
        assert sched.last_instruction_on(2) is None

    def test_double_schedule_rejected(self, sched):
        sched.append_instruction(0, "a")
        with pytest.raises(ValueError):
            sched.append_instruction(1, "a")

    def test_dummy_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.append_instruction(0, ENTRY)

    def test_unknown_node_rejected(self, sched):
        with pytest.raises(ValueError):
            sched.append_instruction(0, "zzz")

    def test_used_processors(self, sched):
        assert sched.used_processors() == 0
        sched.append_instruction(1, "a")
        assert sched.used_processors() == 1


class TestBarrierNavigation:
    def test_insert_and_navigate(self, sched):
        sched.append_instruction(0, "a")
        sched.append_instruction(1, "c")
        bar = sched.insert_barrier({0: 2, 1: 1})
        assert bar.participants == {0, 1}
        # on PE0 the barrier follows 'a'; on PE1 it precedes 'c'
        assert sched.last_barrier_before(0, sched.position_of("a")[1]) is sched.initial_barrier
        assert sched.next_barrier_after(0, sched.position_of("a")[1]) is bar
        pe, idx = sched.position_of("c")
        assert sched.last_barrier_before(pe, idx) is bar

    def test_barrier_counts_exclude_initial(self, sched):
        assert sched.n_barriers == 0
        sched.append_instruction(0, "a")
        sched.insert_barrier({0: 2, 1: 1})
        assert sched.n_barriers == 1
        assert len(sched.barriers(include_initial=True)) == 2

    def test_bad_barrier_index(self, sched):
        with pytest.raises(ValueError):
            sched.insert_barrier({0: 0})  # before b0
        with pytest.raises(ValueError):
            sched.insert_barrier({0: 5})

    def test_region_after(self, sched):
        sched.append_instruction(0, "a")
        sched.append_instruction(0, "b")
        bar = sched.insert_barrier({0: 2, 1: 1})
        assert sched.region_after(0, sched.initial_barrier) == ["a"]
        assert sched.region_after(0, bar) == ["b"]

    def test_replace_barrier_cannot_touch_initial(self, sched):
        bar = sched.insert_barrier({0: 1})
        with pytest.raises(ValueError):
            sched.replace_barrier(sched.initial_barrier, bar)


class TestDeltas:
    def test_delta_through_and_before(self):
        dag = chain_dag([(1, 4), (1, 1), (2, 3)])
        sched = Schedule(dag, 1)
        for node in (0, 1, 2):
            sched.append_instruction(0, node)
        assert sched.delta_through(1) == Interval(2, 5)
        assert sched.delta_before(0, sched.position_of(2)[1]) == Interval(2, 5)
        assert sched.delta_before(0, 1) == Interval(0, 0)

    def test_delta_resets_at_barrier(self):
        dag = chain_dag([(1, 4), (1, 1)])
        sched = Schedule(dag, 1)
        sched.append_instruction(0, 0)
        sched.insert_barrier({0: 2})
        sched.append_instruction(0, 1)
        assert sched.delta_through(1) == Interval(1, 1)


class TestTiming:
    def test_global_times_single_pe(self):
        dag = chain_dag([(1, 4), (1, 1)])
        sched = Schedule(dag, 1)
        sched.append_instruction(0, 0)
        sched.append_instruction(0, 1)
        assert sched.global_start(0) == Interval(0, 0)
        assert sched.global_finish(0) == Interval(1, 4)
        assert sched.global_finish(1) == Interval(2, 5)
        assert sched.completion(0) == Interval(2, 5)
        assert sched.makespan() == Interval(2, 5)

    def test_barrier_resets_skew(self):
        sched = Schedule(diamond_dag(), 2)
        sched.append_instruction(0, "a")  # [1,4]
        bar = sched.insert_barrier({0: 2, 1: 1})
        sched.append_instruction(1, "b")  # [1,1] after the barrier
        fire = sched.fire_times()
        assert fire[bar.id] == Interval(1, 4)
        assert sched.global_start("b") == Interval(1, 4)
        assert sched.global_finish("b") == Interval(2, 5)

    def test_makespan_joins_processors(self):
        sched = Schedule(diamond_dag(), 2)
        sched.append_instruction(0, "a")
        sched.append_instruction(1, "c")
        assert sched.makespan() == Interval(16, 24)

    def test_two_level_cache_maintenance(self):
        # Appends are *content* mutations: the instruction lands in the
        # open region after the stream's last barrier, which no dag edge
        # covers, so the cached dag stays valid (and identical).  Barrier
        # insertion is a *structure* mutation: the dag must change.
        sched = Schedule(diamond_dag(), 2)
        bd1 = sched.barrier_dag()
        assert sched.barrier_dag() is bd1  # cached
        rev = sched.revision
        struct = sched.structure_revision
        sched.append_instruction(0, "a")
        assert sched.revision == rev + 1
        assert sched.structure_revision == struct  # content-only change
        assert sched.barrier_dag() is bd1  # still valid: no edge touched
        sched.insert_barrier({0: 2, 1: 1})
        assert sched.structure_revision == struct + 1
        bd2 = sched.barrier_dag()
        assert bd2 is not bd1
        assert len(bd2) == 2


class TestHappensBefore:
    def test_stream_order_in_hb(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        sched.append_instruction(0, 1)
        assert sched.hb_reachable(("n", 0), ("n", 1))
        assert not sched.hb_reachable(("n", 1), ("n", 0))

    def test_data_edges_in_hb(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        sched.append_instruction(1, 1)  # consumer on the other PE
        assert sched.hb_reachable(("n", 0), ("n", 1))

    def test_barrier_ordering_through_instructions(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        b1 = sched.insert_barrier({0: 2, 1: 1})
        sched.append_instruction(1, 1)
        b2 = sched.insert_barrier({1: 3})
        assert sched.hb_barrier_ordered(b1.id, b2.id)
        desc = sched.hb_barrier_descendants()
        assert b2.id in desc[b1.id]

    def test_insertion_cycle_detection(self):
        dag = InstructionDAG.build(
            {
                "g": Interval(1, 1),
                "i": Interval(1, 1),
                "x": Interval(1, 1),
                "y": Interval(1, 1),
            },
            [("g", "i"), ("x", "y")],
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(0, "x")
        sched.append_instruction(1, "y")
        sched.append_instruction(1, "i")
        # Barrier after g (before x) on PE0 and before i (after y) on PE1
        # would demand y-before-x... x -> y is a data edge, so the cycle
        # detector must reject placements that order y's region first.
        assert sched.insertion_creates_hb_cycle({0: 2, 1: 2})
        # After x on PE0 and before i on PE1 is fine.
        assert not sched.insertion_creates_hb_cycle({0: 3, 1: 2})

    def test_insertion_straddling_shared_barrier_is_cyclic(self):
        dag = InstructionDAG.build(
            {"a": Interval(1, 1), "b": Interval(1, 1)}, []
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "a")
        sched.append_instruction(1, "b")
        sched.insert_barrier({0: 2, 1: 2})
        # The shared barrier sits at index 2 of both streams.  Placing a
        # new barrier *before* it on PE0 but *after* it on PE1 would
        # order the pair both ways -- a two-node cycle the pairwise
        # reachability scan only sees when pred and succ coincide.
        assert sched.insertion_creates_hb_cycle({0: 2, 1: 3})
        assert not sched.insertion_creates_hb_cycle({0: 2, 1: 2})
