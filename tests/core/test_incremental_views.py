"""Property tests for incremental derived-view maintenance (perf PR).

:class:`~repro.core.schedule.Schedule` keeps its barrier dag, dominator
tree, fire times, and happens-before views *alive* across mutations --
appends leave them untouched, barrier insertions and replacements evolve
them in place -- instead of invalidating and rebuilding from the streams.
These tests pin the contract that makes that safe:

* after **any** mutation sequence (scheduler-driven or adversarially
  random) every materialized view is equal to a cold scratch rebuild;
* the end-to-end corpus digest is bit-identical to the value recorded
  before the optimization, so no observable scheduling decision moved;
* ``REPRO_CHECK_INCREMENTAL=1`` wires the same scratch cross-check into
  every mutation, and the full pipeline runs clean under it.
"""

from __future__ import annotations

import random

import pytest

from repro.barriers.dominators import DominatorTree
from repro.core.merging import merge_all_overlapping
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.perf.parallel import results_digest
from repro.synth.generator import GeneratorConfig

from tests.conftest import make_case

#: results_digest of the paper's standard 100-block corpus point,
#: captured on the codebase *before* the incremental-view optimization.
#: The digest covers every edge resolution (kind, barrier, dominator,
#: secondary, merges), the stats summary, and the list order -- if any
#: scheduling decision shifts, this test fails.
PRE_OPTIMIZATION_DIGEST = (
    "3efead027d799e23985327d9f41c0b81bf7eba4ef09e397e6a81fdb75ac9ab7c"
)


def assert_views_match_scratch(sched: Schedule) -> None:
    """Every materialized derived view equals a cold rebuild."""
    bd = sched.barrier_dag()
    scratch = sched._scratch_barrier_dag()
    assert set(bd.barrier_ids) == set(scratch.barrier_ids)
    evolved_edges = {(e.src, e.dst): e.weight for e in bd.edges()}
    scratch_edges = {(e.src, e.dst): e.weight for e in scratch.edges()}
    assert evolved_edges == scratch_edges
    assert bd.fire_times() == scratch.fire_times()
    for bid in bd.barrier_ids:
        assert bd.descendants(bid) == scratch.descendants(bid)

    assert sched.fire_times() == scratch.fire_times()

    dom = sched.dominator_tree()
    fresh = DominatorTree(scratch)
    assert dom._idom == fresh._idom
    for u in bd.barrier_ids:
        for v in bd.barrier_ids:
            assert dom.dominates(u, v) == fresh.dominates(u, v)

    scratch_hb = sched._scratch_hb_successors()
    assert sched.hb_barrier_descendants() == (
        sched._scratch_hb_barrier_descendants(scratch_hb)
    )


def materialize(sched: Schedule) -> None:
    """Force every cache live so subsequent mutations *patch*, not rebuild."""
    sched.barrier_dag()
    sched.dominator_tree()
    sched.fire_times()
    sched.hb_successors()
    sched.hb_barrier_descendants()


class TestSchedulerDrivenEquivalence:
    """The real pipeline, with the built-in cross-check armed: every
    mutation the scheduler performs is verified against scratch rebuilds
    inside :meth:`Schedule._verify_incremental` (AssertionError on any
    divergence)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    def test_pipeline_clean_under_cross_check(self, monkeypatch, seed, machine):
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        case = make_case(n_statements=24, n_variables=6, seed=seed)
        cfg = SchedulerConfig(n_pes=4, machine=machine, seed=seed)
        result = schedule_dag(case.dag, cfg)
        assert result.schedule._check  # the flag actually armed the checks
        assert_views_match_scratch(result.schedule)

    @pytest.mark.parametrize("seed", range(3))
    def test_optimal_mode_clean_under_cross_check(self, monkeypatch, seed):
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        case = make_case(n_statements=18, n_variables=5, seed=seed)
        cfg = SchedulerConfig(n_pes=3, insertion="optimal", seed=seed)
        result = schedule_dag(case.dag, cfg)
        assert_views_match_scratch(result.schedule)


class TestRandomMutationEquivalence:
    """Adversarial interleavings that the scheduler itself would never
    produce: appends to arbitrary processors, barrier placements at
    arbitrary (acyclic) stream positions, and merge sweeps -- with all
    caches forced live between mutations so the evolve/patch paths, not
    the cold builders, are what is being tested."""

    @pytest.mark.parametrize("seed", range(10))
    def test_views_match_after_random_mutations(self, seed):
        rng = random.Random(seed)
        case = make_case(n_statements=26, n_variables=6, seed=seed)
        n_pes = rng.choice([2, 3, 4])
        sched = Schedule(case.dag, n_pes)
        materialize(sched)

        for node in case.dag.real_nodes:
            sched.append_instruction(rng.randrange(n_pes), node)
            if rng.random() < 0.35:
                pes = [
                    pe for pe in range(n_pes)
                    if len(sched.streams[pe]) > 1 and rng.random() < 0.6
                ]
                placements = {
                    pe: rng.randint(1, len(sched.streams[pe])) for pe in pes
                }
                if placements and not sched.insertion_creates_hb_cycle(
                    placements
                ):
                    sched.insert_barrier(placements)
            if rng.random() < 0.3:
                materialize(sched)
            if rng.random() < 0.15:
                merge_all_overlapping(sched)

        merge_all_overlapping(sched)
        assert_views_match_scratch(sched)

    @pytest.mark.parametrize("seed", range(4))
    def test_mid_sequence_views_match(self, seed):
        """Check equality *during* the sequence, not just at the end."""
        rng = random.Random(1000 + seed)
        case = make_case(n_statements=16, n_variables=5, seed=seed)
        sched = Schedule(case.dag, 3)
        for step, node in enumerate(case.dag.real_nodes):
            materialize(sched)
            sched.append_instruction(rng.randrange(3), node)
            if step % 3 == 2:
                pe = rng.randrange(3)
                placements = {pe: len(sched.streams[pe])}
                if not sched.insertion_creates_hb_cycle(placements):
                    sched.insert_barrier(placements)
            assert_views_match_scratch(sched)


class TestDigestParity:
    def test_corpus_digest_unchanged(self):
        """End-to-end: the 100-block corpus produces bit-identical
        resolutions, merges, stats, and list orders to the
        pre-optimization codebase."""
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=20, n_variables=8),
            scheduler=SchedulerConfig(n_pes=8),
            count=100,
            master_seed=0,
        )
        results = run_corpus(point, jobs=1)
        assert results_digest(results) == PRE_OPTIMIZATION_DIGEST
