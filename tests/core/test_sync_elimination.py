"""Tests for timing-based directed-sync elimination (section 7 extension)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import Interval
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.core.sync_elimination import (
    compute_sync_bounds,
    eliminate_directed_syncs,
    simulate_directed,
)
from repro.ir.dag import InstructionDAG
from repro.machine.durations import MaxSampler, MinSampler, UniformSampler
from repro.machine.mimd import _combined_task_graph
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


def hand_schedule():
    """g on PE0 followed by slow filler; i on PE1 after matching filler."""
    dag = InstructionDAG.build(
        {
            "g": Interval(1, 2),
            "fill": Interval(10, 10),
            "pad": Interval(5, 5),
            "i": Interval(1, 1),
        },
        [("g", "i"), ("pad", "i")],
    )
    sched = Schedule(dag, 2)
    sched.append_instruction(0, "g")
    sched.append_instruction(0, "fill")
    sched.append_instruction(1, "pad")
    sched.append_instruction(1, "i")
    return sched


class TestBounds:
    def test_chain_bounds(self):
        sched = hand_schedule()
        start, finish = compute_sync_bounds(sched, set())
        assert start["g"] == Interval(0, 0)
        assert finish["g"] == Interval(1, 2)
        assert start["i"] == Interval(5, 5)  # after pad, no sync edges

    def test_retained_edge_raises_consumer_start(self):
        sched = hand_schedule()
        start, _ = compute_sync_bounds(sched, {("g", "i")})
        assert start["i"] == Interval(5, 5)  # join(pad 5, g finish [1,2])

    def test_sync_latency_charged(self):
        sched = hand_schedule()
        start, _ = compute_sync_bounds(sched, {("g", "i")}, sync_latency=10)
        assert start["i"] == Interval(11, 12)

    def test_cycle_detection(self):
        sched = hand_schedule()
        with pytest.raises(ValueError):
            compute_sync_bounds(sched, {("g", "i"), ("i", "g")})


class TestElimination:
    def test_slack_edge_removed(self):
        # pad [5,5] before i means i cannot start before t=5 >= g's max 2.
        sched = hand_schedule()
        result = eliminate_directed_syncs(sched)
        assert ("g", "i") in result.removed
        assert result.describe().startswith("directed syncs")

    def test_tight_edge_retained(self):
        dag = InstructionDAG.build(
            {"g": Interval(1, 9), "i": Interval(1, 1)}, [("g", "i")]
        )
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(1, "i")
        result = eliminate_directed_syncs(sched)
        assert result.retained == (("g", "i"),)
        assert result.removed_fraction == 0.0

    def test_start_from_reduced_set(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 5)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=5))
        schedule = result.schedule
        reduced_graph = nx.transitive_reduction(
            _combined_task_graph(case.dag, schedule)
        )
        reduced = {
            (g, i)
            for g, i in case.dag.real_edges()
            if schedule.processor_of(g) != schedule.processor_of(i)
            and reduced_graph.has_edge(g, i)
        }
        both = eliminate_directed_syncs(schedule, start_from=reduced)
        assert both.n_retained <= len(reduced)

    def test_monotone_never_worse_than_naive(self):
        for seed in range(5):
            case = compile_case(GeneratorConfig(n_statements=40, n_variables=8), seed)
            result = schedule_dag(case.dag, SchedulerConfig(n_pes=6, seed=seed))
            elim = eliminate_directed_syncs(result.schedule)
            assert elim.n_retained <= elim.naive


class TestDynamicOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_edges_respected_with_retained_only(self, seed):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), seed)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=seed))
        elim = eliminate_directed_syncs(result.schedule)
        for sampler in (MinSampler(), MaxSampler(), UniformSampler()):
            for run in range(3):
                start, finish = simulate_directed(
                    result.schedule, elim.retained, sampler, rng=run
                )
                for g, i in case.dag.real_edges():
                    assert finish[g] <= start[i], (g, i)

    def test_combined_regime_sound(self):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), 9)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=9))
        schedule = result.schedule
        reduced_graph = nx.transitive_reduction(
            _combined_task_graph(case.dag, schedule)
        )
        reduced = {
            (g, i)
            for g, i in case.dag.real_edges()
            if schedule.processor_of(g) != schedule.processor_of(i)
            and reduced_graph.has_edge(g, i)
        }
        both = eliminate_directed_syncs(schedule, start_from=reduced)
        for run in range(5):
            start, finish = simulate_directed(
                schedule, both.retained, UniformSampler(), rng=run
            )
            for g, i in case.dag.real_edges():
                assert finish[g] <= start[i]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 3000), pes=st.integers(2, 8))
def test_elimination_sound_property(seed, pes):
    case = compile_case(GeneratorConfig(n_statements=25, n_variables=6), seed)
    result = schedule_dag(case.dag, SchedulerConfig(n_pes=pes, seed=seed))
    elim = eliminate_directed_syncs(result.schedule)
    start, finish = simulate_directed(
        result.schedule, elim.retained, UniformSampler(), rng=seed
    )
    for g, i in case.dag.real_edges():
        assert finish[g] <= start[i]
