"""Tests for schedule validation/repair and the top-level scheduler."""

import pytest

from repro.timing import Interval
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.core.validate import (
    ScheduleError,
    check_structure,
    find_violations,
    finalize_schedule,
    repair_schedule,
)
from repro.ir.dag import InstructionDAG
from repro.metrics.fractions import fractions_of
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

from tests.conftest import chain_dag, diamond_dag


def hand_schedule_with_violation():
    """g on PE0, i on PE1, no barrier: the edge has no guarantee."""
    dag = InstructionDAG.build(
        {"g": Interval(1, 4), "i": Interval(1, 1)}, [("g", "i")]
    )
    sched = Schedule(dag, 2)
    sched.append_instruction(0, "g")
    sched.append_instruction(1, "i")
    return sched


class TestCheckStructure:
    def test_complete_schedule_passes(self):
        sched = hand_schedule_with_violation()
        check_structure(sched)

    def test_missing_node_detected(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        with pytest.raises(ScheduleError):
            check_structure(sched)


class TestFindViolationsAndRepair:
    def test_unprotected_cross_edge_flagged(self):
        sched = hand_schedule_with_violation()
        violations = find_violations(sched)
        assert len(violations) == 1
        assert violations[0].producer == "g"

    def test_repair_inserts_barrier(self):
        sched = hand_schedule_with_violation()
        added = repair_schedule(sched)
        assert added == 1
        assert find_violations(sched) == []
        assert sched.n_barriers == 1

    def test_repair_idempotent(self):
        sched = hand_schedule_with_violation()
        repair_schedule(sched)
        assert repair_schedule(sched) == 0

    def test_finalize_combines_merge_and_repair(self):
        sched = hand_schedule_with_violation()
        repairs, merges = finalize_schedule(sched, merge=True)
        assert repairs == 1
        assert find_violations(sched) == []

    def test_repair_loop_fixes_multiple_broken_edges(self):
        # Two independent unprotected cross-PE edges on three processors:
        # the insert-and-revalidate loop must keep iterating until every
        # edge is discharged, and the result must survive a full
        # finalize (structure check + revalidation) cleanly.
        dag = InstructionDAG.build(
            {
                "g1": Interval(1, 4),
                "i1": Interval(1, 1),
                "g2": Interval(16, 24),
                "i2": Interval(1, 1),
            },
            [("g1", "i1"), ("g2", "i2")],
        )
        sched = Schedule(dag, 3)
        sched.append_instruction(0, "g1")
        sched.append_instruction(1, "i1")
        sched.append_instruction(1, "g2")
        sched.append_instruction(2, "i2")
        assert len(find_violations(sched)) >= 1
        added = repair_schedule(sched)
        assert added >= 1
        assert find_violations(sched) == []
        check_structure(sched)
        # Idempotent once sound.
        assert repair_schedule(sched) == 0

    def test_repaired_schedule_executes_race_free(self):
        # The inserted barrier must hold up dynamically, not just in the
        # static checker: hammer the repaired schedule with randomized
        # durations and verify every trace against the DAG edges.
        from repro.machine.program import MachineProgram
        from repro.machine.sbm import simulate_sbm

        sched = hand_schedule_with_violation()
        repair_schedule(sched)
        program = MachineProgram.from_schedule(sched)
        for seed in range(10):
            trace = simulate_sbm(program, rng=seed)
            assert trace.verify(program.edges) == []


class TestSchedulerEndToEnd:
    def test_every_node_scheduled_once(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 11)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=11))
        scheduled = [n for pe in range(8) for n in result.schedule.instructions_on(pe)]
        assert sorted(map(str, scheduled)) == sorted(map(str, case.dag.real_nodes))

    def test_counts_partition_edges(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 12)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=12))
        c = result.counts
        assert (
            c.serialized_edges + c.path_edges + c.timing_edges + c.barrier_edges
            == c.total_edges
            == case.dag.implied_synchronizations
        )

    def test_fractions_sum_to_one(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 13)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=13))
        fr = fractions_of(result)
        assert fr.barrier + fr.serialized + fr.static == pytest.approx(1.0)

    def test_no_violations_on_final_schedule(self):
        for seed in range(6):
            case = compile_case(GeneratorConfig(n_statements=50, n_variables=12), seed)
            for machine in ("sbm", "dbm"):
                result = schedule_dag(
                    case.dag, SchedulerConfig(n_pes=8, seed=seed, machine=machine)
                )
                assert find_violations(result.schedule, result.config.insertion) == []

    def test_deterministic_given_seed(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 21)
        r1 = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=5))
        r2 = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=5))
        assert r1.counts == r2.counts
        assert [tuple(map(str, s)) for s in r1.schedule.streams] == [
            tuple(map(str, s)) for s in r2.schedule.streams
        ]

    def test_single_pe_everything_serialized(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 22)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=1))
        assert result.counts.serialized_edges == result.counts.total_edges
        assert result.counts.barriers_final == 0

    def test_makespan_at_least_critical_path(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 23)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=23))
        cp = case.dag.critical_path()
        assert result.makespan.hi >= cp.hi
        assert result.makespan.lo >= cp.lo

    def test_diamond_small_machine(self):
        result = schedule_dag(diamond_dag(), SchedulerConfig(n_pes=2, seed=0))
        assert result.counts.total_edges == 4
        assert find_violations(result.schedule) == []

    def test_dbm_skips_merging(self):
        case = compile_case(GeneratorConfig(n_statements=60, n_variables=12), 24)
        dbm = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=24, machine="dbm"))
        assert dbm.counts.merges == 0

    def test_sbm_merging_reduces_barriers(self):
        total_sbm = total_unmerged = 0
        for seed in range(8):
            case = compile_case(GeneratorConfig(n_statements=80, n_variables=10), seed)
            sbm = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=seed))
            plain = schedule_dag(
                case.dag,
                SchedulerConfig(n_pes=8, seed=seed, machine="dbm", merge_barriers=False),
            )
            total_sbm += sbm.counts.barriers_final
            total_unmerged += plain.counts.barriers_final
        assert total_sbm < total_unmerged

    def test_roundrobin_kills_serialization(self):
        case = compile_case(GeneratorConfig(n_statements=60, n_variables=10), 25)
        rr = schedule_dag(
            case.dag, SchedulerConfig(n_pes=16, seed=25, assignment="roundrobin")
        )
        base = schedule_dag(case.dag, SchedulerConfig(n_pes=16, seed=25))
        assert rr.counts.serialized_edges < base.counts.serialized_edges

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(n_pes=0)
        with pytest.raises(ValueError):
            SchedulerConfig(lookahead=-1)

    def test_merging_enabled_property(self):
        assert SchedulerConfig(machine="sbm").merging_enabled
        assert not SchedulerConfig(machine="dbm").merging_enabled
        assert SchedulerConfig(machine="dbm", merge_barriers=True).merging_enabled

    def test_describe_mentions_key_stats(self):
        case = compile_case(GeneratorConfig(n_statements=20, n_variables=6), 26)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=26))
        text = result.describe()
        assert "syncs" in text and "makespan" in text


class TestBarrierLatency:
    def test_latency_increases_makespan(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 31)
        fast = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=31))
        slow = schedule_dag(
            case.dag, SchedulerConfig(n_pes=8, seed=31, barrier_latency=4)
        )
        assert slow.makespan.hi > fast.makespan.hi
        assert slow.makespan.lo > fast.makespan.lo

    def test_latency_zero_is_default(self):
        assert SchedulerConfig().barrier_latency == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            SchedulerConfig(barrier_latency=-1)

    def test_fire_times_include_latency(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 32)
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=4, seed=32, barrier_latency=3)
        )
        sched = result.schedule
        fire = sched.fire_times()
        for barrier in sched.barriers():
            assert fire[barrier.id].lo >= 3  # at least one release latency

    def test_latency_schedule_still_sound(self):
        from repro.machine import MachineProgram, UniformSampler, simulate_sbm

        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 33)
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=8, seed=33, barrier_latency=2)
        )
        program = MachineProgram.from_schedule(result.schedule)
        assert program.barrier_latency == 2
        for run in range(4):
            simulate_sbm(program, UniformSampler(), rng=run).assert_sound(
                program.edges
            )
