"""Tests for the clocked (RTL-style) barrier hardware model."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.durations import FixedSampler, MaxSampler, MinSampler, UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.dbm import simulate_dbm
from repro.machine.rtl import run_clocked
from repro.machine.sbm import simulate_sbm
from repro.machine.trace import DeadlockError
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

from tests.machine.test_simulators import simple_two_pe_program


def scheduled_program(seed=5, machine="sbm", barrier_latency=0, stmts=40):
    case = compile_case(GeneratorConfig(n_statements=stmts, n_variables=10), seed)
    result = schedule_dag(
        case.dag,
        SchedulerConfig(
            n_pes=6, seed=seed, machine=machine, barrier_latency=barrier_latency
        ),
    )
    return MachineProgram.from_schedule(result.schedule), result


class TestBasics:
    def test_simple_program(self):
        program = simple_two_pe_program()
        trace = run_clocked(program, "sbm", MaxSampler())
        assert trace.barrier_fire[0] == 0
        assert trace.barrier_fire[1] == 4
        assert trace.makespan == 5
        assert trace.machine == "sbm-rtl"

    def test_unknown_machine(self):
        with pytest.raises(ValueError):
            run_clocked(simple_two_pe_program(), "vliw")

    def test_sampler_validation(self):
        program = simple_two_pe_program()

        class Bad:
            def sample(self, node, latency, rng):
                return latency.hi + 10

        with pytest.raises(ValueError):
            run_clocked(program, "sbm", Bad())

    def test_tick_budget(self):
        program = simple_two_pe_program()
        with pytest.raises(DeadlockError):
            run_clocked(program, "sbm", MaxSampler(), max_ticks=2)


class TestCrossModelEquivalence:
    """The clocked model must agree with the event-driven engine exactly
    when fed the same per-instruction durations."""

    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    @pytest.mark.parametrize("latency", [0, 2])
    @pytest.mark.parametrize("seed", [1, 3, 8])
    def test_identical_traces(self, machine, latency, seed):
        program, _ = scheduled_program(seed, machine, latency)
        event_sim = simulate_sbm if machine == "sbm" else simulate_dbm
        event = event_sim(program, UniformSampler(), rng=seed)
        clocked = run_clocked(program, machine, FixedSampler(dict(event.durations)))
        assert dict(clocked.start) == dict(event.start)
        assert dict(clocked.finish) == dict(event.finish)
        assert clocked.barrier_fire == event.barrier_fire
        assert clocked.makespan == event.makespan

    def test_extreme_corners_match_static_bound(self):
        program, result = scheduled_program(11)
        assert run_clocked(program, "sbm", MinSampler()).makespan == result.makespan.lo
        assert run_clocked(program, "sbm", MaxSampler()).makespan == result.makespan.hi


class TestStrictController:
    def test_one_per_tick_never_faster(self):
        program, _ = scheduled_program(13)
        event = simulate_sbm(program, UniformSampler(), rng=2)
        strict = run_clocked(
            program, "sbm", FixedSampler(dict(event.durations)), one_per_tick=True
        )
        assert strict.makespan >= event.makespan

    def test_latency_one_absorbs_serialization(self):
        """Compiled with barrier_latency >= 1, the strict sequential
        controller stays dependence-sound (the rtl module's measured
        hardware/compiler contract)."""
        for seed in range(8):
            program, _ = scheduled_program(seed, barrier_latency=1)
            for run in range(3):
                trace = run_clocked(
                    program, "sbm", UniformSampler(), rng=run, one_per_tick=True
                )
                trace.assert_sound(program.edges)

    def test_zero_latency_strict_mode_mostly_sound(self):
        """At the paper's ideal latency 0 the strict controller is *not*
        guaranteed sound (documented caveat) -- but violations must be
        rare and every trace must still complete without deadlock."""
        bad = total = 0
        for seed in range(10):
            program, _ = scheduled_program(seed)
            for run in range(2):
                trace = run_clocked(
                    program, "sbm", UniformSampler(), rng=run, one_per_tick=True
                )
                total += 1
                bad += bool(trace.verify(program.edges))
        assert bad <= total // 5
