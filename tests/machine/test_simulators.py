"""Tests for the SBM and DBM simulators: semantics and soundness.

These exercise the hardware behaviours of section 3.2 on hand-built
programs, then hammer scheduler output with randomized durations -- the
system-level oracle for the entire static analysis.
"""

import pytest

from repro.timing import Interval
from repro.barriers.mask import BarrierMask
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.durations import (
    FixedSampler,
    MaxSampler,
    MinSampler,
    UniformSampler,
)
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.dbm import simulate_dbm
from repro.machine.sbm import SBMSimulator, simulate_sbm
from repro.machine.trace import DeadlockError
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


def hand_program(streams, masks, order, edges=()):
    return MachineProgram(
        n_pes=len(streams),
        streams=tuple(tuple(s) for s in streams),
        masks=masks,
        barrier_order=tuple(order),
        initial_barrier_id=0,
        edges=tuple(edges),
    )


def simple_two_pe_program():
    """PE0: g [1,4]; barrier b1 {0,1}; PE1: i [1,1] after b1."""
    b0 = BarrierRef(0)
    b1 = BarrierRef(1)
    op_g = MachineOp("g", Interval(1, 4), "g")
    op_i = MachineOp("i", Interval(1, 1), "i")
    streams = [[b0, op_g, b1], [b0, b1, op_i]]
    masks = {
        0: BarrierMask.from_pes([0, 1], 2),
        1: BarrierMask.from_pes([0, 1], 2),
    }
    return hand_program(streams, masks, [0, 1], edges=[("g", "i")])


class TestBasicExecution:
    def test_initial_barrier_fires_at_zero(self):
        trace = simulate_sbm(simple_two_pe_program(), MaxSampler())
        assert trace.barrier_fire[0] == 0

    def test_barrier_fires_at_last_arrival(self):
        trace = simulate_sbm(simple_two_pe_program(), MaxSampler())
        assert trace.barrier_fire[1] == 4
        assert trace.start["i"] == 4
        assert trace.makespan == 5

    def test_exact_synchrony_release(self):
        trace = simulate_sbm(simple_two_pe_program(), MinSampler())
        assert trace.barrier_fire[1] == 1
        # both PEs resume at the fire instant: PE1 starts i exactly then
        assert trace.start["i"] == 1

    def test_verify_passes(self):
        program = simple_two_pe_program()
        trace = simulate_sbm(program, UniformSampler(), rng=3)
        assert trace.verify(program.edges) == []

    def test_deterministic_given_rng_seed(self):
        program = simple_two_pe_program()
        t1 = simulate_sbm(program, UniformSampler(), rng=9)
        t2 = simulate_sbm(program, UniformSampler(), rng=9)
        assert t1.durations == t2.durations and t1.makespan == t2.makespan

    def test_run_many(self):
        sim = SBMSimulator(simple_two_pe_program())
        traces = sim.run_many(5, UniformSampler(), seed=1)
        assert len(traces) == 5


class TestSBMFifoSemantics:
    def test_head_of_line_blocking(self):
        """A ready barrier behind the head must wait for the head."""
        b0 = BarrierRef(0)
        bA = BarrierRef(1)  # {0,1}: PE0 slow [10,10]
        bB = BarrierRef(2)  # {2,3}: ready at t=1
        slow = MachineOp("s", Interval(10, 10), "s")
        fast = MachineOp("f", Interval(1, 1), "f")
        streams = [
            [b0, slow, bA],
            [b0, bA],
            [b0, fast, bB],
            [b0, bB],
        ]
        masks = {
            0: BarrierMask.from_pes([0, 1, 2, 3], 4),
            1: BarrierMask.from_pes([0, 1], 4),
            2: BarrierMask.from_pes([2, 3], 4),
        }
        # queue order puts A first although B's participants arrive first
        program = hand_program(streams, masks, [0, 1, 2])
        trace = simulate_sbm(program, MaxSampler())
        assert trace.barrier_fire[1] == 10
        assert trace.barrier_fire[2] == 10  # delayed by the FIFO head
        # DBM fires B as soon as it is ready
        dbm = simulate_dbm(program, MaxSampler())
        assert dbm.barrier_fire[2] == 1

    def test_sbm_deadlock_on_impossible_order(self):
        """Queue order inconsistent with per-PE stream order deadlocks."""
        b0 = BarrierRef(0)
        b1 = BarrierRef(1)
        b2 = BarrierRef(2)
        streams = [[b0, b1, b2], [b0, b1, b2]]
        masks = {
            0: BarrierMask.from_pes([0, 1], 2),
            1: BarrierMask.from_pes([0, 1], 2),
            2: BarrierMask.from_pes([0, 1], 2),
        }
        program = hand_program(streams, masks, [0, 2, 1])
        with pytest.raises(DeadlockError):
            simulate_sbm(program, MaxSampler())


class TestDBMSemantics:
    def test_fires_in_arrival_order(self):
        program = simple_two_pe_program()
        trace = simulate_dbm(program, UniformSampler(), rng=1)
        assert trace.verify(program.edges) == []

    def test_adversarial_durations(self):
        """Producer at max, everything else at min: worst case for the
        consumer-side timing proofs."""
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 41)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=41, machine="dbm"))
        program = MachineProgram.from_schedule(result.schedule)
        for producer, _consumer in list(program.edges)[:10]:
            sampler = FixedSampler(
                {producer: case.dag.latency(producer).hi}, default="min"
            )
            trace = simulate_dbm(program, sampler)
            trace.assert_sound(program.edges)


class TestSchedulerSoundnessSweep:
    """The central system test: schedules never violate dependences."""

    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_durations(self, machine, seed):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=12), seed)
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=8, seed=seed, machine=machine)
        )
        program = MachineProgram.from_schedule(result.schedule)
        simulate = simulate_sbm if machine == "sbm" else simulate_dbm
        for sampler in (MinSampler(), MaxSampler()):
            simulate(program, sampler).assert_sound(program.edges)
        for run in range(6):
            simulate(program, UniformSampler(), rng=run).assert_sound(program.edges)

    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    def test_makespan_extremes_match_static_interval(self, machine):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 77)
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=8, seed=77, machine=machine)
        )
        program = MachineProgram.from_schedule(result.schedule)
        simulate = simulate_sbm if machine == "sbm" else simulate_dbm
        assert simulate(program, MinSampler()).makespan == result.makespan.lo
        assert simulate(program, MaxSampler()).makespan == result.makespan.hi

    def test_uniform_runs_within_static_interval(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 78)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=78))
        program = MachineProgram.from_schedule(result.schedule)
        for run in range(10):
            span = simulate_sbm(program, UniformSampler(), rng=run).makespan
            assert result.makespan.lo <= span <= result.makespan.hi

    def test_insertion_modes_both_sound(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 79)
        for mode in ("conservative", "optimal"):
            result = schedule_dag(
                case.dag, SchedulerConfig(n_pes=8, seed=79, insertion=mode)
            )
            program = MachineProgram.from_schedule(result.schedule)
            for run in range(4):
                simulate_sbm(program, UniformSampler(), rng=run).assert_sound(
                    program.edges
                )

    def test_ablation_policies_sound(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 80)
        for cfg in (
            SchedulerConfig(n_pes=8, assignment="roundrobin"),
            SchedulerConfig(n_pes=8, ordering="minmax"),
            SchedulerConfig(n_pes=8, lookahead=4),
            SchedulerConfig(n_pes=8, serialization_slack=4),
        ):
            result = schedule_dag(case.dag, cfg)
            program = MachineProgram.from_schedule(result.schedule)
            for run in range(3):
                simulate_sbm(program, UniformSampler(), rng=run).assert_sound(
                    program.edges
                )
