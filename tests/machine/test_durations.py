"""Tests for the duration samplers."""

import random

import pytest

from repro.timing import Interval
from repro.machine.durations import (
    BimodalSampler,
    FixedSampler,
    MaxSampler,
    MinSampler,
    UniformSampler,
)

IV = Interval(1, 4)
RNG = lambda: random.Random(0)


class TestSamplers:
    def test_min_and_max(self):
        assert MinSampler().sample("n", IV, RNG()) == 1
        assert MaxSampler().sample("n", IV, RNG()) == 4

    def test_uniform_in_range(self):
        rng = RNG()
        sampler = UniformSampler()
        draws = {sampler.sample("n", IV, rng) for _ in range(200)}
        assert draws <= {1, 2, 3, 4}
        assert len(draws) == 4  # all values reachable

    def test_uniform_point_short_circuit(self):
        assert UniformSampler().sample("n", Interval(7, 7), RNG()) == 7

    def test_bimodal_extremes_only(self):
        rng = RNG()
        sampler = BimodalSampler(p_fast=0.5)
        draws = {sampler.sample("n", IV, rng) for _ in range(200)}
        assert draws == {1, 4}

    def test_bimodal_probability_validation(self):
        with pytest.raises(ValueError):
            BimodalSampler(p_fast=1.5)

    def test_bimodal_all_fast(self):
        sampler = BimodalSampler(p_fast=1.0)
        assert all(sampler.sample("n", IV, RNG()) == 1 for _ in range(20))

    def test_fixed_lookup_and_default(self):
        sampler = FixedSampler({"a": 2}, default="min")
        assert sampler.sample("a", IV, RNG()) == 2
        assert sampler.sample("b", IV, RNG()) == 1
        assert FixedSampler({}).sample("b", IV, RNG()) == 4  # default max

    def test_fixed_out_of_range_rejected(self):
        sampler = FixedSampler({"a": 9})
        with pytest.raises(ValueError):
            sampler.sample("a", IV, RNG())

    @pytest.mark.parametrize("default", ["mx", "MAX", "", "median"])
    def test_fixed_bad_default_rejected_at_construction(self, default):
        # A typo like "mx" would otherwise silently behave as "min"
        # (the fallback branch) for every unlisted node.
        with pytest.raises(ValueError, match="'max' or 'min'"):
            FixedSampler({}, default=default)
