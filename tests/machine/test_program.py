"""Tests for lowering schedules to machine programs."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


@pytest.fixture(scope="module")
def result():
    case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 31)
    return schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=31))


@pytest.fixture(scope="module")
def program(result):
    return MachineProgram.from_schedule(result.schedule)


class TestLowering:
    def test_one_stream_per_pe(self, program):
        assert len(program.streams) == 8

    def test_instruction_count_matches(self, program, result):
        assert program.n_instructions == len(result.schedule.dag.real_nodes)

    def test_barrier_count_excludes_initial(self, program, result):
        assert program.n_barriers == result.counts.barriers_final

    def test_queue_starts_with_initial(self, program):
        assert program.barrier_order[0] == program.initial_barrier_id

    def test_masks_match_participants(self, program, result):
        for barrier in result.schedule.barriers(include_initial=True):
            mask = program.masks[barrier.id]
            assert set(mask) == barrier.participants

    def test_queue_is_linear_extension_of_barrier_dag(self, program, result):
        pos = {bid: k for k, bid in enumerate(program.barrier_order)}
        bd = result.schedule.barrier_dag()
        for edge in bd.edges():
            assert pos[edge.src] < pos[edge.dst]

    def test_every_wait_references_known_mask(self, program):
        for stream in program.streams:
            for item in stream:
                if isinstance(item, BarrierRef):
                    assert item.barrier_id in program.masks

    def test_edges_carried_for_verification(self, program, result):
        assert set(program.edges) == set(result.schedule.dag.real_edges())

    def test_render(self, program):
        text = program.render()
        assert "barrier queue" in text and "PE0:" in text

    def test_mnemonics_populated(self, program):
        ops = [i for s in program.streams for i in s if isinstance(i, MachineOp)]
        assert all(op.mnemonic for op in ops)


class TestValidation:
    def test_stream_count_must_match(self, program):
        with pytest.raises(ValueError):
            MachineProgram(
                n_pes=2,
                streams=program.streams,
                masks=program.masks,
                barrier_order=program.barrier_order,
                initial_barrier_id=program.initial_barrier_id,
                edges=program.edges,
            )

    def test_order_and_masks_must_agree(self, program):
        with pytest.raises(ValueError):
            MachineProgram(
                n_pes=program.n_pes,
                streams=program.streams,
                masks=program.masks,
                barrier_order=program.barrier_order[:-1],
                initial_barrier_id=program.initial_barrier_id,
                edges=program.edges,
            )
