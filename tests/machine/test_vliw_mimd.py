"""Tests for the VLIW model (section 6) and the conventional-MIMD baseline."""

import pytest

from repro.timing import Interval
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.ir.dag import InstructionDAG
from repro.machine.mimd import directed_sync_counts, simulate_conventional_mimd
from repro.machine.durations import MaxSampler
from repro.machine.vliw import vliw_schedule
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

from tests.conftest import chain_dag, diamond_dag


class TestVliw:
    def test_chain_serializes(self):
        dag = chain_dag([(1, 4), (1, 1), (16, 24)])
        sched = vliw_schedule(dag, 4)
        assert sched.makespan == 29  # sum of max times
        assert sched.is_critical_path_optimal

    def test_diamond_parallelizes(self):
        sched = vliw_schedule(diamond_dag(), 2)
        # a(4) then b and c in parallel, d after c: 4 + 24 + 1
        assert sched.makespan == 29
        assert sched.is_critical_path_optimal

    def test_single_pe_sums_everything(self):
        sched = vliw_schedule(diamond_dag(), 1)
        assert sched.makespan == 4 + 1 + 24 + 1

    def test_dependences_respected(self):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), 51)
        sched = vliw_schedule(case.dag, 8)
        for g, i in case.dag.real_edges():
            assert sched.finish[g] <= sched.start[i]

    def test_no_processor_overlap(self):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), 52)
        sched = vliw_schedule(case.dag, 4)
        by_pe = {}
        for node, pe in sched.assignment.items():
            by_pe.setdefault(pe, []).append((sched.start[node], sched.finish[node]))
        for spans in by_pe.values():
            spans.sort()
            for (s1, f1), (s2, _f2) in zip(spans, spans[1:]):
                assert f1 <= s2

    def test_uses_max_latency(self):
        dag = chain_dag([(1, 4)])
        sched = vliw_schedule(dag, 1)
        assert sched.finish[0] == 4

    def test_mostly_critical_path_optimal_on_corpus(self):
        """Paper: 'an optimal schedule ... was determined for almost all
        the synthetic benchmarks'."""
        optimal = 0
        n = 20
        for seed in range(n):
            case = compile_case(GeneratorConfig(n_statements=60, n_variables=10), seed)
            if vliw_schedule(case.dag, 8).is_critical_path_optimal:
                optimal += 1
        assert optimal >= 0.8 * n

    def test_utilization_bounds(self):
        case = compile_case(GeneratorConfig(n_statements=40, n_variables=10), 53)
        sched = vliw_schedule(case.dag, 8)
        assert 0.0 < sched.utilization() <= 1.0

    def test_rejects_bad_pes(self):
        with pytest.raises(ValueError):
            vliw_schedule(diamond_dag(), 0)


class TestConventionalMimd:
    @pytest.fixture(scope="class")
    def scheduled(self):
        case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), 54)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=54))
        return case, result

    def test_naive_counts_cross_edges(self, scheduled):
        case, result = scheduled
        naive, reduced = directed_sync_counts(case.dag, result.schedule)
        cross = sum(
            1
            for g, i in case.dag.real_edges()
            if result.schedule.processor_of(g) != result.schedule.processor_of(i)
        )
        assert naive == cross
        assert reduced <= naive

    def test_barrier_mimd_beats_structural_reduction(self, scheduled):
        """The paper's motivation: timing-based elimination removes more
        synchronization than Shaffer/Callahan graph-structural reduction.

        On the barrier MIMD every cross edge costs zero runtime syncs; on
        the conventional MIMD `reduced` directed syncs remain."""
        case, result = scheduled
        _naive, reduced = directed_sync_counts(case.dag, result.schedule)
        assert result.counts.barriers_final < reduced

    def test_simulation_respects_dependences(self, scheduled):
        case, result = scheduled
        sim = simulate_conventional_mimd(result.schedule, rng=0, sync_latency=2)
        for g, i in case.dag.real_edges():
            assert sim.finish[g] <= sim.start[i]

    def test_sync_latency_slows_execution(self, scheduled):
        _case, result = scheduled
        fast = simulate_conventional_mimd(
            result.schedule, MaxSampler(), rng=0, sync_latency=0
        )
        slow = simulate_conventional_mimd(
            result.schedule, MaxSampler(), rng=0, sync_latency=10
        )
        assert slow.makespan >= fast.makespan

    def test_reduction_ratio(self, scheduled):
        _case, result = scheduled
        sim = simulate_conventional_mimd(result.schedule, rng=1)
        assert 0.0 <= sim.reduction_ratio <= 1.0

    def test_zero_cross_edges(self):
        dag = chain_dag([(1, 1), (1, 1)])
        result = schedule_dag(dag, SchedulerConfig(n_pes=1))
        sim = simulate_conventional_mimd(result.schedule)
        assert sim.n_cross_edges == 0 and sim.reduction_ratio == 0.0
