"""Failure-mode tests for the execution engine: deadlocks and overruns.

The engine's diagnostics are load-bearing -- when a fault campaign or a
miscompiled program hangs the machine, the error message is the only
clue to which processors are stuck where.  These tests pin the shape of
those diagnostics.
"""

import random

import pytest

from repro.timing import Interval
from repro.barriers.mask import BarrierMask
from repro.machine.durations import MaxSampler
from repro.machine.engine import run_machine
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.sbm import SBMController, simulate_sbm
from repro.machine.trace import DeadlockError, OrderViolation


def hand_program(streams, masks, order, edges=()):
    return MachineProgram(
        n_pes=len(streams),
        streams=tuple(tuple(s) for s in streams),
        masks=masks,
        barrier_order=tuple(order),
        initial_barrier_id=0,
        edges=tuple(edges),
    )


class TestSBMQueueOrderDeadlock:
    def _mismatched_program(self):
        """The compile-time queue order disagrees with stream order.

        PE0's stream waits on b1 while PE1's waits on b2, but the FIFO
        queue is loaded [b0, b1, b2] with b1's mask covering *both* PEs:
        the head (b1) needs PE1, PE1 is stuck at b2, and b2 can never
        reach the head -- a real SBM hardware hang.
        """
        b0, b1, b2 = BarrierRef(0), BarrierRef(1), BarrierRef(2)
        streams = [[b0, b1], [b0, b2, b1]]
        masks = {
            0: BarrierMask.from_pes([0, 1], 2),
            1: BarrierMask.from_pes([0, 1], 2),
            2: BarrierMask.from_pes([1], 2),
        }
        return hand_program(streams, masks, [0, 1, 2])

    def test_deadlock_raised(self):
        with pytest.raises(DeadlockError):
            simulate_sbm(self._mismatched_program(), MaxSampler())

    def test_diagnostic_names_stuck_pes_and_barriers(self):
        with pytest.raises(DeadlockError) as exc:
            simulate_sbm(self._mismatched_program(), MaxSampler())
        message = str(exc.value)
        assert "sbm" in message
        assert "no barrier can fire" in message
        # Both stuck processors and the barriers they wait on are named.
        assert "0: 'b1'" in message
        assert "1: 'b2'" in message

    def test_diagnostic_names_pending_barrier_and_missing_pes(self):
        # The SBM's queue head is b1 (b0 fired); PE1 is stuck at b2 and
        # never arrives at b1 -- the diagnostic must say exactly that.
        with pytest.raises(DeadlockError) as exc:
            simulate_sbm(self._mismatched_program(), MaxSampler())
        message = str(exc.value)
        assert "pending barrier b1" in message
        assert "still needs PEs [1]" in message

    def test_pending_accessor(self):
        program = self._mismatched_program()
        controller = SBMController(program)
        assert controller.pending() == 0
        controller.head = len(program.barrier_order)
        assert controller.pending() is None


class _RogueController:
    """Fires the initial barrier, then fires b1 regardless of arrivals."""

    def __init__(self):
        self.calls = 0

    def select(self, waiting, arrival):
        self.calls += 1
        if self.calls == 1:
            return 0, 0
        return 1, max(arrival.values(), default=0)


class TestNonWaitingParticipant:
    def test_firing_with_absent_participant_is_fatal(self):
        # b1's mask claims PE1 participates, but PE1's stream retires
        # without ever waiting on it.  A controller that fires b1 anyway
        # models corrupted barrier state; the engine must refuse.
        b0, b1 = BarrierRef(0), BarrierRef(1)
        op = MachineOp("x", Interval(1, 1), "x")
        streams = [[b0, b1], [b0, op]]
        masks = {
            0: BarrierMask.from_pes([0, 1], 2),
            1: BarrierMask.from_pes([0, 1], 2),
        }
        program = hand_program(streams, masks, [0, 1])
        with pytest.raises(DeadlockError) as exc:
            run_machine(program, _RogueController(), "sbm", MaxSampler())
        message = str(exc.value)
        assert "barrier b1 fired" in message
        assert "PE 1" in message
        assert "not waiting" in message


class TestOrderViolationSlack:
    def test_slack_is_negative_start_minus_finish(self):
        v = OrderViolation("g", "i", producer_finish=7, consumer_start=4)
        assert v.slack == -3

    def test_message_includes_slack(self):
        v = OrderViolation("g", "i", producer_finish=7, consumer_start=4)
        assert "(slack -3)" in str(v)

    def test_assert_sound_message_carries_per_violation_slack(self):
        b0 = BarrierRef(0)
        g = MachineOp("g", Interval(5, 5), "g")
        i = MachineOp("i", Interval(1, 1), "i")
        masks = {0: BarrierMask.from_pes([0, 1], 2)}
        # g on PE0 finishes at 5; i on PE1 starts at 0: the g->i edge is
        # violated with slack -5 and assert_sound must say so.
        program = hand_program(
            [[b0, g], [b0, i]], masks, [0], edges=[("g", "i")]
        )
        trace = simulate_sbm(program, MaxSampler())
        with pytest.raises(AssertionError, match=r"slack -5"):
            trace.assert_sound(program.edges)


class _LiteralSampler:
    """Returns a fixed value with no interval validation -- unlike
    FixedSampler, which refuses to produce out-of-interval durations."""

    def __init__(self, value):
        self.value = value

    def sample(self, node, latency, rng):
        return self.value


class TestOverrunMode:
    def _one_op_program(self):
        b0 = BarrierRef(0)
        op = MachineOp("x", Interval(2, 4), "x")
        masks = {0: BarrierMask.from_pes([0], 1)}
        return hand_program([[b0, op]], masks, [0])

    def test_out_of_interval_rejected_by_default(self):
        program = self._one_op_program()
        sampler = _LiteralSampler(9)
        with pytest.raises(ValueError, match="outside"):
            run_machine(program, SBMController(program), "sbm", sampler)

    def test_allow_overrun_records_signed_excess(self):
        program = self._one_op_program()
        trace = run_machine(
            program,
            SBMController(program),
            "sbm",
            _LiteralSampler(9),
            allow_overrun=True,
        )
        assert trace.overruns == {"x": 5}  # 9 - hi(4)
        assert trace.finish["x"] - trace.start["x"] == 9
        assert "overruns=1" in trace.describe()

    def test_allow_overrun_records_underrun_negative(self):
        program = self._one_op_program()
        trace = run_machine(
            program,
            SBMController(program),
            "sbm",
            _LiteralSampler(1),
            allow_overrun=True,
        )
        assert trace.overruns == {"x": -1}  # 1 - lo(2)

    def test_in_interval_run_records_no_overruns(self):
        program = self._one_op_program()
        trace = run_machine(
            program,
            SBMController(program),
            "sbm",
            MaxSampler(),
            rng=random.Random(0),
            allow_overrun=True,
        )
        assert trace.overruns == {}
        assert "overruns" not in trace.describe()
