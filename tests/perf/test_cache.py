"""The on-disk sweep cache: keys, round-trips, hits, and escape hatches."""

from __future__ import annotations

import json

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_point, sweep
from repro.perf.cache import (
    cache_dir,
    load_point_stats,
    point_cache_key,
    resolve_cache,
    stats_from_json,
    stats_to_json,
    store_point_stats,
)
from repro.synth.generator import GeneratorConfig


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    return tmp_path / "cache"


def point(**kw):
    defaults = dict(
        generator=GeneratorConfig(n_statements=12, n_variables=5),
        scheduler=SchedulerConfig(n_pes=4),
        count=3,
        master_seed=5,
    )
    defaults.update(kw)
    return ExperimentPoint(**defaults)


class TestKey:
    def test_stable(self):
        assert point_cache_key(point()) == point_cache_key(point())

    def test_varies_with_every_input(self):
        base = point_cache_key(point())
        assert point_cache_key(point(master_seed=6)) != base
        assert point_cache_key(point(count=4)) != base
        assert (
            point_cache_key(point(scheduler=SchedulerConfig(n_pes=8))) != base
        )
        assert (
            point_cache_key(
                point(generator=GeneratorConfig(n_statements=13, n_variables=5))
            )
            != base
        )

    def test_varies_with_version(self, monkeypatch):
        base = point_cache_key(point())
        monkeypatch.setattr("repro.perf.cache.__version__", "0.0.0-test")
        assert point_cache_key(point()) != base


class TestResolve:
    def test_default_off(self):
        assert resolve_cache(None) is False

    def test_env_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert resolve_cache(None) is True

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert resolve_cache(False) is False

    def test_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "maybe")
        with pytest.raises(ValueError):
            resolve_cache(None)


class TestRoundTrip:
    def test_exact_stats_round_trip(self):
        stats = run_point(point(), cache=False)
        assert stats_from_json(stats_to_json(stats)) == stats

    def test_store_load(self):
        p = point()
        stats = run_point(p, cache=False)
        path = store_point_stats(p, stats)
        assert path.is_file()
        assert load_point_stats(p) == stats

    def test_miss_is_none(self):
        assert load_point_stats(point(master_seed=404)) is None

    def test_corrupt_entry_is_a_miss(self):
        p = point()
        path = store_point_stats(p, run_point(p, cache=False))
        path.write_text("{not json")
        assert load_point_stats(p) is None
        path.write_text(json.dumps({"format": "something.else"}))
        assert load_point_stats(p) is None


class TestRunPointIntegration:
    def test_hit_is_served_from_disk(self):
        """Poison the stored entry: a second run_point must return the
        poisoned stats, proving it consulted the cache, not the pipeline."""
        from dataclasses import replace

        p = point()
        real = run_point(p, cache=True)
        store_point_stats(p, replace(real, total_repairs=777))
        assert run_point(p, cache=True).total_repairs == 777
        assert run_point(p, cache=False).total_repairs == real.total_repairs

    def test_accept_filter_never_cached(self):
        p = point()
        stats = run_point(p, accept=lambda case: True, cache=True)
        assert stats.n_benchmarks == p.count
        assert load_point_stats(p) is None  # nothing was stored

    def test_sweep_passthrough(self, isolated_cache):
        out = sweep(point(), "scheduler.n_pes", [2, 4], cache=True)
        assert len(list(isolated_cache.glob("sweeps/*.json"))) == 2
        again = sweep(point(), "scheduler.n_pes", [2, 4], cache=True)
        assert [stats for _, stats in out] == [stats for _, stats in again]

    def test_cache_dir_override(self, isolated_cache):
        assert str(cache_dir()).startswith(str(isolated_cache))
