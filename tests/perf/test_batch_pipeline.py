"""The batched corpus pipeline: digest parity and padded-tensor edges.

The batched path -- vectorized generation (:mod:`repro.synth.genvec`),
lockstep scheduling (:mod:`repro.core.batchrun`), and the zero-copy
shared-memory driver (:mod:`repro.perf.shm`) -- must be *bit-identical*
to the case-at-a-time pipeline: the whole matrix of
``REPRO_BACKEND={python,numpy}`` x batched/unbatched x serial/parallel
has to land on one ``results_digest``.  The padded 3-D tensors of
:mod:`repro.kernels.batch` are additionally pinned at the uint64 word
edges (63/64/65 bits), where an off-by-one in the word count silently
truncates the widest case.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.perf.parallel import (
    CompactResult,
    fork_available,
    resolve_batch,
    results_digest,
)
from repro.synth.generator import GeneratorConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

needs_numpy = pytest.mark.skipif(
    not kernels.have_numpy(), reason="numpy not available"
)


def batch_point(**kw):
    defaults = dict(
        generator=GeneratorConfig(n_statements=24, n_variables=8),
        scheduler=SchedulerConfig(n_pes=8),
        count=20,
        master_seed=17,
    )
    defaults.update(kw)
    return ExperimentPoint(**defaults)


class TestResolveBatch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None) == 100

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "7")
        assert resolve_batch(None) == 7

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "7")
        assert resolve_batch(3) == 3

    def test_one_is_valid(self):
        assert resolve_batch(1) == 1

    @pytest.mark.parametrize("bad", ["0", "-4", "x", "2.5"])
    def test_bad_env_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BATCH", bad)
        with pytest.raises(ValueError):
            resolve_batch(None)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_batch(0)


class TestDigestParityMatrix:
    """One digest across backend x batched/unbatched x serial/parallel."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_batched_vs_unbatched(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        point = batch_point()
        unbatched = results_digest(run_corpus(point, jobs=1, batch=1))
        batched = results_digest(run_corpus(point, jobs=1, batch=8))
        assert unbatched == batched

    @needs_fork
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_parallel_matches_batched_serial(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        point = batch_point()
        serial = results_digest(run_corpus(point, jobs=1, batch=8))
        parallel = results_digest(run_corpus(point, jobs=2, batch=1))
        assert serial == parallel

    def test_batched_filtered_corpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        point = batch_point(count=10)

        def accept(case):
            return case.implied_synchronizations % 2 == 0

        a = results_digest(run_corpus(point, accept=accept, batch=1))
        b = results_digest(run_corpus(point, accept=accept, batch=4))
        assert a == b

    def test_batched_exhaustion_matches_serial(self):
        point = batch_point(count=3)
        messages = []
        for batch in (1, 4):
            with pytest.raises(RuntimeError) as err:
                run_corpus(point, accept=lambda case: False, batch=batch)
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    @needs_numpy
    def test_check_mode_batched(self, monkeypatch):
        """Check mode forces the kernels on and cross-checks per case."""
        monkeypatch.setenv("REPRO_CHECK_KERNELS", "1")
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        point = batch_point(count=6)
        batched = results_digest(run_corpus(point, jobs=1, batch=6))
        monkeypatch.delenv("REPRO_CHECK_KERNELS", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert batched == results_digest(run_corpus(point, jobs=1, batch=1))


class TestBatchedScheduling:
    @needs_numpy
    def test_schedule_cases_matches_schedule_dag(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        from repro.core.batchrun import schedule_cases
        from repro.synth.corpus import compile_case

        generator = GeneratorConfig(n_statements=30, n_variables=8)
        cases = [compile_case(generator, seed) for seed in range(40)]
        configs = [
            SchedulerConfig(n_pes=16, seed=case.seed & 0xFFFFFFFF)
            for case in cases
        ]
        serial = [
            schedule_dag(case.dag, config)
            for case, config in zip(cases, configs)
        ]
        batched = schedule_cases([case.dag for case in cases], configs)
        assert results_digest(serial) == results_digest(batched)

    def test_small_chunk_falls_back_to_python(self, monkeypatch):
        """Below the batch threshold the per-case scheduler runs."""
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_CHECK_KERNELS", raising=False)
        from repro.core.batchrun import schedule_cases
        from repro.synth.corpus import compile_case

        case = compile_case(GeneratorConfig(), 5)
        config = SchedulerConfig(n_pes=4)
        kernels.reset_calls()
        [result] = schedule_cases([case.dag], [config])
        calls = kernels.kernels_info()["calls"]
        assert calls.get("kernels.calls.batch.python") == 1
        assert "kernels.calls.batch.numpy" not in calls
        reference = schedule_dag(case.dag, config)
        assert results_digest([result]) == results_digest([reference])


@needs_numpy
class TestWordEdges:
    """Padded uint64 tensors at 63/64/65 bits and rows."""

    @pytest.mark.parametrize("n_bits", [1, 63, 64, 65, 127, 128, 129])
    def test_pack_roundtrip(self, n_bits):
        from repro.kernels.batch import pack_bitmats, unpack_bitmats

        rows = [
            [0, 1, (1 << n_bits) - 1, 1 << (n_bits - 1)],
            [(1 << n_bits) - 1],
            [],
        ]
        tensor, sizes = pack_bitmats(rows, [n_bits] * len(rows))
        assert unpack_bitmats(tensor, sizes) == rows

    @pytest.mark.parametrize("n_nodes", [63, 64, 65])
    def test_reach_batch_at_word_edges(self, n_nodes):
        """A chain DAG with n nodes reaches everything downstream."""
        from repro.kernels.batch import reach_batch

        succ_idx = [
            [[p + 1] if p + 1 < n_nodes else [] for p in range(n_nodes)]
        ]
        self_bits = [[1 << p for p in range(n_nodes)]]
        [rows] = reach_batch(succ_idx, self_bits, [n_nodes])
        for p in range(n_nodes):
            expected = 0
            for q in range(p + 1, n_nodes):
                expected |= 1 << q
            assert rows[p] == expected

    @pytest.mark.parametrize("n_statements", [60, 63, 66])
    def test_mixed_widths_share_one_tensor(self, monkeypatch, n_statements):
        """Cases whose node counts straddle a word edge batch together."""
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        from repro.core.batchrun import schedule_cases
        from repro.synth.corpus import compile_case

        generator = GeneratorConfig(n_statements=n_statements, n_variables=8)
        cases = [compile_case(generator, seed) for seed in range(20)]
        sizes = {len(case.dag.nodes) for case in cases}
        assert len(sizes) > 1  # genuinely ragged chunk
        configs = [
            SchedulerConfig(n_pes=8, seed=case.seed & 0xFFFFFFFF)
            for case in cases
        ]
        batched = schedule_cases([case.dag for case in cases], configs)
        serial = [
            schedule_dag(case.dag, config)
            for case, config in zip(cases, configs)
        ]
        assert results_digest(serial) == results_digest(batched)


@needs_fork
@needs_numpy
class TestZeroCopyDriver:
    def test_compact_results_match_serial_digest(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        from repro.perf.shm import run_cases_shm

        point = batch_point(count=16)
        compact = run_cases_shm(
            point.generator,
            point.count,
            point.master_seed,
            point.timing,
            point.scheduler,
            jobs=2,
        )
        assert compact is not None
        assert all(isinstance(r, CompactResult) for r in compact)
        serial = run_corpus(point, jobs=1, batch=1)
        assert results_digest(compact) == results_digest(serial)

    def test_aggregation_reads_compact_results(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        from repro.metrics.stats import aggregate_results

        point = batch_point(count=12)
        serial = aggregate_results(run_corpus(point, jobs=1))
        compact = aggregate_results(
            run_corpus(point, jobs=2, compact=True)
        )
        assert serial.per_benchmark == compact.per_benchmark
        assert serial.mean_makespan_max == compact.mean_makespan_max
        assert serial.mean_processors_used == compact.mean_processors_used

    def test_python_backend_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        from repro.perf.shm import run_cases_shm

        point = batch_point(count=8)
        assert (
            run_cases_shm(
                point.generator,
                point.count,
                point.master_seed,
                point.timing,
                point.scheduler,
                jobs=2,
            )
            is None
        )
        # ... and run_corpus still serves full results via the pool.
        results = run_corpus(point, jobs=2, compact=True)
        assert results_digest(results) == results_digest(
            run_corpus(point, jobs=1)
        )
