"""Perf-workload presets (:data:`repro.perf.report.PRESETS`).

``paper3500`` is the paper-scale evaluation -- 35 sweep points x 100
benchmarks = 3500 scheduled benchmarks -- and ``scale1024`` the 1024-PE
stress leg behind the CI backend speed gate.  These tests pin the preset
tables structurally and smoke the multi-leg report path at count=1.
"""

from __future__ import annotations

import pytest

from repro.perf.report import (
    PERF_AXIS,
    PRESET_COUNTS,
    PRESETS,
    run_perf_report,
    trajectory_entry,
)


class TestPresetTables:
    def test_paper3500_is_paper_scale(self):
        points = sum(len(values) for _, values, _ in PRESETS["paper3500"])
        assert points == 35
        assert points * PRESET_COUNTS["paper3500"] == 3500

    def test_paper3500_covers_the_paper_axes(self):
        axes = [axis for axis, _, _ in PRESETS["paper3500"]]
        assert PERF_AXIS in axes
        assert "scheduler.n_pes" in axes
        pes_values = dict(
            (axis, values) for axis, values, _ in PRESETS["paper3500"]
        )["scheduler.n_pes"]
        assert max(pes_values) == 1024
        ablations = [
            overrides for _, _, overrides in PRESETS["paper3500"] if overrides
        ]
        assert {"scheduler.assignment": "roundrobin"} in ablations
        assert {"scheduler.machine": "dbm"} in ablations
        assert {"scheduler.insertion": "optimal"} in ablations

    def test_scale1024_pins_machine_width(self):
        ((axis, values, overrides),) = PRESETS["scale1024"]
        assert axis == PERF_AXIS
        assert overrides == {"scheduler.n_pes": 1024}
        assert len(values) >= 3

    def test_every_preset_has_a_count(self):
        assert set(PRESET_COUNTS) == set(PRESETS)
        assert all(count > 0 for count in PRESET_COUNTS.values())


class TestRunPerfReportPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown perf preset"):
            run_perf_report(count=1, jobs=1, preset="paper9000")

    def test_scale1024_smoke(self):
        report = run_perf_report(count=1, jobs=1, preset="scale1024")
        d = report.data
        assert d["preset"] == "scale1024"
        (leg,) = d["legs"]
        assert leg["axis"] == PERF_AXIS
        assert leg["values"] == list(PRESETS["scale1024"][0][1])
        assert leg["base"] == {"scheduler.n_pes": 1024}
        # Each leg carries its own throughput account.
        assert leg["cases"] == len(leg["values"]) * 1
        assert leg["wall_s"] > 0
        assert leg["cases_per_s"] > 0
        assert len(d["points"]) == len(PRESETS["scale1024"][0][1])
        assert all(p["axis"] == PERF_AXIS for p in d["points"])
        assert d["backend"]["resolved"] in ("python", "numpy")
        # The simulation pass runs on the leg's base point, i.e. at
        # 1024 PEs -- the digest certifies 1024-PE behaviour.
        assert d["results_digest"]
        entry = trajectory_entry(d)
        assert entry["preset"] == "scale1024"
        assert entry["backend"] == d["backend"]["resolved"]

    def test_default_preset_values_override(self):
        report = run_perf_report(count=1, jobs=1, values=(10,))
        d = report.data
        assert d["preset"] == "default"
        assert d["values"] == [10]
        assert [p["value"] for p in d["points"]] == [10]
        assert d["count"] == 1

    def test_default_count_comes_from_preset_table(self):
        # Structural only (no run): the CLI passes count=None through.
        assert PRESET_COUNTS["default"] == 25
