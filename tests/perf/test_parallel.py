"""The parallel corpus driver: jobs resolution and serial/parallel parity.

The determinism regression here is the load-bearing guarantee of the
whole performance layer: a seeded corpus scheduled with ``jobs=4`` must
produce the *identical* ``ScheduleResult`` sequence as the serial loop
(compared via a stable digest), so parallelization can never silently
move paper numbers.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_corpus, run_point
from repro.perf.parallel import (
    fork_available,
    resolve_jobs,
    results_digest,
    run_cases_parallel,
)
from repro.synth.generator import GeneratorConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)


def small_point(**kw):
    defaults = dict(
        generator=GeneratorConfig(n_statements=15, n_variables=6),
        scheduler=SchedulerConfig(n_pes=4),
        count=8,
        master_seed=21,
    )
    defaults.update(kw)
    return ExperimentPoint(**defaults)


def _accept_even_syncs(case) -> bool:  # module-level: must cross processes
    return case.implied_synchronizations % 2 == 0


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestDeterminism:
    @needs_fork
    def test_serial_vs_jobs4_identical(self):
        """The determinism regression: byte-identical result sequences."""
        point = small_point()
        serial = run_corpus(point, jobs=1)
        parallel = run_corpus(point, jobs=4)
        assert len(parallel) == point.count
        assert results_digest(serial) == results_digest(parallel)

    @needs_fork
    def test_accept_filter_parity(self):
        point = small_point(count=5)
        serial = run_corpus(point, accept=_accept_even_syncs, jobs=1)
        parallel = run_corpus(point, accept=_accept_even_syncs, jobs=4)
        assert results_digest(serial) == results_digest(parallel)

    @needs_fork
    def test_run_point_stats_match(self):
        point = small_point()
        s1 = run_point(point, jobs=1, cache=False)
        s4 = run_point(point, jobs=4, cache=False)
        assert s1.per_benchmark == s4.per_benchmark
        assert s1.mean_makespan_max == s4.mean_makespan_max

    def test_digest_sensitive_to_results(self):
        a = run_corpus(small_point())
        b = run_corpus(small_point(master_seed=22))
        assert results_digest(a) != results_digest(b)
        assert results_digest(a) != results_digest(a[:-1])


class TestFallbacks:
    def test_unpicklable_accept_falls_back(self):
        """A closure accept filter cannot cross processes; the parallel
        entry declines (returns None) and run_corpus serves serially."""
        point = small_point(count=4)
        threshold = 0

        def accept(case):  # closure -> unpicklable
            return case.implied_synchronizations >= threshold

        assert (
            run_cases_parallel(
                point.generator,
                point.count,
                point.master_seed,
                point.timing,
                point.scheduler,
                accept,
                jobs=4,
            )
            is None
        )
        results = run_corpus(point, accept=accept, jobs=4)
        assert results_digest(results) == results_digest(run_corpus(point))

    def test_jobs1_never_pools(self):
        point = small_point(count=2)
        assert (
            run_cases_parallel(
                point.generator,
                point.count,
                point.master_seed,
                point.timing,
                point.scheduler,
                None,
                jobs=1,
            )
            is None
        )

    @needs_fork
    def test_exhausted_filter_raises_like_serial(self):
        point = small_point(count=2)

        with pytest.raises(RuntimeError, match="corpus filter accepted only"):
            run_corpus(
                point, accept=_reject_everything, jobs=4
            )


def _reject_everything(case) -> bool:  # module-level: must cross processes
    return False
