"""The opt-in per-stage timer layer and its pipeline integration."""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_point
from repro.perf.timers import (
    STAGES,
    StageTimings,
    add_to_current,
    collect_timings,
    stage,
)
from repro.synth.generator import GeneratorConfig


class TestStageTimings:
    def test_dict_round_trip(self):
        t = StageTimings(generate=1.0, merge=0.25)
        assert StageTimings.from_dict(t.as_dict()) == t

    def test_merge_from_accumulates(self):
        t = StageTimings(schedule=1.0)
        t.merge_from({"schedule": 0.5, "simulate": 2.0})
        t.merge_from(StageTimings(schedule=0.25))
        assert t.schedule == pytest.approx(1.75)
        assert t.simulate == pytest.approx(2.0)

    def test_merge_from_rejects_unknown_stage(self):
        with pytest.raises(ValueError):
            StageTimings().merge_from({"compile": 1.0})

    def test_render_mentions_every_stage(self):
        rendered = StageTimings().render()
        for name in STAGES:
            assert name in rendered


class TestCpuColumn:
    def test_dict_round_trip_keeps_cpu(self):
        t = StageTimings(schedule=2.0, cpu={"schedule": 1.5})
        back = StageTimings.from_dict(t.as_dict())
        assert back == t
        assert back.cpu_of("schedule") == pytest.approx(1.5)
        assert back.cpu_of("merge") == 0.0

    def test_merge_from_sums_cpu(self):
        t = StageTimings(schedule=1.0, cpu={"schedule": 0.8})
        t.merge_from({"schedule": 0.5, "cpu": {"schedule": 0.4, "merge": 0.1}})
        assert t.cpu_of("schedule") == pytest.approx(1.2)
        assert t.cpu_of("merge") == pytest.approx(0.1)
        assert t.schedule == pytest.approx(1.5)

    def test_merge_from_rejects_unknown_cpu_stage(self):
        with pytest.raises(ValueError):
            StageTimings().merge_from({"cpu": {"compile": 1.0}})

    def test_render_shows_cpu_when_present(self):
        plain = StageTimings(schedule=2.0).render()
        assert "c" not in plain.split("schedule ")[1].split()[0]
        both = StageTimings(schedule=2.0, cpu={"schedule": 1.5}).render()
        assert "schedule 2.000s/1.500c" in both

    def test_stage_collects_cpu_alongside_wall(self):
        with collect_timings() as t:
            with stage("schedule"):
                sum(i * i for i in range(200_000))
        assert t.schedule > 0.0
        assert t.cpu_of("schedule") > 0.0
        # CPU-bound loop: the two clocks agree to within scheduling noise.
        assert t.cpu_of("schedule") <= t.schedule * 3 + 0.05


class TestCollection:
    def test_stage_is_noop_without_collector(self):
        with stage("generate"):
            pass  # must not raise, must not require a collector

    def test_stage_rejects_unknown_name(self):
        """A typo'd stage name must fail loudly (mirroring
        ``merge_from``), not silently time nothing."""
        with pytest.raises(ValueError, match="unknown timing stage"):
            with stage("compile"):
                pass
        # ... collector or not.
        with collect_timings():
            with pytest.raises(ValueError, match="unknown timing stage"):
                with stage("typo"):
                    pass

    def test_stage_opens_a_span_for_the_tracer(self):
        from repro.obs.spans import collect_trace

        with collect_trace() as tracer:
            with stage("generate"):
                with stage("schedule"):
                    pass
        names = {s.name: s for s in tracer.spans}
        assert names["schedule"].parent == names["generate"].id

    def test_stage_accumulates_into_collector(self):
        with collect_timings() as t:
            with stage("generate"):
                pass
            with stage("generate"):
                pass
        assert t.generate > 0.0
        assert t.simulate == 0.0

    def test_collectors_nest_innermost_wins(self):
        with collect_timings() as outer:
            with collect_timings() as inner:
                with stage("schedule"):
                    pass
        assert inner.schedule > 0.0
        assert outer.schedule == 0.0

    def test_add_to_current(self):
        add_to_current({"simulate": 1.0})  # no collector: silently dropped
        with collect_timings() as t:
            add_to_current({"simulate": 1.0})
        assert t.simulate == pytest.approx(1.0)


class TestPipelineIntegration:
    def test_run_point_populates_timings(self):
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=15, n_variables=6),
            scheduler=SchedulerConfig(n_pes=4),
            count=4,
            master_seed=9,
        )
        stats = run_point(point, cache=False)
        assert stats.timings is not None
        assert stats.timings.generate > 0.0
        assert stats.timings.schedule > 0.0
        # Insertion happens inside scheduling; nesting means the parts
        # never exceed the whole.
        assert stats.timings.insert <= stats.timings.schedule
        assert "timings:" in stats.render()

    def test_run_point_credits_enclosing_collector(self):
        """An outer measurement (the perf harness timing a whole sweep)
        must see the point's stage time even though run_point collects
        with its own inner collector."""
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=15, n_variables=6),
            scheduler=SchedulerConfig(n_pes=4),
            count=4,
            master_seed=9,
        )
        with collect_timings() as outer:
            stats = run_point(point, cache=False)
        assert outer.schedule >= stats.timings.schedule > 0.0
        assert outer.generate >= stats.timings.generate > 0.0
