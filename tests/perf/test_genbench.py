"""Generator speed gate: shape discovery, identity checking, exit codes.

The actual >=3x CI threshold is a performance property of the CI
machine and is asserted there, not here; these tests pin the harness
-- which shapes are benchmarked, that both arms compile identical
corpora, and that the gate fails loudly on a ratio miss.
"""

import pytest

from repro import kernels
from repro.perf.genbench import bench_generate, generator_shapes, main


class TestGeneratorShapes:
    def test_paper3500_dedupes_to_size_sweep(self):
        shapes = generator_shapes("paper3500")
        # The PE-sweep and ablation legs reuse size-sweep generators;
        # only the distinct n_statements values remain.
        assert [c.n_statements for c in shapes] == [
            10, 15, 20, 25, 30, 35, 40, 50, 60, 80,
        ]
        assert all(c.n_variables == 8 for c in shapes)

    def test_scale1024_shapes(self):
        assert [c.n_statements for c in generator_shapes("scale1024")] == [
            40, 60, 80,
        ]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown perf preset"):
            generator_shapes("nope")


class TestBenchGenerate:
    def test_arms_compile_identical_corpora(self):
        record = bench_generate(preset="scale1024", count=16, reps=1)
        assert record["identical"]
        assert record["count"] == 16
        assert len(record["shapes"]) == 3
        assert record["python_s"] > 0 and record["vectorized_s"] > 0
        assert record["ratio"] > 0

    def test_python_backend_refused(self, monkeypatch):
        # Comparing python against itself would gate nothing; the
        # bench must refuse rather than silently pass or fail.
        monkeypatch.setenv("REPRO_BACKEND", "python")
        kernels.reset_calls()
        with pytest.raises(RuntimeError, match="python path"):
            bench_generate(preset="scale1024", count=16, reps=1)


class TestMain:
    def test_ratio_miss_exits_nonzero(self, capsys):
        # An impossible threshold must fail the gate.
        code = main(
            [
                "--preset", "scale1024", "--count", "16",
                "--reps", "1", "--min-ratio", "1000",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "generate-gate" in captured.err

    def test_trivial_threshold_passes(self, capsys):
        code = main(
            [
                "--preset", "scale1024", "--count", "16",
                "--reps", "1", "--min-ratio", "0.0001",
            ]
        )
        assert code == 0
        assert "speedup" in capsys.readouterr().out
