"""Tests for JSON serialization of programs, traces, and summaries."""

import json

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.io import (
    load_program,
    program_from_json,
    program_to_json,
    result_summary,
    save_program,
    trace_to_json,
)
from repro.machine import MachineProgram, UniformSampler, simulate_sbm
from repro.machine.durations import FixedSampler
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


@pytest.fixture(scope="module")
def result():
    case = compile_case(GeneratorConfig(n_statements=35, n_variables=9), 77)
    return schedule_dag(
        case.dag, SchedulerConfig(n_pes=6, seed=77, barrier_latency=1)
    )


@pytest.fixture(scope="module")
def program(result):
    return MachineProgram.from_schedule(result.schedule)


class TestProgramRoundTrip:
    def test_fields_preserved(self, program):
        again = program_from_json(program_to_json(program))
        assert again.n_pes == program.n_pes
        assert again.barrier_order == program.barrier_order
        assert again.initial_barrier_id == program.initial_barrier_id
        assert again.barrier_latency == program.barrier_latency
        assert set(again.edges) == set(program.edges)
        for bid, mask in program.masks.items():
            assert list(again.masks[bid]) == list(mask)

    def test_streams_preserved(self, program):
        again = program_from_json(program_to_json(program))
        assert again.streams == program.streams

    def test_json_serializable(self, program):
        text = json.dumps(program_to_json(program))
        assert "repro.machine-program.v1" in text

    def test_execution_identical_after_round_trip(self, program):
        reference = simulate_sbm(program, UniformSampler(), rng=4)
        again = program_from_json(program_to_json(program))
        replay = simulate_sbm(again, FixedSampler(dict(reference.durations)))
        assert replay.makespan == reference.makespan
        assert replay.barrier_fire == reference.barrier_fire

    def test_file_helpers(self, program, tmp_path):
        path = tmp_path / "program.json"
        save_program(program, path)
        assert load_program(path).streams == program.streams

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            program_from_json({"format": "something-else"})

    def test_unserializable_node_id_rejected(self):
        from repro.io import _encode_node

        with pytest.raises(TypeError):
            _encode_node(("tuple", "id"))
        with pytest.raises(TypeError):
            _encode_node(True)


class TestTraceAndSummary:
    def test_trace_json(self, program):
        trace = simulate_sbm(program, UniformSampler(), rng=1)
        data = trace_to_json(trace)
        assert data["machine"] == "sbm"
        assert data["makespan"] == trace.makespan
        assert len(data["start"]) == len(trace.start)
        json.dumps(data)  # fully serializable

    def test_result_summary(self, result):
        data = result_summary(result)
        assert data["total_edges"] == result.counts.total_edges
        assert data["makespan"] == [result.makespan.lo, result.makespan.hi]
        fr = data["fractions"]
        assert abs(fr["barrier"] + fr["serialized"] + fr["static"] - 1.0) < 1e-9
        json.dumps(data)


class TestGuardRoundTrip:
    def test_guards_preserved(self, result):
        from repro.hybrid import hybrid_program, hybridize_schedule

        plan = hybridize_schedule(result.schedule, 1e9)
        assert plan.n_demoted > 0
        program = hybrid_program(result.schedule, plan)
        data = program_to_json(program)
        json.dumps(data)
        back = program_from_json(data)
        assert back.guards == program.guards
        assert back == program

    def test_guardless_program_omits_key(self, program):
        assert "guards" not in program_to_json(program)
        assert program_from_json(program_to_json(program)).guards == {}
