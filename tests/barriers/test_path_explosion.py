"""Path-enumeration limits and the conservative fallback."""

import pytest

from repro.barriers.paths import MAX_PATHS, PathExplosionError, all_paths

from tests.barriers.test_barrier_dag import make_dag


def ladder(n_diamonds: int):
    """A chain of diamonds: 2^n paths end to end."""
    edges = {}
    for k in range(n_diamonds):
        a, left, right, b = 3 * k, 3 * k + 1, 3 * k + 2, 3 * k + 3
        edges[(a, left)] = (1, 1)
        edges[(a, right)] = (2, 2)
        edges[(left, b)] = (1, 1)
        edges[(right, b)] = (2, 2)
    return make_dag(edges), 3 * n_diamonds


class TestExplosionGuard:
    def test_explosion_raises(self):
        n = 15  # 2^15 = 32768 > MAX_PATHS
        dag, sink = ladder(n)
        assert 2**n > MAX_PATHS
        with pytest.raises(PathExplosionError):
            list(all_paths(dag, 0, sink))

    def test_below_limit_enumerates_fully(self):
        n = 10  # 1024 paths
        dag, sink = ladder(n)
        paths = list(all_paths(dag, 0, sink))
        assert len(paths) == 2**n
        assert len(set(paths)) == 2**n

    def test_optimal_mode_survives_explosion(self):
        """The optimal inserter must fall back to the conservative verdict
        instead of crashing when path enumeration explodes."""
        from repro.timing import Interval
        from repro.core.schedule import Schedule
        from repro.core.barrier_insert import classify_edge
        from repro.ir.dag import InstructionDAG

        # Build a schedule whose barrier dag is a wide ladder by inserting
        # pairs of parallel barriers between chained instruction pairs.
        n_pes = 4
        n_layers = 16
        latencies = {}
        edges = []
        for k in range(n_layers):
            latencies[f"a{k}"] = Interval(1, 2)
            latencies[f"b{k}"] = Interval(1, 2)
        latencies["g"] = Interval(1, 4)
        latencies["i"] = Interval(1, 1)
        edges.append(("g", "i"))
        dag = InstructionDAG.build(latencies, edges)
        sched = Schedule(dag, n_pes)
        sched.append_instruction(0, "g")
        for k in range(n_layers):
            sched.append_instruction(0, f"a{k}")
            sched.append_instruction(1, f"b{k}")
            # barrier joining PE0/PE1 after each layer (a chain, but the
            # per-layer pair of regions creates path multiplicity through
            # the shared dag when combined with PE2/PE3 side barriers)
            sched.insert_barrier(
                {0: len(sched.streams[0]), 1: len(sched.streams[1])}
            )
        sched.append_instruction(2, "i")
        verdict = classify_edge(sched, "g", "i", mode="optimal")
        assert verdict.kind is not None  # no crash is the point
