"""Hierarchical barrier trees and 1024-PE machine-width scaling.

:class:`repro.barriers.mask.BarrierTree` is the radix-64 arrival
aggregator behind the SBM queue controller at large machine widths.
These tests pin its semantics (registration, arrival propagation,
readiness, missing-set reconstruction, release) against the flat mask
model, plus the end-to-end property the tree exists for: 1024-PE
configurations schedule, simulate soundly, and produce backend-identical
results digests.
"""

from __future__ import annotations

import random

import pytest

from repro.barriers.mask import BarrierMask, BarrierTree
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.perf.parallel import results_digest
from repro.synth.generator import GeneratorConfig

from tests.conftest import make_case


class TestMaskIteration:
    @pytest.mark.parametrize("n_pes", [1, 63, 64, 65, 128, 1024])
    def test_iter_yields_exactly_the_set_bits(self, n_pes):
        rng = random.Random(n_pes)
        for _ in range(20):
            bits = rng.getrandbits(n_pes)
            mask = BarrierMask(bits, n_pes)
            expected = [pe for pe in range(n_pes) if (bits >> pe) & 1]
            assert list(mask) == expected
            assert len(mask) == len(expected)

    def test_empty_and_full(self):
        assert list(BarrierMask.empty(1024)) == []
        assert list(BarrierMask.full(70)) == list(range(70))


class TestBarrierTree:
    def test_single_level_small_machine(self):
        tree = BarrierTree(8)
        tree.register(1, BarrierMask.from_pes([0, 3, 7], 8))
        assert 1 in tree
        assert not tree.ready(1)
        assert list(tree.missing(1)) == [0, 3, 7]
        tree.arrive(1, 3)
        assert not tree.ready(1)
        assert list(tree.missing(1)) == [0, 7]
        tree.arrive(1, 0)
        tree.arrive(1, 7)
        assert tree.ready(1)
        assert list(tree.missing(1)) == []

    def test_multi_level_word_boundaries(self):
        # 130 PEs -> three level-0 words, one summary level.
        tree = BarrierTree(130)
        pes = [0, 63, 64, 127, 128, 129]
        tree.register(5, BarrierMask.from_pes(pes, 130))
        for pe in pes[:-1]:
            tree.arrive(5, pe)
            assert not tree.ready(5)
        assert list(tree.missing(5)) == [129]
        tree.arrive(5, 129)
        assert tree.ready(5)

    def test_full_1024_matches_flat_model(self):
        rng = random.Random(42)
        tree = BarrierTree(1024)
        pes = sorted(rng.sample(range(1024), 300))
        mask = BarrierMask.from_pes(pes, 1024)
        tree.register(9, mask)
        arrived = BarrierMask.empty(1024)
        for pe in rng.sample(pes, len(pes)):
            tree.arrive(9, pe)
            arrived = arrived.with_wait(pe)
            # The tree's view must agree with the flat subset test at
            # every step, not just at the end.
            assert tree.ready(9) == mask.is_subset_of(arrived)
            assert tree.missing(9).bits == mask.bits & ~arrived.bits
        assert tree.ready(9)

    def test_duplicate_arrival_is_idempotent(self):
        tree = BarrierTree(128)
        tree.register(2, BarrierMask.from_pes([1, 100], 128))
        tree.arrive(2, 1)
        tree.arrive(2, 1)
        assert list(tree.missing(2)) == [100]
        tree.arrive(2, 100)
        assert tree.ready(2)

    def test_non_participant_arrival_rejected(self):
        tree = BarrierTree(1024)
        tree.register(3, BarrierMask.from_pes([5], 1024))
        with pytest.raises(ValueError, match="does not participate"):
            tree.arrive(3, 6)
        with pytest.raises(ValueError, match="does not participate"):
            tree.arrive(3, 700)

    def test_unregistered_barrier_rejected(self):
        tree = BarrierTree(64)
        with pytest.raises(ValueError, match="not registered"):
            tree.arrive(99, 0)
        with pytest.raises(ValueError, match="not registered"):
            tree.ready(99)
        with pytest.raises(ValueError, match="not registered"):
            tree.missing(99)

    def test_release_drops_state(self):
        tree = BarrierTree(256)
        tree.register(4, BarrierMask.from_pes([0, 200], 256))
        tree.arrive(4, 0)
        tree.release(4)
        assert 4 not in tree
        with pytest.raises(ValueError):
            tree.ready(4)
        tree.release(4)  # releasing twice is harmless

    def test_reregister_resets_arrivals(self):
        tree = BarrierTree(128)
        mask = BarrierMask.from_pes([0, 70], 128)
        tree.register(7, mask)
        tree.arrive(7, 0)
        tree.arrive(7, 70)
        assert tree.ready(7)
        tree.register(7, mask)
        assert not tree.ready(7)

    def test_empty_mask_is_vacuously_ready(self):
        tree = BarrierTree(1024)
        tree.register(8, BarrierMask.empty(1024))
        assert tree.ready(8)
        assert list(tree.missing(8)) == []

    def test_mask_width_mismatch_rejected(self):
        tree = BarrierTree(128)
        with pytest.raises(ValueError, match="wide"):
            tree.register(1, BarrierMask.from_pes([0], 64))


class TestScale1024:
    """End to end: 1024-PE configs schedule and simulate."""

    def test_schedule_and_simulate_round_trip(self):
        case = make_case(n_statements=60, seed=5)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=1024))
        assert result.schedule.n_pes == 1024
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, rng=0)
        trace.assert_sound(program.edges)

    def test_digest_parity_across_backends(self, monkeypatch):
        pytest.importorskip("numpy")

        def digest():
            point = ExperimentPoint(
                generator=GeneratorConfig(n_statements=40, n_variables=8),
                scheduler=SchedulerConfig(n_pes=1024),
                count=3,
                master_seed=17,
            )
            return results_digest(run_corpus(point, jobs=1))

        monkeypatch.setenv("REPRO_BACKEND", "python")
        baseline = digest()
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert digest() == baseline
