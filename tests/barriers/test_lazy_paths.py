"""The lazy best-first k-longest-paths generator (section 4.4.2).

Three guarantees are pinned down here:

* **order parity** -- :func:`iter_longest_max_paths` yields exactly the
  sequence the old enumerate-then-sort produced, including tie-breaking
  (property-tested on random dags);
* **laziness** -- the first path of an exponentially-pathed dag arrives
  without materializing the path set, so an early-deciding
  ``_optimal_check`` never trips :class:`PathExplosionError` (acceptance
  criterion of the perf PR);
* **the explosion contract** -- :data:`MAX_PATHS` paths are yielded
  normally and the error fires mid-iteration on path ``MAX_PATHS + 1``,
  and genuine explosions are *counted* (``SyncCounts.path_explosions``)
  rather than swallowed.
"""

from __future__ import annotations

import random
from itertools import islice

import pytest

from repro.barriers.paths import (
    MAX_PATHS,
    PathExplosionError,
    all_paths,
    iter_longest_max_paths,
    k_longest_max_paths,
    path_length,
)
from repro.core.barrier_insert import _optimal_check

from tests.barriers.test_barrier_dag import FIG13_EDGES, make_dag
from tests.barriers.test_path_explosion import ladder


def naive_k_longest(dag, u, v):
    """The old implementation: enumerate every path, then sort."""
    scored = [
        (path_length(dag, p, use_max=True), p) for p in all_paths(dag, u, v)
    ]
    scored.sort(key=lambda lp: (-lp[0], lp[1]))
    return scored


def random_dag(rng, n_nodes, p_edge):
    edges = {}
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if rng.random() < p_edge:
                lo = rng.randint(0, 6)
                edges[(u, v)] = (lo, lo + rng.randint(0, 6))
    return make_dag(edges, n_barriers=n_nodes)


class TestOrderParity:
    def test_fig13(self):
        dag = make_dag(FIG13_EDGES)
        assert list(iter_longest_max_paths(dag, 0, 2)) == naive_k_longest(
            dag, 0, 2
        )

    def test_trivial_and_unreachable(self):
        dag = make_dag(FIG13_EDGES)
        assert list(iter_longest_max_paths(dag, 1, 1)) == [(0, (1,))]
        assert list(iter_longest_max_paths(dag, 2, 1)) == []

    def test_tie_break_on_path_contents(self):
        # Two u -> v paths of identical max length: order must follow the
        # lexicographic path tuple, as the old sort key did.
        dag = make_dag({(0, 1): (1, 3), (0, 2): (1, 3), (1, 3): (1, 2), (2, 3): (1, 2)})
        assert [p for _, p in iter_longest_max_paths(dag, 0, 3)] == [
            (0, 1, 3),
            (0, 2, 3),
        ]

    @pytest.mark.parametrize("seed", range(30))
    def test_random_dags_match_naive(self, seed):
        rng = random.Random(seed)
        dag = random_dag(rng, rng.randint(4, 11), rng.uniform(0.2, 0.7))
        ids = dag.barrier_ids
        u = rng.choice(ids)
        v = rng.choice(ids)
        assert list(iter_longest_max_paths(dag, u, v)) == naive_k_longest(
            dag, u, v
        )

    def test_wrapper_matches_iterator(self):
        dag = make_dag(FIG13_EDGES)
        assert k_longest_max_paths(dag, 0, 2) == list(
            iter_longest_max_paths(dag, 0, 2)
        )


class TestLaziness:
    def test_first_path_of_exponential_dag_is_cheap(self):
        dag, sink = ladder(15)  # 2^15 = 32768 paths > MAX_PATHS
        length, path = next(iter_longest_max_paths(dag, 0, sink))
        assert length == 4 * 15  # every diamond maxes out via its (2,2) arm
        assert path[0] == 0 and path[-1] == sink

    def test_optimal_check_decides_on_first_path(self):
        """Acceptance criterion: ~20k+-path dag whose *first* max-path
        already satisfies the plain timing condition completes without
        PathExplosionError -- the old materializing implementation (the
        eager wrapper) provably explodes on the same dag."""
        dag, sink = ladder(15)
        assert _optimal_check(
            dag, 0, sink, sink, delta_max_g=0, delta_min_i=100, base_min=0
        )
        with pytest.raises(PathExplosionError):
            k_longest_max_paths(dag, 0, sink)


class TestExplosionContract:
    def test_lazy_iterator_honors_cap_mid_iteration(self):
        dag, sink = ladder(15)
        it = iter_longest_max_paths(dag, 0, sink)
        prefix = list(islice(it, MAX_PATHS))
        assert len(prefix) == MAX_PATHS
        lengths = [length for length, _ in prefix]
        assert lengths == sorted(lengths, reverse=True)
        with pytest.raises(PathExplosionError):
            next(it)

    def test_all_paths_honors_cap_mid_iteration(self):
        dag, sink = ladder(15)
        it = all_paths(dag, 0, sink)
        assert len(list(islice(it, MAX_PATHS))) == MAX_PATHS
        with pytest.raises(PathExplosionError):
            next(it)

    def test_explosion_is_counted_not_swallowed(self, monkeypatch):
        """A capped optimal walk must fall back conservatively *and* set
        ``EdgeResolution.explosion``, feeding ``SyncCounts.path_explosions``."""
        from repro.core import barrier_insert
        from repro.core.barrier_insert import (
            EdgeResolution,
            ResolutionKind,
            classify_edge,
        )
        from repro.core.scheduler import _tally
        from repro.core.schedule import Schedule
        from repro.ir.dag import InstructionDAG
        from repro.timing import Interval

        def exploding_iter(bd, u, v):
            raise PathExplosionError("forced for test")
            yield  # pragma: no cover

        monkeypatch.setattr(
            barrier_insert, "iter_longest_max_paths", exploding_iter
        )

        # Producer g on PE0, consumer i on PE1, no ordering barrier between
        # them: the timing proof fails (slack < 0), optimal mode consults
        # the (exploding) path walk, and the edge must land as BARRIER with
        # the explosion flagged.
        latencies = {"g": Interval(1, 9), "i": Interval(1, 1)}
        dag = InstructionDAG.build(latencies, [("g", "i")])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(1, "i")
        verdict = classify_edge(sched, "g", "i", mode="optimal")
        assert verdict.kind is ResolutionKind.BARRIER
        assert verdict.explosion is True

        counts = _tally(sched, (verdict, EdgeResolution("g", "i", ResolutionKind.PATH)), repairs=0)
        assert counts.path_explosions == 1

    def test_conservative_mode_never_explodes(self):
        from repro.core.barrier_insert import classify_edge
        from repro.core.schedule import Schedule
        from repro.ir.dag import InstructionDAG
        from repro.timing import Interval

        latencies = {"g": Interval(1, 9), "i": Interval(1, 1)}
        dag = InstructionDAG.build(latencies, [("g", "i")])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, "g")
        sched.append_instruction(1, "i")
        verdict = classify_edge(sched, "g", "i", mode="conservative")
        assert verdict.explosion is False
