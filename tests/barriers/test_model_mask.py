"""Tests for Barrier objects and hardware bit masks."""

import pytest

from repro.barriers.mask import BarrierMask
from repro.barriers.model import Barrier


class TestBarrier:
    def test_requires_participants(self):
        with pytest.raises(ValueError):
            Barrier(1, [])

    def test_spans(self):
        b = Barrier(1, [0, 2])
        assert b.spans(0) and b.spans(2) and not b.spans(1)
        assert b.width == 2

    def test_absorb_unions_disjoint_sets(self):
        a = Barrier(1, [0, 1])
        b = Barrier(2, [2, 3])
        a.absorb(b)
        assert a.participants == {0, 1, 2, 3}
        assert a.merged_from == [2]

    def test_absorb_rejects_overlap(self):
        a = Barrier(1, [0, 1])
        b = Barrier(2, [1, 2])
        with pytest.raises(ValueError):
            a.absorb(b)

    def test_absorb_self_rejected(self):
        a = Barrier(1, [0])
        with pytest.raises(ValueError):
            a.absorb(a)

    def test_absorb_tracks_transitive_provenance(self):
        a, b, c = Barrier(1, [0]), Barrier(2, [1]), Barrier(3, [2])
        b.absorb(c)
        a.absorb(b)
        assert set(a.merged_from) == {2, 3}

    def test_identity_semantics(self):
        a = Barrier(1, [0])
        b = Barrier(1, [0])
        assert a != b and a == a
        assert hash(a) == hash(b)  # hash by id is fine; equality is identity


class TestBarrierMask:
    def test_from_pes(self):
        mask = BarrierMask.from_pes([0, 2], 4)
        assert mask.bits == 0b0101
        assert list(mask) == [0, 2]
        assert len(mask) == 2

    def test_out_of_range_pe(self):
        with pytest.raises(ValueError):
            BarrierMask.from_pes([4], 4)

    def test_subset_firing_test(self):
        waiting = BarrierMask.from_pes([0, 1, 3], 4)
        barrier = BarrierMask.from_pes([0, 1], 4)
        assert barrier.is_subset_of(waiting)
        assert waiting.covers(barrier)
        assert not waiting.is_subset_of(barrier)

    def test_with_wait_and_release(self):
        waiting = BarrierMask.empty(4)
        waiting = waiting.with_wait(1).with_wait(3)
        assert list(waiting) == [1, 3]
        fired = BarrierMask.from_pes([1], 4)
        assert list(waiting.release(fired)) == [3]

    def test_full(self):
        assert len(BarrierMask.full(8)) == 8

    def test_contains(self):
        mask = BarrierMask.from_pes([2], 4)
        assert 2 in mask and 0 not in mask and 9 not in mask

    def test_str_pe0_leftmost(self):
        assert str(BarrierMask.from_pes([0], 4)) == "1000"
        assert str(BarrierMask.from_pes([3], 4)) == "0001"

    def test_range_validation(self):
        with pytest.raises(ValueError):
            BarrierMask(1 << 5, 4)
        with pytest.raises(ValueError):
            BarrierMask(0, 0)
