"""Tests for the barrier dag: structure, reachability, fire times, paths."""

import pytest

from repro.barriers.dag import BarrierDag
from repro.barriers.model import Barrier
from repro.timing import Interval


def make_dag(edges, n_barriers=None, initial=0):
    """Build a BarrierDag from {(u, v): (lo, hi)}."""
    ids = {initial}
    for u, v in edges:
        ids.add(u)
        ids.add(v)
    if n_barriers is not None:
        ids |= set(range(n_barriers))
    barriers = [Barrier(i, [0], is_initial=(i == initial)) for i in sorted(ids)]
    weights = {k: Interval(lo, hi) for k, (lo, hi) in edges.items()}
    return BarrierDag(barriers, weights, barriers[0])


# The figure 13 barrier embedding: x -> y (min 5, max 7 after the join
# rule), y -> z (2,2), and the "short-cut" x -> z path through PE2 that
# makes the conservative algorithm insert a needless barrier.
FIG13_EDGES = {
    (0, 1): (5, 7),   # x -> y  (join of PE0's [5,?] and PE1's [4,?])
    (1, 2): (2, 2),   # y -> z
    (0, 2): (4, 4),   # x -> z direct (the consumer processor's own chain)
}


class TestStructure:
    def test_topo_starts_with_initial(self):
        dag = make_dag(FIG13_EDGES)
        assert dag.barrier_ids[0] == 0

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            make_dag({(0, 1): (1, 1), (1, 0): (1, 1)})

    def test_unknown_barrier_in_edge(self):
        b0 = Barrier(0, [0], is_initial=True)
        with pytest.raises(ValueError):
            BarrierDag([b0], {(0, 9): Interval(1, 1)}, b0)

    def test_len_and_contains(self):
        dag = make_dag(FIG13_EDGES)
        assert len(dag) == 3 and 2 in dag and 9 not in dag

    def test_succs_preds(self):
        dag = make_dag(FIG13_EDGES)
        assert set(dag.succs(0)) == {1, 2}
        assert set(dag.preds(2)) == {0, 1}


class TestReachability:
    def test_has_path_reflexive(self):
        dag = make_dag(FIG13_EDGES)
        assert dag.has_path(1, 1)

    def test_has_path_transitive(self):
        dag = make_dag({(0, 1): (1, 1), (1, 2): (1, 1), (0, 3): (1, 1)})
        assert dag.has_path(0, 2)
        assert not dag.has_path(3, 2)

    def test_ordered(self):
        dag = make_dag({(0, 1): (1, 1), (0, 2): (1, 1)})
        assert dag.ordered(0, 1)
        assert dag.ordered(1, 0)
        assert not dag.ordered(1, 2)

    def test_descendants(self):
        dag = make_dag({(0, 1): (1, 1), (1, 2): (1, 1)})
        assert dag.descendants(0) == {1, 2}
        assert dag.descendants(2) == frozenset()


class TestFireTimes:
    def test_initial_fires_at_zero(self):
        dag = make_dag(FIG13_EDGES)
        assert dag.fire_times()[0] == Interval(0, 0)

    def test_join_over_arrival_chains(self):
        # z hears from both the direct x->z chain [4,4] and x->y->z [7,9]:
        # min fire is the max of chain minima (figure 13 semantics).
        dag = make_dag(FIG13_EDGES)
        fire = dag.fire_times()
        assert fire[1] == Interval(5, 7)
        assert fire[2] == Interval(7, 9)

    def test_diamond(self):
        dag = make_dag({(0, 1): (1, 4), (0, 2): (2, 2), (1, 3): (1, 1), (2, 3): (1, 1)})
        fire = dag.fire_times()
        assert fire[3] == Interval(3, 5)


class TestLongestPaths:
    def test_same_node_zero(self):
        dag = make_dag(FIG13_EDGES)
        assert dag.longest_path_max(1, 1) == 0
        assert dag.longest_path_min(2, 2) == 0

    def test_no_path_is_none(self):
        dag = make_dag({(0, 1): (1, 1), (0, 2): (1, 1)})
        assert dag.longest_path_max(1, 2) is None

    def test_max_path_picks_longest(self):
        dag = make_dag(FIG13_EDGES)
        # 0 -> 2: direct hi 4 vs through 1: 7 + 2 = 9
        assert dag.longest_path_max(0, 2) == 9

    def test_min_path_is_still_a_longest_path(self):
        dag = make_dag(FIG13_EDGES)
        # minimum times: direct 4 vs 5 + 2 = 7: take 7 (all must arrive)
        assert dag.longest_path_min(0, 2) == 7

    def test_paths_differ_between_bounds(self):
        dag = make_dag({(0, 1): (1, 10), (0, 2): (5, 6), (1, 3): (0, 0), (2, 3): (0, 0)})
        assert dag.longest_path_min(0, 3) == 5  # via 2
        assert dag.longest_path_max(0, 3) == 10  # via 1


class TestInterop:
    def test_to_networkx(self):
        graph = make_dag(FIG13_EDGES).to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.edges[(0, 1)]["weight"] == Interval(5, 7)

    def test_render_mentions_barriers(self):
        text = make_dag(FIG13_EDGES).render()
        assert "b0" in text and "fire" in text
