"""Tests for path enumeration and the overlap-aware min-path analysis."""

import pytest

from repro.barriers.paths import (
    all_paths,
    k_longest_max_paths,
    longest_min_path_with_forced_max,
    path_length,
)

from tests.barriers.test_barrier_dag import make_dag, FIG13_EDGES


class TestAllPaths:
    def test_trivial_path(self):
        dag = make_dag(FIG13_EDGES)
        assert list(all_paths(dag, 1, 1)) == [(1,)]

    def test_no_path(self):
        dag = make_dag({(0, 1): (1, 1), (0, 2): (1, 1)})
        assert list(all_paths(dag, 1, 2)) == []

    def test_enumerates_both_fig13_paths(self):
        dag = make_dag(FIG13_EDGES)
        paths = set(all_paths(dag, 0, 2))
        assert paths == {(0, 2), (0, 1, 2)}

    def test_counts_in_ladder(self):
        # ladder of k diamonds has 2^k paths
        edges = {}
        for k in range(4):
            a, l, r, b = 3 * k, 3 * k + 1, 3 * k + 2, 3 * k + 3
            edges[(a, l)] = (1, 1)
            edges[(a, r)] = (2, 2)
            edges[(l, b)] = (1, 1)
            edges[(r, b)] = (2, 2)
        dag = make_dag(edges)
        assert len(list(all_paths(dag, 0, 12))) == 16


class TestKLongest:
    def test_sorted_descending_by_max_length(self):
        dag = make_dag(FIG13_EDGES)
        scored = k_longest_max_paths(dag, 0, 2)
        lengths = [length for length, _ in scored]
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[0] == 9  # x -> y -> z with max times

    def test_path_length_helper(self):
        dag = make_dag(FIG13_EDGES)
        assert path_length(dag, (0, 1, 2), use_max=True) == 9
        assert path_length(dag, (0, 1, 2), use_max=False) == 7
        assert path_length(dag, (0, 2), use_max=False) == 4


class TestForcedMax:
    def test_figure13_overlap_resolution(self):
        """The key example: forcing the producer path's edges to max time
        raises the consumer's min path enough to discharge the sync."""
        dag = make_dag(FIG13_EDGES)
        # Plain min path 0 -> 2 is 7 (via y).
        # Producer path under examination is psi_max(x, y) = (0, 1).
        # With (0,1) forced to its max (7), the min path 0->2 via y becomes
        # 7 + 2 = 9.
        forced = longest_min_path_with_forced_max(dag, 0, 2, [(0, 1)])
        assert forced == 9

    def test_no_forced_edges_equals_min_path(self):
        dag = make_dag(FIG13_EDGES)
        assert longest_min_path_with_forced_max(dag, 0, 2, []) == 7

    def test_trivial_and_missing(self):
        dag = make_dag({(0, 1): (1, 1), (0, 2): (1, 1)})
        assert longest_min_path_with_forced_max(dag, 1, 1, []) == 0
        assert longest_min_path_with_forced_max(dag, 1, 2, []) is None

    def test_forced_edge_off_path_ignored(self):
        dag = make_dag({(0, 1): (1, 5), (0, 2): (3, 3), (1, 3): (1, 1), (2, 3): (1, 1)})
        # forcing (0,2) should only affect paths through 2
        plain = longest_min_path_with_forced_max(dag, 0, 3, [])
        forced = longest_min_path_with_forced_max(dag, 0, 3, [(0, 1)])
        assert plain == 4  # via 2: 3+1
        assert forced == 6  # via 1 at max: 5+1
