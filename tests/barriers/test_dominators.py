"""Tests for the dominator tree over barrier dags."""

import random

import pytest

from repro.barriers.dominators import DominatorTree
from repro.barriers.model import Barrier
from repro.timing import Interval

from tests.barriers.test_barrier_dag import make_dag


def random_reachable_dag(rng, n_nodes, p_edge=0.3):
    """A random dag on ids ``0..n_nodes-1`` where every node is reachable
    from the initial barrier 0 (every non-root has at least one pred)."""
    edges = {}
    for v in range(1, n_nodes):
        for u in range(v):
            if rng.random() < p_edge:
                lo = rng.randint(0, 5)
                edges[(u, v)] = (lo, lo + rng.randint(0, 5))
        if not any(w[1] == v for w in edges):
            edges[(rng.randrange(v), v)] = (1, 1)
    return make_dag(edges, n_barriers=n_nodes)


def dominator_sets(dag):
    """Textbook iterate-to-fixpoint reference: Dom(v) = {v} | AND Dom(preds)."""
    ids = dag.barrier_ids
    full = set(ids)
    dom = {bid: (full if dag.preds(bid) else {bid}) for bid in ids}
    dom[ids[0]] = {ids[0]}
    changed = True
    while changed:
        changed = False
        for v in ids:
            preds = dag.preds(v)
            if not preds:
                continue
            new = set.intersection(*(dom[p] for p in preds)) | {v}
            if new != dom[v]:
                dom[v] = new
                changed = True
    return dom


def diamond():
    #      0
    #    /   \
    #   1     2
    #    \   /
    #      3 -- 4
    return make_dag(
        {(0, 1): (1, 1), (0, 2): (1, 1), (1, 3): (1, 1), (2, 3): (1, 1), (3, 4): (1, 1)}
    )


def chain():
    return make_dag({(0, 1): (1, 1), (1, 2): (1, 1), (2, 3): (1, 1)})


class TestIdoms:
    def test_chain_idoms(self):
        tree = DominatorTree(chain())
        assert tree.idom(1) == 0
        assert tree.idom(2) == 1
        assert tree.idom(3) == 2
        assert tree.idom(0) is None

    def test_diamond_join_dominated_by_fork(self):
        tree = DominatorTree(diamond())
        assert tree.idom(3) == 0  # neither arm dominates the join
        assert tree.idom(4) == 3

    def test_depths(self):
        tree = DominatorTree(diamond())
        assert tree.depth(0) == 0
        assert tree.depth(1) == tree.depth(2) == 1
        assert tree.depth(3) == 1
        assert tree.depth(4) == 2


class TestDominates:
    def test_every_barrier_dominates_itself(self):
        tree = DominatorTree(diamond())
        for bid in range(5):
            assert tree.dominates(bid, bid)

    def test_initial_dominates_all(self):
        tree = DominatorTree(diamond())
        for bid in range(5):
            assert tree.dominates(0, bid)

    def test_arm_does_not_dominate_join(self):
        tree = DominatorTree(diamond())
        assert not tree.dominates(1, 3)
        assert not tree.dominates(2, 3)

    def test_chain_dominance_is_total(self):
        tree = DominatorTree(chain())
        assert tree.dominates(1, 3)
        assert not tree.dominates(3, 1)


class TestNearestCommonDominator:
    def test_siblings(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(1, 2) == 0

    def test_ancestor_pair(self):
        tree = DominatorTree(chain())
        assert tree.nearest_common_dominator(1, 3) == 1

    def test_same_node(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(3, 3) == 3

    def test_join_and_arm(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(3, 1) == 0

    def test_as_mapping(self):
        tree = DominatorTree(chain())
        mapping = tree.as_mapping()
        assert mapping[0] is None and mapping[3] == 2


class TestValidation:
    def test_unreachable_barrier_rejected(self):
        # barrier 5 exists but has no in-edges and is not initial
        dag = make_dag({(0, 1): (1, 1)}, n_barriers=3)
        with pytest.raises(ValueError):
            DominatorTree(dag)


class TestRandomizedAgainstReferences:
    """The O(1) Euler-interval ``dominates`` and the binary-lifting NCA
    against brute-force references on random dags."""

    @pytest.mark.parametrize("seed", range(15))
    def test_dominates_matches_fixpoint_sets(self, seed):
        rng = random.Random(seed)
        dag = random_reachable_dag(rng, rng.randint(3, 14))
        tree = DominatorTree(dag)
        dom = dominator_sets(dag)
        for x in dag.barrier_ids:
            for y in dag.barrier_ids:
                assert tree.dominates(x, y) == (x in dom[y]), (x, y)

    @pytest.mark.parametrize("seed", range(15))
    def test_nca_matches_chain_walk(self, seed):
        rng = random.Random(100 + seed)
        dag = random_reachable_dag(rng, rng.randint(3, 14))
        tree = DominatorTree(dag)

        def chain(bid):
            out = [bid]
            while tree.idom(out[-1]) is not None:
                out.append(tree.idom(out[-1]))
            return out

        for x in dag.barrier_ids:
            ancestors_x = chain(x)
            for y in dag.barrier_ids:
                # deepest node on both idom chains
                expected = next(a for a in ancestors_x if a in set(chain(y)))
                assert tree.nearest_common_dominator(x, y) == expected, (x, y)


class TestEvolved:
    """Incremental reconstruction after a dag edit equals a fresh build."""

    @pytest.mark.parametrize("seed", range(20))
    def test_evolved_insert_matches_fresh(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 12)
        dag = random_reachable_dag(rng, n)
        prev = DominatorTree(dag)

        # splice a new barrier into a random existing edge, with a few
        # extra in-edges -- the exact shape Schedule.insert_barrier makes
        edge = rng.choice(list(dag.edges()))
        edits = {
            (edge.src, edge.dst): None,
            (edge.src, n): Interval(1, 2),
            (n, edge.dst): Interval(0, 1),
        }
        for extra in rng.sample(range(n), k=min(2, n)):
            if extra not in (edge.src, edge.dst) and not dag.has_path(
                edge.dst, extra
            ):
                edits[(extra, n)] = Interval(0, 3)
        new_dag = dag.evolved_insert(Barrier(n, [0]), edits)

        evolved = DominatorTree.evolved(new_dag, prev, (n,))
        fresh = DominatorTree(new_dag)
        assert evolved.as_mapping() == fresh.as_mapping()
        for x in new_dag.barrier_ids:
            for y in new_dag.barrier_ids:
                assert evolved.dominates(x, y) == fresh.dominates(x, y)
                assert evolved.nearest_common_dominator(
                    x, y
                ) == fresh.nearest_common_dominator(x, y)

    def test_evolved_with_empty_affected_rebuilds(self):
        dag = diamond()
        prev = DominatorTree(dag)
        again = DominatorTree.evolved(dag, prev, ())
        assert again.as_mapping() == prev.as_mapping()
