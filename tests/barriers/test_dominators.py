"""Tests for the dominator tree over barrier dags."""

import pytest

from repro.barriers.dominators import DominatorTree

from tests.barriers.test_barrier_dag import make_dag


def diamond():
    #      0
    #    /   \
    #   1     2
    #    \   /
    #      3 -- 4
    return make_dag(
        {(0, 1): (1, 1), (0, 2): (1, 1), (1, 3): (1, 1), (2, 3): (1, 1), (3, 4): (1, 1)}
    )


def chain():
    return make_dag({(0, 1): (1, 1), (1, 2): (1, 1), (2, 3): (1, 1)})


class TestIdoms:
    def test_chain_idoms(self):
        tree = DominatorTree(chain())
        assert tree.idom(1) == 0
        assert tree.idom(2) == 1
        assert tree.idom(3) == 2
        assert tree.idom(0) is None

    def test_diamond_join_dominated_by_fork(self):
        tree = DominatorTree(diamond())
        assert tree.idom(3) == 0  # neither arm dominates the join
        assert tree.idom(4) == 3

    def test_depths(self):
        tree = DominatorTree(diamond())
        assert tree.depth(0) == 0
        assert tree.depth(1) == tree.depth(2) == 1
        assert tree.depth(3) == 1
        assert tree.depth(4) == 2


class TestDominates:
    def test_every_barrier_dominates_itself(self):
        tree = DominatorTree(diamond())
        for bid in range(5):
            assert tree.dominates(bid, bid)

    def test_initial_dominates_all(self):
        tree = DominatorTree(diamond())
        for bid in range(5):
            assert tree.dominates(0, bid)

    def test_arm_does_not_dominate_join(self):
        tree = DominatorTree(diamond())
        assert not tree.dominates(1, 3)
        assert not tree.dominates(2, 3)

    def test_chain_dominance_is_total(self):
        tree = DominatorTree(chain())
        assert tree.dominates(1, 3)
        assert not tree.dominates(3, 1)


class TestNearestCommonDominator:
    def test_siblings(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(1, 2) == 0

    def test_ancestor_pair(self):
        tree = DominatorTree(chain())
        assert tree.nearest_common_dominator(1, 3) == 1

    def test_same_node(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(3, 3) == 3

    def test_join_and_arm(self):
        tree = DominatorTree(diamond())
        assert tree.nearest_common_dominator(3, 1) == 0

    def test_as_mapping(self):
        tree = DominatorTree(chain())
        mapping = tree.as_mapping()
        assert mapping[0] is None and mapping[3] == 2


class TestValidation:
    def test_unreachable_barrier_rejected(self):
        # barrier 5 exists but has no in-edges and is not initial
        dag = make_dag({(0, 1): (1, 1)}, n_barriers=3)
        with pytest.raises(ValueError):
            DominatorTree(dag)
