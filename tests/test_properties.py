"""Property-based system tests (hypothesis).

The single most important invariant of the whole reproduction:

    For EVERY basic block, EVERY machine configuration and EVERY
    realization of the variable instruction times, executing the
    scheduler's output on the barrier machine preserves all
    producer/consumer dependences.

Hypothesis drives random generator configurations, machine shapes, and
duration realizations; random *arbitrary* DAGs (not only compiler-shaped
ones) are exercised as well.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.timing import Interval
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.core.validate import find_violations
from repro.ir.dag import InstructionDAG
from repro.machine.durations import MaxSampler, MinSampler, UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.dbm import simulate_dbm
from repro.machine.sbm import simulate_sbm
from repro.metrics.fractions import fractions_of
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

_SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- strategy: arbitrary weighted DAGs ------------------------------------

@st.composite
def arbitrary_dags(draw) -> InstructionDAG:
    n = draw(st.integers(min_value=1, max_value=18))
    latencies = {}
    for k in range(n):
        lo = draw(st.integers(min_value=1, max_value=12))
        width = draw(st.integers(min_value=0, max_value=12))
        latencies[k] = Interval(lo, lo + width)
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                edges.append((i, j))
    return InstructionDAG.build(latencies, edges)


machine_configs = st.builds(
    SchedulerConfig,
    n_pes=st.integers(min_value=1, max_value=12),
    machine=st.sampled_from(["sbm", "dbm"]),
    insertion=st.sampled_from(["conservative", "optimal"]),
    seed=st.integers(min_value=0, max_value=2**16),
)


@_SLOW
@given(dag=arbitrary_dags(), config=machine_configs, sim_seed=st.integers(0, 999))
def test_scheduler_sound_on_arbitrary_dags(dag, config, sim_seed):
    result = schedule_dag(dag, config)
    assert find_violations(result.schedule, config.insertion) == []
    program = MachineProgram.from_schedule(result.schedule)
    simulate = simulate_sbm if config.machine == "sbm" else simulate_dbm
    for sampler in (MinSampler(), MaxSampler(), UniformSampler()):
        trace = simulate(program, sampler, rng=sim_seed)
        trace.assert_sound(program.edges)
        assert result.makespan.lo <= trace.makespan <= result.makespan.hi


@_SLOW
@given(
    seed=st.integers(0, 10_000),
    stmts=st.integers(2, 50),
    nvars=st.integers(2, 12),
    pes=st.integers(1, 16),
    machine=st.sampled_from(["sbm", "dbm"]),
)
def test_scheduler_sound_on_synthetic_benchmarks(seed, stmts, nvars, pes, machine):
    case = compile_case(GeneratorConfig(n_statements=stmts, n_variables=nvars), seed)
    config = SchedulerConfig(n_pes=pes, seed=seed, machine=machine)
    result = schedule_dag(case.dag, config)

    # bookkeeping invariants
    c = result.counts
    assert (
        c.serialized_edges + c.path_edges + c.timing_edges + c.barrier_edges
        == c.total_edges
    )
    fr = fractions_of(result)
    if c.total_edges:
        assert abs(fr.barrier + fr.serialized + fr.static - 1.0) < 1e-9

    # execution soundness at the extremes and one random draw
    program = MachineProgram.from_schedule(result.schedule)
    simulate = simulate_sbm if machine == "sbm" else simulate_dbm
    assert simulate(program, MinSampler()).makespan == result.makespan.lo
    assert simulate(program, MaxSampler()).makespan == result.makespan.hi
    simulate(program, UniformSampler(), rng=seed).assert_sound(program.edges)


@_SLOW
@given(dag=arbitrary_dags(), seed=st.integers(0, 2**16))
def test_barrier_dag_invariants_on_final_schedules(dag, seed):
    """Structural laws of the finished schedule's barrier dag."""
    result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=seed))
    sched = result.schedule
    bd = sched.barrier_dag()
    fire = bd.fire_times()
    # fire times are monotone along <_b edges
    for edge in bd.edges():
        assert fire[edge.dst].lo >= fire[edge.src].lo + edge.weight.lo
        assert fire[edge.dst].hi >= fire[edge.src].hi + edge.weight.hi
    # the dominator tree is rooted at b0 and each idom is an ancestor
    tree = sched.dominator_tree()
    for bid in bd.barrier_ids:
        if bid != tree.root:
            assert tree.dominates(tree.idom(bid), bid)
    # SBM invariant: no H-unordered pair of barriers overlaps in time
    if result.config.merging_enabled:
        barriers = sched.barriers()
        for a_idx, a in enumerate(barriers):
            for b in barriers[a_idx + 1:]:
                if not sched.hb_barrier_ordered(a.id, b.id):
                    assert not fire[a.id].overlaps(fire[b.id])


@_SLOW
@given(
    dag=arbitrary_dags(),
    seed=st.integers(0, 2**16),
    durations_seed=st.integers(0, 2**16),
)
def test_adversarial_duration_assignments(dag, seed, durations_seed):
    """Arbitrary per-instruction duration choices (not just the global
    corners) never break dependences."""
    result = schedule_dag(dag, SchedulerConfig(n_pes=3, seed=seed))
    program = MachineProgram.from_schedule(result.schedule)
    rng = random.Random(durations_seed)

    class EveryNodeRandom:
        def sample(self, node, latency, _rng):
            return rng.randint(latency.lo, latency.hi)

    simulate_sbm(program, EveryNodeRandom()).assert_sound(program.edges)
