"""Final coverage round: result-object surfaces and machine tie-breaking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import Interval
from repro.barriers.mask import BarrierMask
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.figures import figure15_statements, figure18_vliw
from repro.experiments.kernels_exp import kernel_suite_experiment
from repro.machine.dbm import DBMController, simulate_dbm
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.durations import MaxSampler
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


class TestResultSurfaces:
    @pytest.fixture(scope="class")
    def fig15(self):
        return figure15_statements(count=4, values=(5, 15))

    def test_sweep_series_keys(self, fig15):
        series = fig15.series()
        assert set(series) == {"barrier", "serialized", "static"}
        assert all(len(v) == 2 for v in series.values())

    def test_sweep_rows_shape(self, fig15):
        rows = fig15.rows()
        assert len(rows) == 2 and rows[0][0] == 5

    def test_sweep_render_has_notes(self, fig15):
        assert "paper:" in fig15.render()

    def test_vliw_result_render(self):
        result = figure18_vliw(count=4, values=(4,))
        text = result.render()
        assert "barrier min" in text and "VLIW" in text

    def test_kernel_rows_have_speedups(self):
        result = kernel_suite_experiment(n_pes=2, synthetic_count=4)
        for row in result.rows:
            assert row.worst_case_speedup >= 0.9  # never slower than serial
            assert row.makespan_lo <= row.makespan_hi


class TestDbmTieBreaking:
    def test_earliest_ready_barrier_fires_first(self):
        """Two independent barriers; the one whose last participant arrives
        earlier must fire first on the DBM."""
        b0 = BarrierRef(0)
        early = BarrierRef(1)  # PEs 0,1; ready at t=1
        late = BarrierRef(2)  # PEs 2,3; ready at t=9
        fast = MachineOp("f", Interval(1, 1), "f")
        slow = MachineOp("s", Interval(9, 9), "s")
        program = MachineProgram(
            n_pes=4,
            streams=(
                (b0, fast, early),
                (b0, early),
                (b0, slow, late),
                (b0, late),
            ),
            masks={
                0: BarrierMask.from_pes([0, 1, 2, 3], 4),
                1: BarrierMask.from_pes([0, 1], 4),
                2: BarrierMask.from_pes([2, 3], 4),
            },
            barrier_order=(0, 1, 2),
            initial_barrier_id=0,
            edges=(),
        )
        trace = simulate_dbm(program, MaxSampler())
        assert trace.barrier_fire[1] == 1
        assert trace.barrier_fire[2] == 9

    def test_controller_returns_none_when_nothing_ready(self):
        program = MachineProgram(
            n_pes=2,
            streams=((BarrierRef(0),), (BarrierRef(0),)),
            masks={0: BarrierMask.from_pes([0, 1], 2)},
            barrier_order=(0,),
            initial_barrier_id=0,
            edges=(),
        )
        controller = DBMController(program)
        assert controller.select({0: 0}, {0: 5}) is None  # PE1 not waiting


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 4000), pes=st.integers(2, 10))
def test_queue_order_always_linear_extension(seed, pes):
    """Property: the SBM loader's queue order extends <_b for any schedule."""
    case = compile_case(GeneratorConfig(n_statements=25, n_variables=7), seed)
    result = schedule_dag(case.dag, SchedulerConfig(n_pes=pes, seed=seed))
    program = MachineProgram.from_schedule(result.schedule)
    position = {bid: k for k, bid in enumerate(program.barrier_order)}
    bd = result.schedule.barrier_dag()
    for edge in bd.edges():
        assert position[edge.src] < position[edge.dst]
    # and consistent with the happens-before barrier order
    desc = result.schedule.hb_barrier_descendants()
    for a, others in desc.items():
        for b in others:
            assert position[a] < position[b]
