"""Tests for the text visualizations (embedding, barrier dag, Gantt)."""

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.durations import MaxSampler, UniformSampler
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig
from repro.viz import render_barrier_dag, render_embedding, render_gantt


def scheduled(seed=71, stmts=25, pes=4):
    case = compile_case(GeneratorConfig(n_statements=stmts, n_variables=8), seed)
    return schedule_dag(case.dag, SchedulerConfig(n_pes=pes, seed=seed))


class TestEmbedding:
    def test_contains_all_barriers(self):
        result = scheduled()
        text = render_embedding(result.schedule)
        for barrier in result.schedule.barriers(include_initial=True):
            assert f"b{barrier.id}" in text

    def test_contains_headers_and_instructions(self):
        result = scheduled()
        text = render_embedding(result.schedule)
        assert "PE0" in text and "Load" in text
        assert "deadlock" not in text

    def test_every_instruction_rendered(self):
        result = scheduled(seed=72, stmts=15)
        text = render_embedding(result.schedule)
        n_rendered = sum(
            1 for line in text.splitlines() for cell in [line] if "Store" in cell
        )
        assert n_rendered >= 1


class TestBarrierDagRender:
    def test_lists_fire_windows(self):
        result = scheduled()
        text = render_barrier_dag(result.schedule)
        assert "fire=" in text and "b0" in text

    def test_sinks_marked(self):
        result = scheduled()
        assert "(sink)" in render_barrier_dag(result.schedule)


class TestGantt:
    def test_renders_trace(self):
        result = scheduled()
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, UniformSampler(), rng=1)
        text = render_gantt(program, trace)
        assert "PE0" in text and "fires:" in text
        assert "|" in text  # barrier fire markers

    def test_scales_long_traces(self):
        result = scheduled(seed=73, stmts=60, pes=2)
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, MaxSampler())
        text = render_gantt(program, trace, width=40)
        for line in text.splitlines():
            if line.startswith("PE"):
                # 5-char prefix + <=40 columns + utilization suffix.
                assert len(line) <= 46 + len("  100% busy")

    def test_describe(self):
        result = scheduled()
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, MaxSampler())
        assert "makespan" in trace.describe()

    def test_rows_annotated_with_utilization(self):
        result = scheduled()
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, MaxSampler())
        text = render_gantt(program, trace)
        rows = [l for l in text.splitlines() if l.startswith("PE")]
        assert rows
        for pe, line in enumerate(rows):
            assert line.endswith("% busy")
            # The printed percentage is the PE's true busy / makespan.
            shown = int(line.rsplit("%", 1)[0].rsplit(None, 1)[-1])
            busy = sum(
                trace.finish[item.node] - trace.start[item.node]
                for item in program.streams[pe]
                if not hasattr(item, "barrier_id")
            )
            assert shown == round(100 * busy / trace.makespan)

    def test_golden_downscaled_render(self):
        """Golden render of a deterministic downscaled (scale > 1) trace:
        barrier fire columns must survive the downscaling (drawn after
        ops) and rows carry the utilization suffix."""
        result = scheduled(seed=73, stmts=60, pes=2)
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, MaxSampler())
        text = render_gantt(program, trace, width=40)
        lines = text.splitlines()
        scale = -(-max(trace.makespan, 1) // 40)
        assert scale > 1  # the scenario actually exercises downscaling
        assert f"({scale} units/column)" in lines[0]
        rows = [l for l in lines if l.startswith("PE")]
        for pe, line in enumerate(rows):
            # Every barrier the PE participates in keeps a visible
            # fire-instant column even when many time units share it.
            fired_cols = {
                min(trace.barrier_fire[item.barrier_id] // scale, 39)
                for item in program.streams[pe]
                if hasattr(item, "barrier_id")
            }
            body = line[5:].rsplit("  ", 1)[0]
            assert {c for c, ch in enumerate(body) if ch == "|"} == fired_cols
            assert line.endswith("% busy")
