"""The paper's headline claims, asserted at test-suite scale.

The benchmark harness checks every artifact at corpus scale; this file
keeps a fast "reproduction certificate" inside `pytest tests/` for the
claims that are statistically stable on small corpora.
"""

import statistics

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.vliw import vliw_schedule
from repro.metrics.fractions import fractions_of
from repro.synth.corpus import generate_cases
from repro.synth.generator import GeneratorConfig


@pytest.fixture(scope="module")
def corpus():
    """25 mid-size benchmarks scheduled at the paper's common setting."""
    cases = list(
        generate_cases(GeneratorConfig(n_statements=60, n_variables=10), 25, 777)
    )
    results = [
        schedule_dag(c.dag, SchedulerConfig(n_pes=8, seed=c.seed & 0xFFFFFFFF))
        for c in cases
    ]
    return cases, results


class TestAbstractClaims:
    def test_over_77_percent_without_runtime_sync(self, corpus):
        """Abstract: 'more than 77% of all synchronizations ... will be
        accomplished without runtime synchronization'."""
        _, results = corpus
        mean = statistics.mean(
            fractions_of(r).no_runtime_sync for r in results
        )
        assert mean > 0.77

    def test_fraction_envelopes(self, corpus):
        """Section 5 bullets: barrier 3-23%, serialized 50-90%, static
        8-40% (checked as corpus means with small-n tolerance)."""
        _, results = corpus
        barrier = statistics.mean(fractions_of(r).barrier for r in results)
        serialized = statistics.mean(fractions_of(r).serialized for r in results)
        static = statistics.mean(fractions_of(r).static for r in results)
        assert 0.03 <= barrier <= 0.28
        assert 0.45 <= serialized <= 0.90
        assert 0.08 <= static <= 0.40


class TestSection6Claims:
    def test_vliw_comparison(self, corpus):
        """Figure 18: max ~ VLIW, min well below."""
        cases, results = corpus
        ratios_min, ratios_max = [], []
        for case, result in zip(cases, results):
            vliw = vliw_schedule(case.dag, 8)
            ratios_min.append(result.makespan.lo / vliw.makespan)
            ratios_max.append(result.makespan.hi / vliw.makespan)
        assert statistics.mean(ratios_min) < 0.87
        assert 0.95 <= statistics.mean(ratios_max) <= 1.2

    def test_vliw_hits_critical_path(self, corpus):
        cases, _ = corpus
        optimal = sum(
            vliw_schedule(c.dag, 8).is_critical_path_optimal for c in cases
        )
        assert optimal >= 0.9 * len(cases)


class TestSection4Claims:
    def test_merging_reduces_barriers(self, corpus):
        """Section 4.4.3: merging gives meaningfully fewer barriers."""
        cases, results = corpus
        unmerged = [
            schedule_dag(
                c.dag,
                SchedulerConfig(
                    n_pes=8, seed=c.seed & 0xFFFFFFFF, machine="dbm",
                    merge_barriers=False,
                ),
            ).counts.barriers_final
            for c in cases
        ]
        merged = [r.counts.barriers_final for r in results]
        reduction = 1 - statistics.mean(merged) / statistics.mean(unmerged)
        assert reduction > 0.10

    def test_secondary_effect_exists(self, corpus):
        """Section 3: a sizable share of would-be barriers are avoided by
        leaning on previously inserted ones (paper: ~28%)."""
        _, results = corpus
        secondary = sum(r.counts.secondary_resolutions for r in results)
        inserted = sum(r.counts.barrier_edges for r in results)
        fraction = secondary / (secondary + inserted)
        assert 0.15 <= fraction <= 0.65
