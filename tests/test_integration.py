"""End-to-end integration tests: source text to verified execution.

These walk the complete pipeline -- parse, lower, optimize, DAG, schedule,
lower to a machine program, execute on both barrier machines -- and check
the global invariants that tie the subsystems together.
"""

import pytest

from repro import (
    GeneratorConfig,
    MachineProgram,
    SchedulerConfig,
    compile_source,
    fractions_of,
    generate_block,
    interpret,
    schedule_dag,
    simulate_dbm,
    simulate_sbm,
    vliw_schedule,
)
from repro.ir import generate_tuples, optimize, parse_block
from repro.machine.durations import MaxSampler, MinSampler, UniformSampler

from tests.conftest import SAMPLE_SOURCE, random_env


class TestSourceToExecution:
    def test_sample_source_full_pipeline(self):
        dag = compile_source(SAMPLE_SOURCE)
        result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=1))
        program = MachineProgram.from_schedule(result.schedule)
        for rng in range(5):
            trace = simulate_sbm(program, UniformSampler(), rng=rng)
            trace.assert_sound(program.edges)
            assert result.makespan.lo <= trace.makespan <= result.makespan.hi

    def test_generated_block_semantics_survive_pipeline(self):
        block = generate_block(GeneratorConfig(n_statements=30, n_variables=8), 7)
        raw = generate_tuples(block)
        opt = optimize(raw)
        env = random_env(block, 7)
        assert interpret(opt, env) == block.execute(env)

    def test_public_api_quickstart(self):
        """The README quickstart must keep working verbatim."""
        block = generate_block(GeneratorConfig(n_statements=30, n_variables=8), 42)
        dag = compile_source(block.source())
        result = schedule_dag(dag, SchedulerConfig(n_pes=8))
        fr = fractions_of(result)
        assert fr.barrier + fr.serialized + fr.static == pytest.approx(1.0)
        assert "makespan" in result.describe()


class TestCrossMachineConsistency:
    @pytest.fixture(scope="class")
    def program_pair(self):
        dag = compile_source(SAMPLE_SOURCE)
        sbm_res = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=2, machine="sbm"))
        dbm_res = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=2, machine="dbm"))
        return (
            MachineProgram.from_schedule(sbm_res.schedule),
            MachineProgram.from_schedule(dbm_res.schedule),
        )

    def test_both_machines_sound(self, program_pair):
        sbm_prog, dbm_prog = program_pair
        for rng in range(5):
            simulate_sbm(sbm_prog, UniformSampler(), rng=rng).assert_sound(
                sbm_prog.edges
            )
            simulate_dbm(dbm_prog, UniformSampler(), rng=rng).assert_sound(
                dbm_prog.edges
            )

    def test_dbm_never_slower_than_sbm_on_same_program(self, program_pair):
        """On the *same* program, associative matching can only fire
        barriers earlier than the FIFO."""
        sbm_prog, _ = program_pair
        for rng in range(5):
            sbm_span = simulate_sbm(sbm_prog, UniformSampler(), rng=rng).makespan
            dbm_span = simulate_dbm(sbm_prog, UniformSampler(), rng=rng).makespan
            assert dbm_span <= sbm_span


class TestVliwCrossCheck:
    def test_barrier_worst_case_comparable_to_vliw(self):
        dag = compile_source(SAMPLE_SOURCE)
        vliw = vliw_schedule(dag, 4)
        result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=3))
        assert result.makespan.hi <= 2.0 * vliw.makespan
        assert result.makespan.lo <= vliw.makespan * 1.05

    def test_min_time_benefits_from_asynchrony(self):
        """Across a small corpus the barrier machine's best case beats the
        VLIW's fixed worst-case clock (the figure 18 claim)."""
        wins = 0
        n = 12
        for seed in range(n):
            block = generate_block(
                GeneratorConfig(n_statements=60, n_variables=10), seed
            )
            dag = compile_source(block.source())
            vliw = vliw_schedule(dag, 8)
            result = schedule_dag(dag, SchedulerConfig(n_pes=8, seed=seed))
            if result.makespan.lo < vliw.makespan:
                wins += 1
        assert wins >= 0.75 * n


class TestStressShapes:
    @pytest.mark.parametrize("pes", [1, 2, 3, 7, 16, 128])
    def test_odd_machine_sizes(self, pes):
        dag = compile_source(SAMPLE_SOURCE)
        result = schedule_dag(dag, SchedulerConfig(n_pes=pes, seed=pes))
        program = MachineProgram.from_schedule(result.schedule)
        simulate_sbm(program, MinSampler()).assert_sound(program.edges)
        simulate_sbm(program, MaxSampler()).assert_sound(program.edges)

    def test_single_instruction_block(self):
        dag = compile_source("a = x + y")
        result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=0))
        program = MachineProgram.from_schedule(result.schedule)
        simulate_sbm(program, UniformSampler(), rng=0).assert_sound(program.edges)

    def test_constant_only_block(self):
        dag = compile_source("a = 1 + 2\nb = 3 * 4")
        result = schedule_dag(dag, SchedulerConfig(n_pes=2, seed=0))
        assert result.counts.total_edges == 0
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, MaxSampler())
        assert trace.makespan >= 1

    def test_wide_independent_block(self):
        source = "\n".join(f"a{k} = x{k} + y{k}" for k in range(20))
        dag = compile_source(source)
        result = schedule_dag(dag, SchedulerConfig(n_pes=8, seed=9))
        program = MachineProgram.from_schedule(result.schedule)
        for rng in range(3):
            simulate_sbm(program, UniformSampler(), rng=rng).assert_sound(
                program.edges
            )

    def test_deep_serial_block(self):
        lines = ["acc = x + 1"]
        lines += [f"acc = acc * {k % 5 + 2}" for k in range(15)]
        dag = compile_source("\n".join(lines))
        result = schedule_dag(dag, SchedulerConfig(n_pes=8, seed=4))
        # a pure chain should serialize perfectly: no barriers at all
        assert result.counts.barriers_final == 0
        assert result.counts.serialized_edges == result.counts.total_edges
