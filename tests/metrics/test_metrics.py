"""Tests for the synchronization fractions and corpus statistics."""

import pytest

from repro.core.scheduler import SchedulerConfig, SyncCounts, schedule_dag
from repro.metrics.fractions import SyncFractions, fractions_of
from repro.metrics.stats import FractionAggregate, aggregate_results
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


def counts(total=10, serialized=5, path=1, timing=2, barrier_edges=2, barriers=2):
    return SyncCounts(
        total_edges=total,
        serialized_edges=serialized,
        path_edges=path,
        timing_edges=timing,
        barrier_edges=barrier_edges,
        barriers_final=barriers,
        merges=0,
        secondary_resolutions=0,
        optimal_rescues=0,
        repairs=0,
    )


class TestFractions:
    def test_basic_partition(self):
        fr = fractions_of(counts())
        assert fr.barrier == pytest.approx(0.2)
        assert fr.serialized == pytest.approx(0.5)
        assert fr.static == pytest.approx(0.3)
        assert fr.no_runtime_sync == pytest.approx(0.8)

    def test_merging_credits_static(self):
        """One barrier covering two barrier-edges raises the static share."""
        merged = fractions_of(counts(barriers=1))
        unmerged = fractions_of(counts(barriers=2))
        assert merged.static > unmerged.static
        assert merged.barrier < unmerged.barrier

    def test_empty_schedule(self):
        fr = fractions_of(counts(total=0, serialized=0, path=0, timing=0,
                                 barrier_edges=0, barriers=0))
        assert fr.total == 0 and fr.barrier == 0.0

    def test_sums_validated(self):
        with pytest.raises(ValueError):
            SyncFractions(10, 0.5, 0.5, 0.5)

    def test_accepts_schedule_result(self):
        case = compile_case(GeneratorConfig(n_statements=20, n_variables=6), 61)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=61))
        fr = fractions_of(result)
        assert fr.total == result.counts.total_edges

    def test_render(self):
        text = fractions_of(counts()).render()
        assert "barrier" in text and "%" in text


class TestAggregation:
    def test_fraction_aggregate_moments(self):
        agg = FractionAggregate.of([0.1, 0.2, 0.3])
        assert agg.mean == pytest.approx(0.2)
        assert agg.min == pytest.approx(0.1)
        assert agg.max == pytest.approx(0.3)

    def test_empty(self):
        agg = FractionAggregate.of([])
        assert agg.mean == 0.0

    def test_aggregate_results(self):
        results = []
        for seed in range(4):
            case = compile_case(GeneratorConfig(n_statements=25, n_variables=8), seed)
            results.append(schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=seed)))
        stats = aggregate_results(results)
        assert stats.n_benchmarks == 4
        total = stats.barrier.mean + stats.serialized.mean + stats.static.mean
        assert total == pytest.approx(1.0)
        assert stats.mean_makespan_max >= stats.mean_makespan_min
        assert 0 < stats.mean_processors_used <= 4
        assert len(stats.per_benchmark) == 4
        assert "barrier" in stats.render()

    def test_aggregate_empty(self):
        stats = aggregate_results([])
        assert stats.n_benchmarks == 0
