"""Tests for the random structured-program generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.ast import IfStmt, WhileStmt
from repro.flow.parser import parse_program
from repro.synth.flowgen import FlowGeneratorConfig, generate_flow_program


def structural_counts(stmts):
    n_if = n_while = 0
    for stmt in stmts:
        if isinstance(stmt, IfStmt):
            n_if += 1
            a, b = structural_counts(stmt.then_body)
            n_if += a
            n_while += b
            a, b = structural_counts(stmt.else_body)
            n_if += a
            n_while += b
        elif isinstance(stmt, WhileStmt):
            n_while += 1
            a, b = structural_counts(stmt.body)
            n_if += a
            n_while += b
    return n_if, n_while


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowGeneratorConfig(n_statements=0)
        with pytest.raises(ValueError):
            FlowGeneratorConfig(p_if=0.7, p_while=0.5)
        with pytest.raises(ValueError):
            FlowGeneratorConfig(loop_iters=(5, 2))


class TestGeneration:
    def test_deterministic(self):
        cfg = FlowGeneratorConfig(n_statements=20)
        a = generate_flow_program(cfg, 7).source()
        b = generate_flow_program(cfg, 7).source()
        assert a == b

    def test_round_trips_through_parser(self):
        cfg = FlowGeneratorConfig(n_statements=25)
        for seed in range(10):
            program = generate_flow_program(cfg, seed)
            assert parse_program(program.source()) == program

    def test_structural_statements_appear(self):
        cfg = FlowGeneratorConfig(n_statements=30, p_if=0.2, p_while=0.15)
        total_if = total_while = 0
        for seed in range(30):
            n_if, n_while = structural_counts(
                generate_flow_program(cfg, seed).statements
            )
            total_if += n_if
            total_while += n_while
        assert total_if > 10 and total_while > 10

    def test_counters_are_reserved_names(self):
        cfg = FlowGeneratorConfig(n_statements=40, p_while=0.3, p_if=0.0)
        program = generate_flow_program(cfg, 3)
        counters = [
            name for name in program.variables() if name.startswith("__c")
        ]
        assert counters, "expected at least one counted loop"
        user_vars = cfg.base_config().variable_names()
        assert not any(c in user_vars for c in counters)


class TestTermination:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), stmts=st.integers(3, 40))
    def test_every_generated_program_terminates(self, seed, stmts):
        cfg = FlowGeneratorConfig(
            n_statements=stmts, p_if=0.2, p_while=0.2, max_depth=3
        )
        program = generate_flow_program(cfg, seed)
        env = {name: (seed + 5) % 13 for name in program.variables()}
        # must finish well inside the guard (counted loops only)
        program.execute(env, max_steps=50_000)

    def test_zero_iteration_loops_allowed(self):
        cfg = FlowGeneratorConfig(
            n_statements=20, p_while=0.4, p_if=0.0, loop_iters=(0, 0)
        )
        program = generate_flow_program(cfg, 5)
        env = {name: 1 for name in program.variables()}
        program.execute(env)  # loops all skip
