"""Tests for the curated real-kernel suite."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.ir import compile_block, generate_tuples, interpret, optimize
from repro.machine import MachineProgram, UniformSampler, simulate_sbm
from repro.synth.kernels import KERNELS, kernel_blocks


class TestKernelDefinitions:
    def test_suite_has_expected_members(self):
        assert {"fir4", "matmul2", "horner5", "checksum"} <= set(KERNELS)
        assert len(KERNELS) >= 8

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_parses(self, name):
        block = KERNELS[name].block()
        assert len(block) >= 4

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_sample_inputs_cover_live_ins(self, name):
        kernel = KERNELS[name]
        block = kernel.block()
        missing = set(block.live_in_variables()) - set(kernel.sample_inputs)
        assert not missing, f"{name} missing inputs {missing}"

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_compiled_semantics(self, name):
        kernel = KERNELS[name]
        block = kernel.block()
        expected = block.execute(kernel.sample_inputs)
        program = optimize(generate_tuples(block))
        assert interpret(program, kernel.sample_inputs) == expected


class TestKernelExpectedValues:
    def test_matmul2(self):
        out = KERNELS["matmul2"].block().execute(KERNELS["matmul2"].sample_inputs)
        # [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        assert (out["r00"], out["r01"], out["r10"], out["r11"]) == (19, 22, 43, 50)

    def test_geometry3_dot(self):
        out = KERNELS["geometry3"].block().execute(
            KERNELS["geometry3"].sample_inputs
        )
        assert out["dot"] == 1 * 4 + 2 * 5 + 3 * 6
        assert (out["cx"], out["cy"], out["cz"]) == (-3, 6, -3)

    def test_horner5(self):
        out = KERNELS["horner5"].block().execute(KERNELS["horner5"].sample_inputs)
        x = 3
        assert out["p"] == ((((6 * x + 5) * x + 4) * x + 3) * x + 2) * x + 1


class TestKernelScheduling:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_schedule_and_execute_soundly(self, name):
        dag = compile_block(KERNELS[name].block())
        result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=1))
        program = MachineProgram.from_schedule(result.schedule)
        for run in range(3):
            simulate_sbm(program, UniformSampler(), rng=run).assert_sound(
                program.edges
            )

    def test_kernel_blocks_helper(self):
        blocks = kernel_blocks()
        assert set(blocks) == set(KERNELS)
