"""Tests for the synthetic-benchmark generator and corpus driver."""

import random

import pytest

from repro.ir.ops import ALU_OPCODES, OP_FREQUENCIES, Opcode
from repro.ir.codegen import generate_tuples
from repro.synth.corpus import compile_case, generate_cases, generate_corpus
from repro.synth.generator import GeneratorConfig, generate_block


class TestConfigValidation:
    def test_bad_statements(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_statements=0)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            GeneratorConfig(p_constant_operand=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(p_nested=1.0)

    def test_bad_constant_range(self):
        with pytest.raises(ValueError):
            GeneratorConfig(constant_range=(5, 1))

    def test_variable_names(self):
        assert GeneratorConfig(n_variables=3).variable_names() == ("v0", "v1", "v2")


class TestGeneration:
    def test_statement_count(self):
        block = generate_block(GeneratorConfig(n_statements=17), 0)
        assert len(block) == 17

    def test_deterministic_in_seed(self):
        cfg = GeneratorConfig(n_statements=25, n_variables=6)
        assert generate_block(cfg, 5).source() == generate_block(cfg, 5).source()
        assert generate_block(cfg, 5).source() != generate_block(cfg, 6).source()

    def test_accepts_rng_or_seed(self):
        cfg = GeneratorConfig(n_statements=10)
        a = generate_block(cfg, 3)
        b = generate_block(cfg, random.Random(3))
        assert a == b

    def test_variables_within_budget(self):
        cfg = GeneratorConfig(n_statements=40, n_variables=4)
        block = generate_block(cfg, 1)
        names = set(block.assigned_variables()) | set(block.live_in_variables())
        assert names <= set(cfg.variable_names())

    def test_zero_constant_probability_gives_no_consts(self):
        cfg = GeneratorConfig(n_statements=30, p_constant_operand=0.0)
        block = generate_block(cfg, 2)
        assert "=" in block.source()
        program = generate_tuples(block)
        from repro.ir.tuples import Imm

        assert not any(
            isinstance(op, Imm) for t in program for op in t.operands
        )

    def test_nested_expressions_increase_ops(self):
        flat = GeneratorConfig(n_statements=30, p_nested=0.0)
        deep = GeneratorConfig(n_statements=30, p_nested=0.5, max_depth=4)
        flat_ops = len(generate_tuples(generate_block(flat, 3)))
        deep_ops = len(generate_tuples(generate_block(deep, 3)))
        assert deep_ops > flat_ops

    def test_operator_mix_roughly_matches_table1(self):
        cfg = GeneratorConfig(n_statements=60, n_variables=10)
        counts = {op: 0 for op in ALU_OPCODES}
        for seed in range(80):
            for tup in generate_tuples(generate_block(cfg, seed)):
                if tup.opcode in counts:
                    counts[tup.opcode] += 1
        total = sum(counts.values())
        for op in ALU_OPCODES:
            expected = OP_FREQUENCIES[op] / 100.0
            assert abs(counts[op] / total - expected) < 0.03, op


class TestCorpus:
    def test_compile_case_round_trip(self):
        case = compile_case(GeneratorConfig(n_statements=20, n_variables=6), 9)
        assert case.n_instructions == len(case.program)
        assert case.implied_synchronizations == case.dag.implied_synchronizations
        assert len(case.program) <= len(case.raw_program)

    def test_corpus_size_and_determinism(self):
        cfg = GeneratorConfig(n_statements=15, n_variables=5)
        c1 = generate_corpus(cfg, 5, master_seed=3)
        c2 = generate_corpus(cfg, 5, master_seed=3)
        assert [a.seed for a in c1] == [b.seed for b in c2]
        assert len(c1) == 5

    def test_accept_filter(self):
        cfg = GeneratorConfig(n_statements=30, n_variables=8)
        cases = generate_corpus(
            cfg, 5, master_seed=4, accept=lambda c: c.implied_synchronizations >= 20
        )
        assert all(c.implied_synchronizations >= 20 for c in cases)

    def test_impossible_filter_raises(self):
        cfg = GeneratorConfig(n_statements=5, n_variables=3)
        with pytest.raises(RuntimeError):
            list(
                generate_cases(
                    cfg,
                    3,
                    accept=lambda c: c.implied_synchronizations > 10_000,
                    max_attempts_factor=3,
                )
            )

    def test_describe(self):
        case = compile_case(GeneratorConfig(n_statements=10, n_variables=4), 1)
        assert "syncs=" in case.describe()
