"""Tests for the schedule quality reports."""

import pytest

from repro.analysis import analyze_schedule
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


@pytest.fixture(scope="module")
def report_pair():
    case = compile_case(GeneratorConfig(n_statements=50, n_variables=10), 91)
    result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=91))
    return result, analyze_schedule(result)


class TestBarrierStats:
    def test_count_matches_result(self, report_pair):
        result, report = report_pair
        assert report.barriers.count == result.counts.barriers_final

    def test_widths_at_least_two(self, report_pair):
        _, report = report_pair
        # every inserted barrier spans a producer and a consumer processor
        assert all(w >= 2 for w in report.barriers.widths)
        assert report.barriers.max_width >= report.barriers.mean_width

    def test_merged_barriers_detected(self):
        case = compile_case(GeneratorConfig(n_statements=80, n_variables=10), 92)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=8, seed=92))
        report = analyze_schedule(result)
        if result.counts.merges:
            assert report.barriers.merged_count >= 1
            assert 0.0 < report.barriers.merge_share <= 1.0

    def test_fire_windows_within_makespan(self, report_pair):
        result, report = report_pair
        for window in report.barriers.fire_windows:
            assert window.hi <= result.makespan.hi


class TestUtilization:
    def test_bounds(self, report_pair):
        _, report = report_pair
        assert 0.0 < report.utilization.utilization <= 1.0
        assert report.utilization.imbalance >= 1.0

    def test_single_pe_perfectly_balanced(self):
        case = compile_case(GeneratorConfig(n_statements=20, n_variables=6), 93)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=1))
        report = analyze_schedule(result)
        assert report.utilization.processors_used == 1
        assert report.utilization.imbalance == pytest.approx(1.0)
        assert report.utilization.utilization == pytest.approx(1.0)

    def test_busy_never_exceeds_makespan(self, report_pair):
        result, report = report_pair
        for busy in report.utilization.per_pe_busy:
            assert busy <= result.makespan.hi


class TestReportRendering:
    def test_render_sections(self, report_pair):
        _, report = report_pair
        text = report.render()
        for token in ("barriers:", "processors used:", "secondary"):
            assert token in text

    def test_secondary_share_bounds(self, report_pair):
        _, report = report_pair
        assert 0.0 <= report.secondary_share <= 1.0
