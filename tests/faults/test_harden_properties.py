"""Property tests for ε-hardening: survival and monotone cost.

Two schedule-independent laws, checked by seeded Monte-Carlo over a
random corpus rather than on the one reference case:

* **Soundness**: a schedule hardened against a duration-only plan
  survives *any* fault draw the plan can produce -- every campaign run
  is race-free, whatever the seed.
* **Monotone cost**: the worst-case makespan of the hardened schedule
  never decreases as ε grows.  A bigger fault envelope can only force
  more (never fewer) of the timing proofs to fail, so the hardening
  price curve is non-decreasing.
"""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, harden_schedule, run_campaign
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

EPSILONS = (0.0, 0.1, 0.25, 0.5, 1.0)


def scheduled(seed, n_pes=4, n_statements=24):
    case = compile_case(GeneratorConfig(n_statements=n_statements), seed)
    cfg = SchedulerConfig(n_pes=n_pes, machine="sbm", seed=seed)
    return schedule_dag(case.dag, cfg).schedule


class TestHardeningSoundnessProperty:
    @pytest.mark.parametrize("seed", range(6))
    def test_hardened_survives_any_draw_within_budget(self, seed):
        # Monte-Carlo over the plan's whole envelope: overruns on every
        # instruction, interrupt spikes, and straggler PEs at once.
        schedule = scheduled(seed)
        plan = FaultPlan(
            epsilon=0.4,
            p_overrun=1.0,
            spike_prob=0.3,
            spike_magnitude=3,
            straggler_pes=frozenset({0}),
            straggler_factor=2.0,
        )
        hardened = harden_schedule(schedule, plan=plan, merge=True)
        report = run_campaign(
            hardened.schedule, "sbm", plan, runs=25, seed=seed * 77 + 1
        )
        assert report.race_free, report.render()
        assert report.n_deadlocks == 0

    @pytest.mark.parametrize("seed", [2, 5])
    def test_survival_holds_across_distinct_campaign_seeds(self, seed):
        # The property is about the draw space, not one rng stream.
        schedule = scheduled(seed)
        plan = FaultPlan(epsilon=0.6)
        hardened = harden_schedule(schedule, plan=plan, merge=True)
        for campaign_seed in (0, 101, 202):
            report = run_campaign(
                hardened.schedule, "sbm", plan, runs=15, seed=campaign_seed
            )
            assert report.race_free, report.render()


class TestHardeningCostMonotonicity:
    @pytest.mark.parametrize("seed", range(6))
    def test_worst_case_makespan_monotone_in_epsilon(self, seed):
        schedule = scheduled(seed)
        highs = []
        barriers = []
        for eps in EPSILONS:
            if eps == 0.0:
                highs.append(schedule.makespan().hi)
                barriers.append(len(list(schedule.barriers())))
                continue
            hardened = harden_schedule(schedule, epsilon=eps, merge=True)
            highs.append(hardened.schedule.makespan().hi)
            barriers.append(len(list(hardened.schedule.barriers())))
        assert highs == sorted(highs), (EPSILONS, highs)
        # Barrier population never shrinks either: hardening only adds.
        assert all(b >= barriers[0] for b in barriers), barriers

    def test_overhead_relative_to_static_is_nonnegative(self):
        schedule = scheduled(3)
        for eps in EPSILONS[1:]:
            hardened = harden_schedule(schedule, epsilon=eps, merge=True)
            assert hardened.schedule.makespan().hi >= schedule.makespan().hi
