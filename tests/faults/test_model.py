"""Tests for the fault model: plans, injectors, DAG inflation."""

import random

import pytest

from repro.timing import Interval
from repro.faults import FaultPlan, FaultySampler, FaultyController, inflate_dag
from repro.ir.dag import InstructionDAG
from repro.machine.durations import MaxSampler, UniformSampler

IV = Interval(4, 8)
RNG = lambda seed=0: random.Random(seed)


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epsilon=-0.1),
            dict(p_overrun=1.5),
            dict(p_overrun=-0.1),
            dict(spike_prob=2.0),
            dict(spike_magnitude=-1),
            dict(straggler_factor=0.5),
            dict(barrier_jitter=-3),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_straggler_pes_normalized_to_frozenset(self):
        plan = FaultPlan(straggler_pes={1, 2})
        assert isinstance(plan.straggler_pes, frozenset)
        assert plan == FaultPlan(straggler_pes=frozenset({2, 1}))

    def test_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan(spike_prob=0.5).is_null  # zero magnitude
        assert FaultPlan(spike_magnitude=3).is_null  # zero probability
        assert not FaultPlan(epsilon=0.1).is_null
        assert not FaultPlan(spike_prob=0.5, spike_magnitude=3).is_null
        assert not FaultPlan(barrier_jitter=1).is_null


class TestEnvelope:
    def test_stretch_hi_floor(self):
        plan = FaultPlan(epsilon=0.25)
        assert plan.stretch_hi(8) == 10  # 8 + floor(2.0)
        assert plan.stretch_hi(1) == 1  # floor(0.25) == 0: no room
        assert plan.stretch_hi(7) == 8  # 7 + floor(1.75)

    def test_straggler_budget(self):
        plan = FaultPlan(epsilon=0.25, straggler_pes={0}, straggler_factor=2.0)
        assert plan.stretch_hi(8, slow=True) == 12
        assert plan.stretch_hi(8, slow=False) == 10
        assert plan.worst_stretch == 0.5

    def test_worst_case_hi_includes_spikes(self):
        plan = FaultPlan(epsilon=0.25, spike_prob=0.5, spike_magnitude=3)
        assert plan.worst_case_hi(IV) == 10 + 3
        assert FaultPlan(epsilon=0.25).worst_case_hi(IV) == 10

    def test_perturb_stays_in_envelope(self):
        plan = FaultPlan(
            epsilon=0.5, p_overrun=0.7, spike_prob=0.3, spike_magnitude=5
        )
        rng = RNG(1)
        cap = plan.worst_case_hi(IV)
        for _ in range(500):
            out = plan.perturb(IV.hi, IV, rng)
            assert IV.lo <= out <= cap

    def test_null_plan_never_perturbs(self):
        plan = FaultPlan()
        assert all(plan.perturb(5, IV, RNG(k)) == 5 for k in range(20))

    def test_describe_mentions_active_modes(self):
        plan = FaultPlan(
            epsilon=0.2,
            spike_prob=0.1,
            spike_magnitude=4,
            straggler_pes={1},
            barrier_jitter=2,
        )
        text = plan.describe()
        assert "epsilon=0.2" in text
        assert "spikes" in text
        assert "stragglers" in text and "PE{1}" in text
        assert "jitter" in text


class TestFaultySampler:
    def test_zero_epsilon_is_transparent(self):
        sampler = FaultySampler(FaultPlan(), MaxSampler())
        assert sampler.sample("n", IV, RNG()) == IV.hi

    def test_overruns_bounded(self):
        sampler = FaultySampler(FaultPlan(epsilon=1.0), UniformSampler())
        rng = RNG(2)
        draws = [sampler.sample("n", IV, rng) for _ in range(300)]
        assert max(draws) <= 16
        assert max(draws) > IV.hi  # overruns actually happen

    def test_slow_nodes_get_bigger_budget(self):
        plan = FaultPlan(epsilon=0.5, straggler_pes={0}, straggler_factor=2.0)
        sampler = FaultySampler(plan, MaxSampler(), slow_nodes=frozenset({"s"}))
        rng = RNG(3)
        fast = max(sampler.sample("n", IV, rng) for _ in range(200))
        slow = max(sampler.sample("s", IV, rng) for _ in range(200))
        assert fast <= plan.stretch_hi(IV.hi) < slow <= plan.stretch_hi(IV.hi, True)


class _StubController:
    def __init__(self, fire_at=7):
        self.fire_at = fire_at

    def select(self, waiting, arrival):
        if not waiting:
            return None
        return next(iter(waiting.values())), self.fire_at


class TestFaultyController:
    def test_jitter_delays_and_records(self):
        plan = FaultPlan(barrier_jitter=5)
        wrapped = FaultyController(_StubController(), plan, RNG(4))
        delayed = 0
        for _ in range(50):
            bid, t = wrapped.select({0: 1}, {0: 7})
            assert 7 <= t <= 12
            delayed += t > 7
        assert delayed > 0
        assert wrapped.jitter  # recorded for post-mortem correlation

    def test_zero_jitter_is_passthrough(self):
        wrapped = FaultyController(_StubController(), FaultPlan(), RNG())
        assert wrapped.select({0: 1}, {0: 7}) == (1, 7)
        assert wrapped.jitter == {}

    def test_none_propagates(self):
        wrapped = FaultyController(_StubController(), FaultPlan(), RNG())
        assert wrapped.select({}, {}) is None


class TestInflateDag:
    def _dag(self):
        return InstructionDAG.build(
            {"a": Interval(1, 4), "b": Interval(16, 24), "c": Interval(1, 1)},
            [("a", "b"), ("b", "c")],
        )

    def test_hi_stretched_lo_preserved(self):
        dag = self._dag()
        inflated = inflate_dag(dag, FaultPlan(epsilon=0.25))
        assert inflated.latency("a") == Interval(1, 5)
        assert inflated.latency("b") == Interval(16, 30)
        assert inflated.latency("c") == Interval(1, 1)

    def test_edges_preserved(self):
        dag = self._dag()
        inflated = inflate_dag(dag, FaultPlan(epsilon=0.5))
        assert sorted(inflated.real_edges()) == sorted(dag.real_edges())

    def test_null_plan_identity_latencies(self):
        dag = self._dag()
        inflated = inflate_dag(dag, FaultPlan())
        for node in dag.real_nodes:
            assert inflated.latency(node) == dag.latency(node)

    def test_slow_nodes_inflate_more(self):
        dag = self._dag()
        plan = FaultPlan(epsilon=0.25, straggler_pes={0}, straggler_factor=2.0)
        inflated = inflate_dag(dag, plan, slow_nodes=frozenset({"b"}))
        assert inflated.latency("b") == Interval(16, 36)  # 24 + floor(24*0.5)
        assert inflated.latency("a") == Interval(1, 5)
