"""Tests for the static robustness-margin analysis."""

import math

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import robustness_margin
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

from tests.conftest import chain_dag


def scheduled(seed=7, n_pes=4, n_statements=30, machine="sbm", insertion="conservative"):
    case = compile_case(GeneratorConfig(n_statements=n_statements), seed)
    cfg = SchedulerConfig(n_pes=n_pes, machine=machine, insertion=insertion, seed=seed)
    return schedule_dag(case.dag, cfg).schedule


class TestRobustnessMargin:
    def test_edge_partition_is_total(self):
        schedule = scheduled()
        report = robustness_margin(schedule)
        assert report.n_edges == len(list(schedule.dag.real_edges()))
        assert report.n_structural + report.n_timing == report.n_edges

    def test_single_pe_chain_is_all_structural(self):
        dag = chain_dag([(1, 4), (1, 1), (2, 3)])
        schedule = schedule_dag(dag, SchedulerConfig(n_pes=1)).schedule
        report = robustness_margin(schedule)
        assert report.n_timing == 0
        assert math.isinf(report.epsilon_star)
        assert report.weakest is None
        assert report.min_slack is None
        assert "structurally robust" in report.render()

    def test_timing_edges_have_nonnegative_slack(self):
        # A validated schedule's conservative timing proofs all hold.
        for seed in range(5):
            report = robustness_margin(scheduled(seed=seed))
            for edge in report.edges:
                assert edge.slack >= 0
                assert edge.epsilon_edge >= 0.0

    def test_epsilon_star_is_the_minimum(self):
        report = robustness_margin(scheduled())
        if report.edges:
            assert report.epsilon_star == min(e.epsilon_edge for e in report.edges)
            assert report.weakest.epsilon_edge == report.epsilon_star

    def test_edges_sorted_weakest_first(self):
        report = robustness_margin(scheduled())
        eps = [e.epsilon_edge for e in report.edges]
        assert eps == sorted(eps)

    def test_optimal_mode_margins_are_zero(self):
        # Edges rescued only by the 4.4.2 overlap analysis carry no
        # conservative slack; their margin must be reported as 0.
        for seed in range(8):
            schedule = scheduled(seed=seed, insertion="optimal")
            report = robustness_margin(schedule, mode="optimal")
            for edge in report.edges:
                if edge.kind == "timing-optimal":
                    assert edge.epsilon_edge == 0.0

    def test_render_lists_weakest_edges(self):
        report = robustness_margin(scheduled())
        text = report.render(limit=2)
        assert "epsilon*" in text
        if report.n_timing > 2:
            assert "more timing edges" in text

    def test_describe_mentions_slack(self):
        report = robustness_margin(scheduled())
        if report.edges:
            assert "slack" in report.edges[0].describe()
