"""Tests for the Monte-Carlo fault campaign and its blame reports."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, run_campaign
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

# The reference configuration of docs/robustness.md: a 30-statement
# block on 4 PEs whose weakest timing proof breaks at epsilon = 0.25.
RACY_SEED = 7


def scheduled(seed=RACY_SEED, n_pes=4, machine="sbm"):
    case = compile_case(GeneratorConfig(n_statements=30), seed)
    cfg = SchedulerConfig(n_pes=n_pes, machine=machine, seed=seed)
    return schedule_dag(case.dag, cfg).schedule


class TestNullPlanSoundness:
    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    def test_epsilon_zero_is_race_free_across_corpus(self, machine):
        # The paper's soundness theorem, checked dynamically: without
        # fault injection no schedule ever races, on either machine.
        for seed in range(6):
            schedule = scheduled(seed=seed, machine=machine)
            report = run_campaign(
                schedule, machine, FaultPlan(epsilon=0.0), runs=10, seed=seed
            )
            assert report.race_free, report.render()
            assert report.total_overruns == 0


class TestRaceDetection:
    def test_detects_race_at_quarter_epsilon(self):
        report = run_campaign(
            scheduled(), "sbm", FaultPlan(epsilon=0.25), runs=50, seed=7
        )
        assert not report.race_free
        assert report.n_racy_runs >= 1
        assert report.total_overruns > 0

    def test_blame_names_broken_timing_proof(self):
        report = run_campaign(
            scheduled(), "sbm", FaultPlan(epsilon=0.25), runs=50, seed=7
        )
        blame = report.blames[0]
        # Races can only come from timing-discharged edges: serialized
        # edges are stream-order safe and path/barrier edges are
        # enforced by the barrier hardware itself.
        assert blame.kind in ("timing", "timing-optimal")
        assert blame.static_slack is not None and blame.static_slack >= 0
        assert blame.worst_excess >= 1
        assert blame.consumed_slack == blame.static_slack + blame.worst_excess
        assert "proof broken" in blame.describe()

    def test_render_includes_blame_lines(self):
        report = run_campaign(
            scheduled(), "sbm", FaultPlan(epsilon=0.25), runs=50, seed=7
        )
        text = report.render()
        assert "RACES" in text
        assert "slack" in text

    def test_race_free_render(self):
        report = run_campaign(scheduled(), "sbm", FaultPlan(), runs=5, seed=0)
        assert "no races observed" in report.render()


class TestCampaignMechanics:
    def test_deterministic_for_fixed_seed(self):
        schedule = scheduled()
        plan = FaultPlan(epsilon=0.3)
        a = run_campaign(schedule, "sbm", plan, runs=15, seed=11)
        b = run_campaign(schedule, "sbm", plan, runs=15, seed=11)
        assert a == b

    def test_seed_changes_outcome_counts(self):
        schedule = scheduled()
        plan = FaultPlan(epsilon=0.3)
        a = run_campaign(schedule, "sbm", plan, runs=15, seed=1)
        b = run_campaign(schedule, "sbm", plan, runs=15, seed=2)
        assert a.total_overruns != b.total_overruns

    def test_directed_runs_can_be_disabled(self):
        report = run_campaign(
            scheduled(), "sbm", FaultPlan(epsilon=0.25), runs=5, seed=0, directed=False
        )
        assert report.n_directed == 0
        assert report.n_random == 5

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(scheduled(), "vliw", FaultPlan(), runs=1, seed=0)

    def test_jitter_plan_executes(self):
        # Barrier-release jitter is stress-tested dynamically (it is not
        # covered by duration hardening); the campaign must survive it.
        report = run_campaign(
            scheduled(), "dbm", FaultPlan(barrier_jitter=3), runs=10, seed=5
        )
        assert report.n_runs >= 10
        assert report.n_deadlocks == 0

    def test_straggler_plan_executes(self):
        plan = FaultPlan(epsilon=0.25, straggler_pes={0}, straggler_factor=3.0)
        report = run_campaign(scheduled(), "sbm", plan, runs=10, seed=5)
        assert report.n_runs >= 10
