"""Tests for ε-hardening: the constructive half of the robustness story."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.core.validate import find_violations
from repro.faults import FaultPlan, harden_schedule, run_campaign
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

RACY_SEED = 7  # see tests/faults/test_campaign.py


def scheduled(seed=RACY_SEED, n_pes=4, machine="sbm"):
    case = compile_case(GeneratorConfig(n_statements=30), seed)
    cfg = SchedulerConfig(n_pes=n_pes, machine=machine, seed=seed)
    return schedule_dag(case.dag, cfg).schedule


class TestHardenSchedule:
    def test_hardened_schedule_is_race_free_under_same_plan(self):
        # The acceptance property: a schedule that races at eps = 0.25
        # stops racing after hardening against that exact plan -- every
        # faulty execution of the hardened schedule is an in-interval
        # execution of the inflated DAG it was validated against.
        schedule = scheduled()
        plan = FaultPlan(epsilon=0.25)
        before = run_campaign(schedule, "sbm", plan, runs=50, seed=7)
        assert not before.race_free  # the premise: the raw schedule races
        report = harden_schedule(schedule, plan=plan, merge=True)
        after = run_campaign(report.schedule, "sbm", plan, runs=50, seed=7)
        assert after.race_free, after.render()

    def test_hardened_race_free_across_seeds_and_epsilons(self):
        for seed in range(4):
            schedule = scheduled(seed=seed)
            for eps in (0.25, 0.5, 1.0):
                plan = FaultPlan(epsilon=eps)
                report = harden_schedule(schedule, plan=plan, merge=True)
                after = run_campaign(
                    report.schedule, "sbm", plan, runs=15, seed=seed
                )
                assert after.race_free, (seed, eps, after.render())

    def test_null_plan_changes_nothing(self):
        schedule = scheduled()
        report = harden_schedule(schedule, epsilon=0.0, merge=True)
        assert report.repairs == 0
        assert report.extra_barriers == 0
        assert report.makespan_after == report.makespan_before

    def test_placement_is_preserved(self):
        # Hardening only adds synchronization; instructions never move.
        schedule = scheduled()
        report = harden_schedule(schedule, epsilon=1.0, merge=True)
        for node in schedule.scheduled_nodes:
            assert report.schedule.processor_of(node) == schedule.processor_of(node)
        for pe in range(schedule.n_pes):
            assert report.schedule.instructions_on(pe) == schedule.instructions_on(pe)

    def test_input_schedule_not_mutated(self):
        schedule = scheduled()
        barriers = schedule.n_barriers
        streams = [list(s) for s in schedule.streams]
        harden_schedule(schedule, epsilon=1.0, merge=True)
        assert schedule.n_barriers == barriers
        assert [list(s) for s in schedule.streams] == streams
        assert find_violations(schedule) == []

    def test_hardened_schedule_still_valid_under_original_model(self):
        schedule = scheduled()
        report = harden_schedule(schedule, epsilon=0.5, merge=True)
        assert find_violations(report.schedule) == []

    def test_needs_epsilon_or_plan(self):
        with pytest.raises(ValueError):
            harden_schedule(scheduled())

    def test_conflicting_epsilon_and_plan_rejected(self):
        with pytest.raises(ValueError):
            harden_schedule(scheduled(), 0.5, plan=FaultPlan(epsilon=0.25))

    def test_matching_epsilon_and_plan_accepted(self):
        report = harden_schedule(scheduled(), 0.25, plan=FaultPlan(epsilon=0.25))
        assert report.plan.epsilon == 0.25

    def test_report_accounting(self):
        schedule = scheduled()
        report = harden_schedule(schedule, epsilon=0.5, merge=True)
        assert report.barriers_before == schedule.n_barriers
        assert report.barriers_after == report.schedule.n_barriers
        assert report.extra_barriers == report.barriers_after - report.barriers_before
        assert report.worst_case_makespan.hi >= report.makespan_after.hi
        assert "barriers" in report.render()

    def test_makespan_overhead_nonnegative(self):
        # Adding barriers can only delay completion under the original
        # timing model.
        for seed in range(4):
            report = harden_schedule(scheduled(seed=seed), epsilon=1.0, merge=True)
            assert report.makespan_overhead >= 0.0
            assert report.makespan_after.hi >= report.makespan_before.hi
