"""Tests for DOT export and corpus archives."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.archive import (
    archive_corpus,
    iter_records,
    load_archive,
    stats_from_archive,
)
from repro.experiments.sweeps import ExperimentPoint, run_point
from repro.flow.cfg import build_cfg
from repro.flow.parser import parse_program
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig
from repro.viz.dot import barrier_dag_to_dot, cfg_to_dot, instruction_dag_to_dot


@pytest.fixture(scope="module")
def scheduled():
    case = compile_case(GeneratorConfig(n_statements=25, n_variables=8), 81)
    return case, schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=81))


class TestDot:
    def test_instruction_dag(self, scheduled):
        case, _ = scheduled
        dot = instruction_dag_to_dot(case.dag)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == case.dag.implied_synchronizations
        assert "Load" in dot

    def test_barrier_dag_from_schedule(self, scheduled):
        _, result = scheduled
        dot = barrier_dag_to_dot(result.schedule)
        assert '"b0"' in dot and "doublecircle" in dot
        assert "fire" in dot
        n_edges = sum(1 for _ in result.schedule.barrier_dag().edges())
        assert dot.count("->") == n_edges

    def test_barrier_dag_direct(self, scheduled):
        _, result = scheduled
        dot = barrier_dag_to_dot(result.schedule.barrier_dag())
        assert '"b0"' in dot

    def test_cfg(self):
        cfg = build_cfg(parse_program("a = 1 + 2\nwhile (a) { a = a - 1 }"))
        dot = cfg_to_dot(cfg)
        assert "B0" in dot and "darkgreen" in dot and "crimson" in dot
        assert "(exit)" in dot

    def test_quoting(self):
        cfg = build_cfg(parse_program('x = y + 1'))
        dot = cfg_to_dot(cfg)
        assert '\\"' not in dot  # nothing needing escaping in this source
        # statements embedded as labels
        assert "x = y + 1" in dot


class TestArchive:
    @pytest.fixture(scope="class")
    def point(self):
        return ExperimentPoint(
            generator=GeneratorConfig(n_statements=20, n_variables=6),
            scheduler=SchedulerConfig(n_pes=4),
            count=6,
            master_seed=5,
        )

    def test_write_and_load(self, point, tmp_path):
        path = tmp_path / "corpus.jsonl"
        written = archive_corpus(point, path)
        assert written == 6
        header, records = load_archive(path)
        assert header["count"] == 6
        assert header["generator"]["n_statements"] == 20
        assert len(records) == 6
        assert all("case_seed" in r for r in records)

    def test_stats_match_fresh_run(self, point, tmp_path):
        path = tmp_path / "corpus.jsonl"
        archive_corpus(point, path)
        archived = stats_from_archive(path)
        fresh = run_point(point)
        assert archived.n_benchmarks == fresh.n_benchmarks
        assert archived.mean_barrier == pytest.approx(fresh.barrier.mean)
        assert archived.mean_serialized == pytest.approx(fresh.serialized.mean)
        assert archived.mean_makespan_hi == pytest.approx(fresh.mean_makespan_max)
        assert "archive:" in archived.render()

    def test_iter_records_streams(self, point, tmp_path):
        path = tmp_path / "corpus.jsonl"
        archive_corpus(point, path)
        seeds = [r["case_seed"] for r in iter_records(path)]
        assert len(seeds) == len(set(seeds)) == 6

    def test_bad_format(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(ValueError):
            load_archive(path)
        path.write_text("")
        with pytest.raises(ValueError):
            load_archive(path)

    def test_empty_archive_stats(self, point, tmp_path):
        path = tmp_path / "empty.jsonl"
        archive_corpus(point.with_(count=1), path)
        # truncate records, keep header
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")
        stats = stats_from_archive(path)
        assert stats.n_benchmarks == 0
