"""Tests for CFG lowering, per-block scheduling, and dynamic execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import SchedulerConfig
from repro.flow.ast import FlowProgram
from repro.flow.cfg import Branch, ExitTerm, Jump, build_cfg
from repro.flow.executor import BlockLimitExceeded, execute_flow_schedule
from repro.flow.parser import parse_program
from repro.flow.schedule import BRANCH_VAR, compile_cfg_block, schedule_program
from repro.ir.ops import Opcode
from repro.machine.durations import MaxSampler, MinSampler

GCD = """
while (b) {
    t = a % b
    a = b
    b = t
}
g = a + 0
"""

BRANCHY = """
acc = 0
i = n
while (i) {
    t = i * i
    if (t & 1) {
        acc = acc + t
    } else {
        acc = acc - i
    }
    i = i - 1
}
out = acc % 9973
"""


class TestCfgLowering:
    def test_straightline_single_block(self):
        cfg = build_cfg(parse_program("a = x + 1\nb = a * 2"))
        assert len(cfg) == 1
        assert isinstance(cfg.blocks[0].terminator, ExitTerm)

    def test_if_diamond(self):
        cfg = build_cfg(parse_program("if (x) { y = 1 + 1 } else { y = 2 + 2 }"))
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry.terminator, Branch)
        assert len(cfg.successors(cfg.entry)) == 2

    def test_while_loop_shape(self):
        cfg = build_cfg(parse_program(GCD))
        # entry -> header; header branches to body and after
        headers = [
            b for b in cfg.blocks.values() if isinstance(b.terminator, Branch)
        ]
        assert len(headers) == 1
        body_id, after_id = (
            headers[0].terminator.true_target,
            headers[0].terminator.false_target,
        )
        body = cfg.blocks[body_id]
        assert isinstance(body.terminator, Jump)
        assert body.terminator.target == headers[0].id

    @pytest.mark.parametrize(
        "env", [{"a": 48, "b": 36}, {"a": 17, "b": 5}, {"a": 9, "b": 0}]
    )
    def test_cfg_execution_matches_ast(self, env):
        program = parse_program(GCD)
        cfg = build_cfg(program)
        ast_out = program.execute(env)
        cfg_out = cfg.execute(env)
        for key, value in ast_out.items():
            assert cfg_out[key] == value

    def test_render(self):
        text = build_cfg(parse_program(GCD)).render()
        assert "B0:" in text and "branch" in text and "exit" in text


class TestBlockCompilation:
    def test_branch_condition_materialized(self):
        cfg = build_cfg(parse_program("while (a - b) { a = a - 1 }"))
        header = next(
            b for b in cfg.blocks.values() if isinstance(b.terminator, Branch)
        )
        tuples = compile_cfg_block(header)
        stores = tuples.final_stores()
        assert BRANCH_VAR in stores
        # the condition Sub feeding .branch must survive optimization
        assert any(t.opcode is Opcode.SUB for t in tuples)

    def test_all_final_stores_kept(self):
        cfg = build_cfg(parse_program("a = x + 1\nb = a * 2\na = b - 3"))
        tuples = compile_cfg_block(cfg.blocks[0])
        assert set(tuples.final_stores()) == {"a", "b"}


class TestFlowScheduling:
    def test_every_block_scheduled(self):
        flow = schedule_program(parse_program(BRANCHY), SchedulerConfig(n_pes=4))
        assert set(flow.results) == set(flow.cfg.blocks)
        assert flow.total_edges() > 0
        assert "blocks" in flow.describe()

    def test_boundary_barriers_counted(self):
        flow = schedule_program(parse_program(BRANCHY), SchedulerConfig(n_pes=4))
        inserted = sum(r.counts.barriers_final for r in flow.results.values())
        assert flow.total_barriers() == inserted + flow.n_blocks - 1

    def test_accepts_prebuilt_cfg(self):
        cfg = build_cfg(parse_program(GCD))
        flow = schedule_program(cfg, SchedulerConfig(n_pes=2))
        assert flow.cfg is cfg


class TestDynamicExecution:
    @pytest.mark.parametrize("env", [{"n": 0}, {"n": 1}, {"n": 7}])
    def test_values_match_reference(self, env):
        program = parse_program(BRANCHY)
        flow = schedule_program(program, SchedulerConfig(n_pes=4, seed=2))
        trace = execute_flow_schedule(flow, env, rng=3)
        reference = program.execute(env)
        final = trace.final_state()
        for key, value in reference.items():
            assert final[key] == value

    def test_total_time_within_path_bound(self):
        program = parse_program(BRANCHY)
        flow = schedule_program(program, SchedulerConfig(n_pes=4, seed=2))
        for rng in range(4):
            trace = execute_flow_schedule(flow, {"n": 5}, rng=rng)
            bound = flow.static_path_bound(trace.block_sequence)
            assert bound.lo <= trace.total_time <= bound.hi

    def test_extreme_samplers_hit_path_bounds(self):
        program = parse_program(GCD)
        flow = schedule_program(program, SchedulerConfig(n_pes=2, seed=1))
        env = {"a": 21, "b": 14}
        lo = execute_flow_schedule(flow, env, sampler=MinSampler())
        hi = execute_flow_schedule(flow, env, sampler=MaxSampler())
        assert lo.block_sequence == hi.block_sequence  # values are timing-free
        bound = flow.static_path_bound(lo.block_sequence)
        assert lo.total_time == bound.lo
        assert hi.total_time == bound.hi

    def test_dbm_machine_kind(self):
        program = parse_program(GCD)
        flow = schedule_program(program, SchedulerConfig(n_pes=2, machine="dbm"))
        trace = execute_flow_schedule(flow, {"a": 10, "b": 4}, rng=0)
        assert trace.final_state()["g"] == 2

    def test_runaway_loop_guard(self):
        program = parse_program("while (1 | x) { y = y + 1 }")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        with pytest.raises(BlockLimitExceeded):
            execute_flow_schedule(flow, {"x": 0, "y": 0}, max_blocks=20)

    def test_describe(self):
        program = parse_program(GCD)
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        trace = execute_flow_schedule(flow, {"a": 8, "b": 6}, rng=1)
        assert "B0" in trace.describe()


# -- property: the whole flow stack preserves semantics --------------------

@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=12),
    m=st.integers(min_value=0, max_value=40),
    seed=st.integers(0, 99),
)
def test_flow_pipeline_preserves_semantics(n, m, seed):
    program = parse_program(
        """
        s = 0
        k = n
        while (k) {
            if (k & 1) { s = s + k * k } else { s = s | k }
            k = k - 1
        }
        r = s % 97
        d = m / (n + 1)
        """
    )
    env = {"n": n, "m": m}
    reference = program.execute(env)
    flow = schedule_program(program, SchedulerConfig(n_pes=3, seed=seed))
    trace = execute_flow_schedule(flow, env, rng=seed)
    final = trace.final_state()
    for key, value in reference.items():
        assert final[key] == value
    bound = flow.static_path_bound(trace.block_sequence)
    assert bound.lo <= trace.total_time <= bound.hi
