"""Edge cases of the control-flow extension."""

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.flow.ast import FlowProgram
from repro.flow.cfg import build_cfg
from repro.flow.executor import execute_flow_schedule
from repro.flow.parser import parse_program
from repro.flow.schedule import BRANCH_VAR, schedule_program
from repro.ir.interp import UndefinedVariableError


class TestDegenerateShapes:
    def test_empty_program(self):
        program = parse_program("")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        trace = execute_flow_schedule(flow, {})
        assert trace.n_dynamic_blocks == 1
        assert trace.total_time == 0
        assert trace.final_state() == {}

    def test_constant_condition_if(self):
        program = parse_program("if (1 + 1) { a = 2 + 3 } else { a = 0 + 0 }")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        trace = execute_flow_schedule(flow, {})
        assert trace.final_state()["a"] == 5

    def test_empty_then_branch_via_else_only_effect(self):
        program = parse_program("a = 0\nif (x) { a = 1 + 0 }")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        taken = execute_flow_schedule(flow, {"x": 1})
        skipped = execute_flow_schedule(flow, {"x": 0})
        assert taken.final_state()["a"] == 1
        assert skipped.final_state()["a"] == 0

    def test_nested_loops(self):
        program = parse_program(
            """
            total = 0
            i = 3
            while (i) {
                j = 2
                while (j) {
                    total = total + i * j
                    j = j - 1
                }
                i = i - 1
            }
            """
        )
        flow = schedule_program(program, SchedulerConfig(n_pes=3, seed=4))
        trace = execute_flow_schedule(flow, {}, rng=1)
        expected = sum(i * j for i in (1, 2, 3) for j in (1, 2))
        assert trace.final_state()["total"] == expected

    def test_uninitialized_read_raises(self):
        program = parse_program("a = x + 1")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        with pytest.raises(UndefinedVariableError):
            execute_flow_schedule(flow, {})

    def test_branch_var_never_leaks(self):
        program = parse_program("while (n) { n = n - 1 }")
        flow = schedule_program(program, SchedulerConfig(n_pes=2))
        trace = execute_flow_schedule(flow, {"n": 2})
        assert BRANCH_VAR not in trace.final_state()
        assert BRANCH_VAR in trace.memory  # but it exists internally

    def test_condition_uses_value_computed_in_same_block(self):
        program = parse_program(
            "t = a * a\nwhile (t - 16) { t = t - 1 }\ndone = t + 0"
        )
        flow = schedule_program(program, SchedulerConfig(n_pes=2, seed=2))
        trace = execute_flow_schedule(flow, {"a": 5}, rng=0)
        assert trace.final_state()["done"] == 16

    def test_seed_changes_schedule_not_values(self):
        program = parse_program(
            "x = a + b\ny = a - b\nz = x * y\nif (z) { w = z % 7 } else { w = 0 + 0 }"
        )
        env = {"a": 9, "b": 4}
        finals = []
        for seed in (1, 2, 3):
            flow = schedule_program(program, SchedulerConfig(n_pes=3, seed=seed))
            trace = execute_flow_schedule(flow, env, rng=seed)
            finals.append(tuple(sorted(trace.final_state().items())))
        assert len(set(finals)) == 1


class TestCfgDeterminism:
    def test_block_numbering_stable(self):
        src = "a = 1 + 2\nwhile (a) { a = a - 1 }\nb = a + 5"
        cfg1 = build_cfg(parse_program(src))
        cfg2 = build_cfg(parse_program(src))
        assert cfg1.render() == cfg2.render()

    def test_source_independent_of_formatting(self):
        compact = parse_program("if (x) { y = 1 + 1 } else { y = 2 + 2 }")
        spaced = parse_program(
            "if (x)\n{\n    y = 1 + 1\n}\nelse\n{\n    y = 2 + 2\n}"
        )
        assert build_cfg(compact).render() == build_cfg(spaced).render()
