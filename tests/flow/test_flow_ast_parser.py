"""Tests for the structured-language AST and parser (flow extension)."""

import pytest

from repro.flow.ast import FlowProgram, IfStmt, LoopLimitExceeded, WhileStmt
from repro.flow.parser import parse_program
from repro.ir.ast import Assign
from repro.ir.parser import ParseError

COUNTDOWN = """
total = 0
while (n) {
    total = total + n
    n = n - 1
}
"""


class TestParser:
    def test_flat_program_matches_base_language(self):
        program = parse_program("a = x + 1\nb = a * 2")
        assert all(isinstance(s, Assign) for s in program)
        assert len(program) == 2

    def test_if_without_else(self):
        program = parse_program("if (x) { y = 1 + 1 }")
        stmt = program.statements[0]
        assert isinstance(stmt, IfStmt)
        assert len(stmt.then_body) == 1 and stmt.else_body == ()

    def test_if_else(self):
        program = parse_program("if (x - 1) { y = 2 + 0 } else { y = 3 + 0 }")
        stmt = program.statements[0]
        assert isinstance(stmt, IfStmt) and len(stmt.else_body) == 1

    def test_while(self):
        program = parse_program(COUNTDOWN)
        stmt = program.statements[1]
        assert isinstance(stmt, WhileStmt) and len(stmt.body) == 2

    def test_nesting(self):
        program = parse_program(
            "while (a) { if (b) { c = c + 1 } else { while (d) { d = d - 1 } } a = a - 1 }"
        )
        loop = program.statements[0]
        inner_if = loop.body[0]
        assert isinstance(inner_if.else_body[0], WhileStmt)

    def test_braces_on_same_line_or_not(self):
        one = parse_program("if (x) { y = 1 + 1 }")
        other = parse_program("if (x)\n{\ny = 1 + 1\n}")
        assert one == other

    def test_keyword_not_assignable(self):
        with pytest.raises(ParseError):
            parse_program("while = 3 + 1")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("if (x) { y = 1 + 1")

    def test_missing_cond_parens(self):
        with pytest.raises(ParseError):
            parse_program("if x { y = 1 + 1 }")

    def test_source_round_trip(self):
        program = parse_program(COUNTDOWN)
        assert parse_program(program.source()) == program

    def test_nested_source_round_trip(self):
        src = "if (a) { b = 1 + 2 } else { while (c) { c = c - 1 } }"
        program = parse_program(src)
        assert parse_program(program.source()) == program


class TestSemantics:
    def test_countdown(self):
        program = parse_program(COUNTDOWN)
        out = program.execute({"n": 5})
        assert out["total"] == 15 and out["n"] == 0

    def test_if_both_arms(self):
        program = parse_program("if (x) { y = 1 + 0 } else { y = 2 + 0 }")
        assert program.execute({"x": 7})["y"] == 1
        assert program.execute({"x": 0})["y"] == 2

    def test_loop_never_entered(self):
        program = parse_program("s = 0\nwhile (0 & x) { s = s + 1 }")
        assert program.execute({"x": 9})["s"] == 0

    def test_loop_limit_guard(self):
        program = parse_program("while (1 | x) { y = y + 1 }")
        with pytest.raises(LoopLimitExceeded):
            program.execute({"x": 0, "y": 0}, max_steps=100)

    def test_variables_collects_everything(self):
        program = parse_program(COUNTDOWN)
        assert set(program.variables()) == {"total", "n"}

    def test_euclid_gcd(self):
        program = parse_program(
            """
            while (b) {
                t = a % b
                a = b
                b = t
            }
            """
        )
        out = program.execute({"a": 48, "b": 36})
        assert out["a"] == 12
