"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def block_file(tmp_path):
    path = tmp_path / "block.src"
    path.write_text("a = x + y\nb = a * 3\nc = b - x\nd = c % 7\n")
    return str(path)


class TestGenerate:
    def test_emits_parseable_source(self, capsys):
        assert main(["generate", "-s", "8", "-v", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        from repro.ir.parser import parse_block

        assert len(parse_block(out)) == 8

    def test_deterministic(self, capsys):
        main(["generate", "--seed", "5"])
        first = capsys.readouterr().out
        main(["generate", "--seed", "5"])
        assert capsys.readouterr().out == first


class TestCompile:
    def test_shows_tuples_and_dag(self, capsys, block_file):
        assert main(["compile", block_file]) == 0
        out = capsys.readouterr().out
        assert "raw tuples" in out
        assert "optimized tuples" in out
        assert "critical path" in out

    def test_no_optimize(self, capsys, block_file):
        main(["compile", block_file, "--no-optimize"])
        out = capsys.readouterr().out
        assert "optimized tuples" not in out


class TestSchedule:
    def test_quiet_prints_fractions(self, capsys, block_file):
        assert main(["schedule", block_file, "--pes", "4", "-q"]) == 0
        out = capsys.readouterr().out
        assert "serialized" in out and "makespan" in out

    def test_full_output_has_embedding(self, capsys, block_file):
        main(["schedule", block_file, "--pes", "4"])
        out = capsys.readouterr().out
        assert "barrier embedding" in out and "barrier dag" in out

    def test_dbm_machine(self, capsys, block_file):
        assert main(["schedule", block_file, "--machine", "dbm", "-q"]) == 0
        assert "DBM" in capsys.readouterr().out

    def test_optimal_insertion(self, capsys, block_file):
        assert main(["schedule", block_file, "--insertion", "optimal", "-q"]) == 0


class TestSimulate:
    def test_runs_and_validates(self, capsys, block_file):
        assert main(["simulate", block_file, "--pes", "4", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "run 0" in out and "run 1" in out and "fires:" in out

    def test_samplers(self, capsys, block_file):
        for sampler in ("min", "max", "bimodal", "uniform"):
            assert main(
                ["simulate", block_file, "--sampler", sampler, "-q"]
            ) == 0

    def test_quiet_mode(self, capsys, block_file):
        main(["simulate", block_file, "-q"])
        out = capsys.readouterr().out
        assert "SBM run" in out


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_fig15_small(self, capsys):
        assert main(["experiment", "fig15", "--count", "3"]) == 0
        assert "Figure 15" in capsys.readouterr().out

    def test_secondary_small(self, capsys):
        assert main(["experiment", "secondary", "--count", "5"]) == 0
        assert "28%" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])


class TestFlow:
    def test_flow_program_runs(self, capsys, tmp_path):
        path = tmp_path / "prog.src"
        path.write_text(
            "s = 0\nwhile (n) { s = s + n\n n = n - 1 }\n"
        )
        assert main(["flow", str(path), "-i", "n=4", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "s = 10" in out and "run 1" in out and "path bound" in out

    def test_flow_bad_input_binding(self, tmp_path):
        path = tmp_path / "prog.src"
        path.write_text("a = 1 + 1")
        with pytest.raises(SystemExit):
            main(["flow", str(path), "-i", "oops"])

    def test_flow_negative_input(self, capsys, tmp_path):
        path = tmp_path / "prog.src"
        path.write_text("b = a * a")
        assert main(["flow", str(path), "-i", "a=-3"]) == 0
        assert "b = 9" in capsys.readouterr().out


class TestArchive:
    def test_archive_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "corpus.jsonl"
        assert main(
            ["archive", str(out), "-s", "15", "-v", "5", "--count", "4"]
        ) == 0
        text = capsys.readouterr().out
        assert "wrote 4 records" in text and "archive:" in text
        from repro.experiments.archive import load_archive

        header, records = load_archive(out)
        assert header["scheduler"]["n_pes"] == 8
        assert len(records) == 4


class TestExtensionExperiments:
    @pytest.mark.parametrize(
        "name", ["barriercost", "flowoverhead", "kernels", "syncelim"]
    )
    def test_extension_experiments_run(self, capsys, name):
        assert main(["experiment", name, "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3


class TestDot:
    def test_emits_both_graphs(self, capsys, block_file):
        assert main(["dot", block_file, "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("digraph") == 2
        assert '"b0"' in out

    def test_dag_only(self, capsys, block_file):
        assert main(["dot", block_file, "--what", "dag"]) == 0
        out = capsys.readouterr().out
        assert out.count("digraph") == 1 and "Load" in out


class TestFaults:
    def test_campaign_on_file(self, capsys, block_file):
        assert main(["faults", block_file, "--runs", "5", "--epsilon", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "static robustness margin" in out
        assert "fault campaign (as scheduled)" in out
        assert "epsilon-hardening" in out
        assert "fault campaign (hardened)" in out

    def test_reference_command_finds_and_fixes_race(self, capsys):
        # The reference invocation of docs/robustness.md: on the
        # auto-generated block, eps = 0.25 must surface at least one
        # race, and the hardened schedule must show none.
        assert main(["faults", "--epsilon", "0.25", "--runs", "50", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "RACES" in out
        assert "proof broken" in out and "slack" in out
        scheduled_part, hardened_part = out.split("== fault campaign (hardened) ==")
        assert "RACES" in scheduled_part
        assert "no races observed" in hardened_part

    def test_epsilon_zero_never_races(self, capsys):
        for machine in ("sbm", "dbm"):
            assert main(
                ["faults", "--epsilon", "0", "--runs", "10", "--machine", machine]
            ) == 0
            out = capsys.readouterr().out
            assert "RACES" not in out
            assert "epsilon-hardening" not in out  # null plan: nothing to harden

    def test_no_harden_skips_second_campaign(self, capsys, block_file):
        assert main(["faults", block_file, "--runs", "3", "--no-harden"]) == 0
        assert "hardened" not in capsys.readouterr().out

    def test_fault_modes_accepted(self, capsys, block_file):
        assert main(
            [
                "faults", block_file, "--runs", "3", "--epsilon", "0.2",
                "--p-overrun", "0.5", "--spike-prob", "0.2", "--spike", "4",
                "--stragglers", "0,2", "--straggler-factor", "3",
                "--jitter", "2", "--no-directed",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "stragglers" in out and "jitter" in out

    def test_bad_stragglers_entry(self, capsys, block_file):
        assert main(["faults", block_file, "--stragglers", "zero"]) == 2
        assert "repro-sbm: error:" in capsys.readouterr().err

    def test_stragglers_out_of_range(self, capsys, block_file):
        assert main(["faults", block_file, "--pes", "2", "--stragglers", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_bad_epsilon_rejected(self, capsys, block_file):
        assert main(["faults", block_file, "--epsilon", "-1"]) == 2
        assert "epsilon" in capsys.readouterr().err


class TestBadInputDiagnostics:
    """Bad inputs exit with status 2 and one line on stderr -- never a
    traceback (the robustness satellite of the fault-injection PR)."""

    def test_missing_source_file(self, capsys):
        assert main(["schedule", "/no/such/file.src"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert "file.src" in err

    def test_parse_error_is_one_line(self, capsys, tmp_path):
        path = tmp_path / "bad.src"
        path.write_text("a = b +\n")
        assert main(["schedule", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_file_for_simulate_and_compile(self, capsys):
        assert main(["simulate", "/no/such/file.src"]) == 2
        assert main(["compile", "/no/such/file.src"]) == 2
        capsys.readouterr()

    @pytest.mark.parametrize("value", ["0", "-2", "abc"])
    def test_invalid_pes_exits_two(self, value, block_file):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", block_file, "--pes", value])
        assert exc.value.code == 2

    def test_invalid_seed_exits_two(self, block_file):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", block_file, "--seed", "abc"])
        assert exc.value.code == 2

    def test_invalid_runs_for_faults(self, block_file):
        with pytest.raises(SystemExit) as exc:
            main(["faults", block_file, "--runs", "0"])
        assert exc.value.code == 2


class TestRobustnessExperiment:
    def test_registered_and_runs(self, capsys):
        assert main(["experiment", "robustness", "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "fault-tolerance curve" in out
        assert "hardened-racy" in out


class TestExplain:
    def test_attributes_barriers_and_assignments(self, capsys, block_file):
        assert main(["explain", block_file, "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "assignments:" in out
        assert "-> PE" in out
        assert "merges:" in out
        # Every inserted barrier is pinned to the edge that forced it.
        if "barriers: none inserted" not in out:
            assert "forced by" in out and "slack" in out

    def test_json_output(self, capsys, block_file):
        import json

        assert main(["explain", block_file, "--pes", "4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {
            "summary", "assignments", "barriers", "merges", "demotions",
            "kernels",
        }
        assert doc["kernels"]["resolved"] in ("python", "numpy")
        for barrier in doc["barriers"]:
            assert barrier["attributed"]
            for d in barrier["decisions"]:
                assert d["slack"] < 0

    def test_missing_file_exits_two(self, capsys):
        assert main(["explain", "/no/such/file.src"]) == 2
        assert capsys.readouterr().err.startswith("repro-sbm: error:")


class TestTraceFlag:
    def test_simulate_writes_chrome_trace(self, capsys, tmp_path, block_file):
        import json

        trace = tmp_path / "trace.json"
        assert main(["simulate", block_file, "-q", "--trace", str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        # All five pipeline stages appear in one simulate trace.
        assert {"generate", "schedule", "insert", "merge", "simulate"} <= names
        for e in doc["traceEvents"]:
            assert e["ph"] in ("X", "i")
            assert {"name", "ts", "pid", "tid"} <= set(e)

    def test_schedule_writes_jsonl(self, capsys, tmp_path, block_file):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["schedule", block_file, "-q", "--trace", str(trace)]) == 0
        capsys.readouterr()
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert "span" in kinds

    def test_trace_does_not_change_stdout(self, capsys, tmp_path, block_file):
        assert main(["schedule", block_file, "-q"]) == 0
        plain = capsys.readouterr().out
        trace = tmp_path / "t.json"
        assert main(["schedule", block_file, "-q", "--trace", str(trace)]) == 0
        assert capsys.readouterr().out == plain

    def test_unwritable_trace_path_exits_two(self, capsys, block_file):
        assert main(
            ["schedule", block_file, "-q", "--trace", "/no/such/dir/t.json"]
        ) == 2
        assert capsys.readouterr().err.startswith("repro-sbm: error:")


class TestVerbosityFlags:
    def test_verbose_logs_trace_write(self, capsys, tmp_path, block_file):
        trace = tmp_path / "t.json"
        assert main(
            ["-v", "schedule", block_file, "-q", "--trace", str(trace)]
        ) == 0
        err = capsys.readouterr().err
        assert "repro.cli" in err and "wrote trace" in err

    def test_default_is_quiet_about_info(self, capsys, tmp_path, block_file):
        trace = tmp_path / "t.json"
        assert main(["schedule", block_file, "-q", "--trace", str(trace)]) == 0
        assert "wrote trace" not in capsys.readouterr().err

    def test_global_quiet_suppresses_warnings(self, capsys, block_file):
        from repro.obs.logging import get_logger

        assert main(["-q", "schedule", block_file, "-q"]) == 0
        capsys.readouterr()
        get_logger("cli").warning("should be hidden")
        assert "should be hidden" not in capsys.readouterr().err
        # Restore the default level for the rest of the suite.
        assert main(["schedule", block_file, "-q"]) == 0
        capsys.readouterr()

    def test_error_contract_unchanged_under_quiet(self, capsys):
        assert main(["-q", "schedule", "/no/such/file.src"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert len(err.strip().splitlines()) == 1


@pytest.fixture
def big_block_file(tmp_path, capsys):
    """A generated 25-statement block -- large enough that SBM merging
    actually fires (the small hand block produces no merge candidates)."""
    main(["generate", "-s", "25", "--seed", "7"])
    path = tmp_path / "big.src"
    path.write_text(capsys.readouterr().out)
    return str(path)


class TestSimulateRuntimeAnalytics:
    def test_summary_printed(self, capsys, block_file):
        assert main(["simulate", block_file, "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "runtime analysis" in out
        assert "mean utilization" in out
        assert "executed critical path" in out

    def test_gantt_rows_show_utilization(self, capsys, block_file):
        main(["simulate", block_file, "--pes", "4"])
        out = capsys.readouterr().out
        assert "% busy" in out

    def test_timeline_written(self, capsys, tmp_path, block_file):
        import json

        timeline = tmp_path / "machine.json"
        assert main(
            ["simulate", block_file, "-q", "--timeline", str(timeline)]
        ) == 0
        doc = json.loads(timeline.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "M", "s", "f"} <= phases
        assert doc["otherData"]["machine"] == "sbm"


class TestRecordAndDiff:
    def _record(self, capsys, source, path, merge):
        assert main(
            ["schedule", source, "--pes", "4", "-q",
             "--merge", merge, "--record", str(path), "--label", merge]
        ) == 0
        capsys.readouterr()

    def test_identical_records_diff_clean(self, capsys, tmp_path, block_file):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._record(capsys, block_file, a, "auto")
        self._record(capsys, block_file, b, "auto")
        assert main(["diff", str(a), str(b)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_merge_on_off_diff_names_decision(
        self, capsys, tmp_path, big_block_file
    ):
        """The acceptance scenario: two runs differing only in --merge
        diff to a localized divergence naming the merge decision."""
        a, b = tmp_path / "on.json", tmp_path / "off.json"
        self._record(capsys, big_block_file, a, "on")
        self._record(capsys, big_block_file, b, "off")
        assert main(["diff", str(a), str(b)]) == 1  # diverged
        out = capsys.readouterr().out
        assert "first divergence: layer" in out
        assert "merging_enabled: True -> False" in out
        assert "absorbed into" in out  # the named merge decision

    def test_diff_json_mode(self, capsys, tmp_path, block_file):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._record(capsys, block_file, a, "auto")
        self._record(capsys, block_file, b, "auto")
        assert main(["diff", str(a), str(b), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["identical"] is True

    def test_diff_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["diff", "/no/a.json", "/no/b.json"]) == 2
        assert "repro-sbm: error:" in capsys.readouterr().err

    def test_diff_bad_format_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "nope"}')
        assert main(["diff", str(bad), str(bad)]) == 2
        assert "unsupported run-record format" in capsys.readouterr().err

    def test_simulate_record_carries_trace(
        self, capsys, tmp_path, block_file
    ):
        import json

        path = tmp_path / "run.json"
        assert main(
            ["simulate", block_file, "-q", "--record", str(path)]
        ) == 0
        record = json.loads(path.read_text())
        assert record["trace"]["makespan"] > 0
        assert record["analysis"]["pes"]


class TestExplainRuntime:
    def test_runtime_section_cross_links_provenance(
        self, capsys, big_block_file
    ):
        assert main(
            ["explain", big_block_file, "--pes", "4", "--runtime"]
        ) == 0
        out = capsys.readouterr().out
        assert "runtime analysis" in out
        assert "critical b" in out  # each critical barrier is explained

    def test_runtime_json_mode(self, capsys, block_file):
        import json

        assert main(["explain", block_file, "--runtime", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["runtime"]["makespan"] > 0
        assert "critical_path" in data["runtime"]


class TestWatchCommand:
    def _series(self, tmp_path, *walls):
        import json

        path = tmp_path / "traj.jsonl"
        entries = []
        for w in walls:
            entries.append(json.dumps({
                "wall_s": w,
                "stages": {"schedule": w / 2},
                "results_digest": "d",
                "points": [],
            }))
        path.write_text("\n".join(entries) + "\n")
        return str(path)

    def test_ok_series_exits_zero(self, capsys, tmp_path):
        path = self._series(tmp_path, 10.0, 10.0, 10.0)
        assert main(["watch", "--trajectory", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one_and_writes_report(self, capsys, tmp_path):
        path = self._series(tmp_path, 10.0, 10.0, 40.0)
        report = tmp_path / "report.md"
        assert main(
            ["watch", "--trajectory", path, "--output", str(report)]
        ) == 1
        assert "FLAGGED" in capsys.readouterr().out
        assert "REGRESSION" in report.read_text()

    def test_empty_series_is_ok(self, capsys, tmp_path):
        assert main(
            ["watch", "--trajectory", str(tmp_path / "none.jsonl")]
        ) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_json_mode(self, capsys, tmp_path):
        import json

        path = self._series(tmp_path, 10.0, 10.0)
        assert main(["watch", "--trajectory", path, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_factor_flag(self, capsys, tmp_path):
        path = self._series(tmp_path, 10.0, 10.0, 18.0)
        assert main(["watch", "--trajectory", path]) == 0
        capsys.readouterr()
        assert main(["watch", "--trajectory", path, "--factor", "1.1"]) == 1

    def test_bad_line_exits_two(self, capsys, tmp_path):
        path = tmp_path / "traj.jsonl"
        path.write_text("not json\n")
        assert main(["watch", "--trajectory", str(path)]) == 2
        assert "bad trajectory line" in capsys.readouterr().err


class TestPerfTrajectory:
    def test_perf_appends_trajectory_entry(self, capsys, tmp_path):
        import json

        traj = tmp_path / "traj.jsonl"
        assert main(
            ["perf", "--count", "2", "--output", "-",
             "--trajectory", str(traj), "--label", "t"]
        ) == 0
        assert "appended trajectory entry" in capsys.readouterr().out
        entries = [json.loads(l) for l in traj.read_text().splitlines()]
        assert len(entries) == 1
        assert entries[0]["label"] == "t"
        assert entries[0]["wall_s"] > 0

    def test_no_trajectory_opt_out(self, capsys, tmp_path):
        traj = tmp_path / "traj.jsonl"
        assert main(
            ["perf", "--count", "2", "--output", "-",
             "--trajectory", str(traj), "--no-trajectory"]
        ) == 0
        assert "appended" not in capsys.readouterr().out
        assert not traj.exists()


class TestHybridCLI:
    def test_schedule_mode_hybrid_prints_plan(self, capsys):
        assert main(
            ["schedule", "--mode", "hybrid", "--hybrid-epsilon", "0.25",
             "--pes", "4", "--seed", "7", "-", ]
        ) == 2  # stdin is empty under capsys -> parse error, not a traceback
        capsys.readouterr()

    def test_schedule_hybrid_on_file(self, capsys, block_file):
        assert main(
            ["schedule", block_file, "--mode", "hybrid", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "hybrid demotion plan" in out
        assert "budget eps=" in out

    def test_simulate_hybrid_reports_guard_waits(self, capsys, block_file):
        assert main(
            ["simulate", block_file, "--mode", "hybrid", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "hybrid plan" in out
        assert "data-guard waits" in out

    def test_faults_mode_hybrid_adds_campaign_section(self, capsys):
        assert main(
            ["faults", "--epsilon", "0.25", "--runs", "20", "--seed", "7",
             "--mode", "hybrid"]
        ) == 0
        out = capsys.readouterr().out
        assert "== hybrid demotion plan ==" in out
        assert "== fault campaign (hybrid) ==" in out
        # The reference racy case: the static campaign races, the hybrid
        # campaign recovers every race as a guard wait.
        static_part = out.split("== hybrid demotion plan ==")[0]
        hybrid_part = out.split("== fault campaign (hybrid) ==")[1].split(
            "== epsilon-hardening =="
        )[0]
        assert "RACES" in static_part
        assert "no races observed" in hybrid_part
        assert "recovered wait(s)" in hybrid_part

    def test_faults_hybrid_explicit_budget(self, capsys, block_file):
        assert main(
            ["faults", block_file, "--runs", "3", "--mode", "hybrid",
             "--hybrid-epsilon", "0.5", "--no-harden"]
        ) == 0
        assert "budget eps=0.5" in capsys.readouterr().out

    def test_faults_jobs_flag_accepted(self, capsys):
        assert main(
            ["faults", "--epsilon", "0.25", "--runs", "8", "--seed", "7",
             "--jobs", "2", "--no-harden"]
        ) == 0
        capsys.readouterr()

    def test_hybrid_experiment_registered(self, capsys):
        assert main(
            ["experiment", "hybrid", "--count", "4", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "hybrid robustness study" in out
        assert "static" in out and "hardened" in out


class TestFaultPlanInputHardening:
    """Malformed fault plans exit 2 with a one-line diagnostic (satellite)."""

    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["--epsilon", "-0.5"], "epsilon"),
            (["--p-overrun", "1.5"], "p_overrun"),
            (["--spike-prob", "-0.2"], "spike_prob"),
            (["--straggler-factor", "0.5"], "straggler_factor"),
            (["--stragglers", "one"], "--stragglers"),
            (["--stragglers", "9", "--pes", "4"], "out of range"),
            (["--spike-window", "abc"], "--spike-window"),
            (["--spike-window", "5"], "--spike-window"),
            (["--spike-window", "7:3"], "0 <= start < end"),
            (["--spike-window", "3:3"], "0 <= start < end"),
            (["--spike-window", "0:9", "--spike-window", "4:12"], "overlap"),
            (["--hybrid-epsilon", "-1", "--mode", "hybrid"], "budget"),
        ],
    )
    def test_malformed_plan_exits_two(self, capsys, block_file, argv, needle):
        assert main(["faults", block_file, "--runs", "2", *argv]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert len(err.strip().splitlines()) == 1
        assert needle in err


class TestProfileFlag:
    def test_schedule_writes_folded_stacks(self, capsys, tmp_path, block_file):
        folded = tmp_path / "run.folded"
        assert main(
            ["schedule", block_file, "-q", "--profile", str(folded)]
        ) == 0
        err = capsys.readouterr().err
        lines = folded.read_text().splitlines()
        assert lines, "a scheduled block must produce at least one stack"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) >= 1
        assert any("schedule" in line for line in lines)
        # The collected accounting surfaces on stderr for non-perf runs.
        assert "profile: peak rss" in err

    def test_profile_does_not_change_stdout(self, capsys, tmp_path, block_file):
        assert main(["schedule", block_file, "-q"]) == 0
        plain = capsys.readouterr().out
        folded = tmp_path / "run.folded"
        assert main(
            ["schedule", block_file, "-q", "--profile", str(folded)]
        ) == 0
        assert capsys.readouterr().out == plain

    def test_trace_and_profile_share_one_run(self, capsys, tmp_path, block_file):
        import json

        trace = tmp_path / "t.json"
        folded = tmp_path / "t.folded"
        assert main(
            ["simulate", block_file, "-q",
             "--trace", str(trace), "--profile", str(folded)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert folded.read_text().splitlines()

    def test_unwritable_profile_path_exits_two(self, capsys, block_file):
        assert main(
            ["schedule", block_file, "-q", "--profile", "/no/such/dir/p.folded"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert len(err.strip().splitlines()) == 1

    def test_directory_profile_path_exits_two(self, capsys, tmp_path, block_file):
        assert main(
            ["schedule", block_file, "-q", "--profile", str(tmp_path)]
        ) == 2
        assert "is a directory" in capsys.readouterr().err

    def test_perf_profile_and_report_block(self, capsys, tmp_path):
        folded = tmp_path / "perf.folded"
        assert main(
            ["perf", "--count", "2", "--output", "-", "--no-trajectory",
             "--profile", str(folded)]
        ) == 0
        out = capsys.readouterr().out
        assert "profile: peak rss" in out  # the report's own profile block
        assert folded.read_text().splitlines()

    def test_experiment_profile(self, capsys, tmp_path):
        folded = tmp_path / "exp.folded"
        assert main(
            ["experiment", "fig15", "--count", "2", "--no-cache",
             "--profile", str(folded)]
        ) == 0
        err = capsys.readouterr().err
        assert folded.read_text().splitlines()
        assert "profile: peak rss" in err


class TestLiveFlag:
    def test_live_file_streams_jsonl_heartbeats(self, capsys, tmp_path):
        import json

        live = tmp_path / "live.jsonl"
        assert main(
            ["perf", "--count", "2", "--output", "-", "--no-trajectory",
             "--live", str(live)]
        ) == 0
        capsys.readouterr()
        beats = [json.loads(l) for l in live.read_text().splitlines()]
        assert beats, "a perf run must emit at least the final heartbeat"
        assert all(b["event"] == "progress" for b in beats)
        final = beats[-1]
        assert final["final"] is True
        assert final["done"] == final["total"] > 0
        assert final["cases_per_s"] > 0

    def test_bare_live_without_tty_falls_back_to_jsonl(self, capsys, tmp_path):
        import json

        # Under capsys stderr is not a terminal: the status line degrades
        # to machine-readable heartbeats on stderr, with a warning.
        assert main(
            ["perf", "--count", "2",
             "--output", str(tmp_path / "b.json"), "--no-trajectory",
             "--live"]
        ) == 0
        err = capsys.readouterr().err
        assert "not a terminal" in err
        beats = [
            json.loads(line)
            for line in err.splitlines()
            if line.startswith("{")
        ]
        assert beats and beats[-1]["final"] is True

    def test_bare_live_conflicts_with_stdout_json(self, capsys):
        assert main(
            ["perf", "--count", "1", "--output", "-", "--no-trajectory",
             "--live"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-sbm: error:")
        assert "--live" in err

    def test_unwritable_live_path_exits_two(self, capsys):
        assert main(
            ["perf", "--count", "1", "--output", "-", "--no-trajectory",
             "--live", "/no/such/dir/live.jsonl"]
        ) == 2
        assert capsys.readouterr().err.startswith("repro-sbm: error:")


class TestWatchExplain:
    def _series_with_profiles(self, tmp_path, slow=False):
        import json

        entries = []
        for i in range(4):
            entries.append({
                "wall_s": 10.0,
                "preset": "default",
                "count": 25,
                "cases_per_s": 5.0,
                "stages": {"schedule": 4.0, "cpu": {"schedule": 3.8}},
                "results_digest": "d",
                "points": [],
                "profile": {
                    "kernels": {
                        "paths.python": {
                            "count": 50, "wall_s": 1.0,
                            "cpu_s": 1.0, "max_s": 0.05,
                        }
                    },
                    "gc": {"pauses": 1, "pause_s": 0.05, "collected": 5},
                    "peak_rss": 1 << 20,
                },
            })
        if slow:
            entries[-1]["wall_s"] = 16.0
            entries[-1]["stages"] = {"schedule": 9.0, "cpu": {"schedule": 4.0}}
            entries[-1]["profile"]["kernels"]["paths.python"]["wall_s"] = 4.0
        path = tmp_path / "traj.jsonl"
        path.write_text(
            "\n".join(json.dumps(e) for e in entries) + "\n"
        )
        return str(path)

    def test_explain_names_regressed_stage_and_kernel(self, capsys, tmp_path):
        path = self._series_with_profiles(tmp_path, slow=True)
        main(["watch", "--trajectory", path, "--explain"])
        out = capsys.readouterr().out
        assert "explain:" in out
        # The injected regression: schedule stage first, kernel named too.
        assert "1. stage schedule: +5.000s" in out
        assert "kernel paths.python" in out
        assert "stall" in out  # wall grew, cpu flat -> attribution note

    def test_explain_json_block(self, capsys, tmp_path):
        import json

        path = self._series_with_profiles(tmp_path, slow=True)
        main(["watch", "--trajectory", path, "--explain", "--json"])
        data = json.loads(capsys.readouterr().out)
        causes = data["explain"]["causes"]
        assert causes[0]["kind"] == "stage"
        assert causes[0]["name"] == "schedule"

    def test_explain_markdown_artifact(self, capsys, tmp_path):
        path = self._series_with_profiles(tmp_path, slow=True)
        report = tmp_path / "report.md"
        main(["watch", "--trajectory", path, "--explain",
              "--output", str(report)])
        capsys.readouterr()
        md = report.read_text()
        assert "# Perf-trajectory watchdog" in md
        assert "## Regression attribution" in md
        assert "`schedule`" in md

    def test_without_flag_no_explain_output(self, capsys, tmp_path):
        path = self._series_with_profiles(tmp_path, slow=True)
        main(["watch", "--trajectory", path])
        assert "explain:" not in capsys.readouterr().out

    def test_steady_series_explains_nothing(self, capsys, tmp_path):
        path = self._series_with_profiles(tmp_path, slow=False)
        assert main(["watch", "--trajectory", path, "--explain"]) == 0
        assert "nothing regressed" in capsys.readouterr().out
