"""The metrics registry: counters, histograms, and worker merging."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    HistogramStat,
    MetricsRegistry,
    add_to_current,
    collect_metrics,
    current_registry,
    inc,
    observe,
)


class TestRegistry:
    def test_noop_without_registry(self):
        assert current_registry() is None
        inc("scheduler.barriers_inserted")
        observe("views.refire_cone", 3)

    def test_counters_and_histograms(self):
        with collect_metrics() as m:
            inc("a", 2)
            inc("a")
            observe("h", 1.0)
            observe("h", 3.0)
        assert m.counter("a") == 3
        assert m.counter("missing") == 0
        h = m.histograms["h"]
        assert (h.count, h.total, h.min, h.max) == (2, 4.0, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)

    def test_registries_nest_innermost_wins(self):
        with collect_metrics() as outer:
            with collect_metrics() as inner:
                inc("x")
        assert inner.counter("x") == 1
        assert outer.counter("x") == 0

    def test_dict_round_trip(self):
        with collect_metrics() as m:
            inc("c", 5)
            observe("h", 2.5)
        clone = MetricsRegistry.from_dict(m.as_dict())
        assert clone.as_dict() == m.as_dict()


def _registry(counters: dict, observations: dict) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name, n in counters.items():
        reg.inc(name, n)
    for name, values in observations.items():
        for value in values:
            reg.observe(name, value)
    return reg


class TestMerging:
    """Worker results must merge associatively and commutatively: the
    parallel driver consumes chunks in submission order, but nothing in
    the aggregate may depend on which worker finished first."""

    WORKERS = [
        ({"a": 1, "b": 2}, {"h": [1.0, 5.0]}),
        ({"a": 10}, {"h": [0.5], "g": [7.0]}),
        ({"b": 3, "c": 4}, {}),
    ]

    def test_merge_order_invariance(self):
        import itertools

        reference = None
        for perm in itertools.permutations(self.WORKERS):
            total = MetricsRegistry()
            for counters, obs in perm:
                total.merge_from(_registry(counters, obs))
            if reference is None:
                reference = total.as_dict()
            assert total.as_dict() == reference
        assert reference["counters"] == {"a": 11, "b": 5, "c": 4}
        assert reference["histograms"]["h"]["count"] == 3
        assert reference["histograms"]["h"]["min"] == 0.5
        assert reference["histograms"]["h"]["max"] == 5.0

    def test_merge_associativity(self):
        regs = [_registry(c, o) for c, o in self.WORKERS]
        left = MetricsRegistry()
        left.merge_from(regs[0])
        left.merge_from(regs[1])
        left.merge_from(regs[2])
        ab = MetricsRegistry()
        ab.merge_from(regs[1])
        ab.merge_from(regs[2])
        right = MetricsRegistry()
        right.merge_from(regs[0])
        right.merge_from(ab)
        assert left.as_dict() == right.as_dict()

    def test_merge_from_mapping_matches_registry(self):
        """Workers ship ``as_dict()`` payloads; merging the mapping must
        equal merging the live registry."""
        reg = _registry({"a": 2}, {"h": [4.0]})
        via_obj = MetricsRegistry()
        via_obj.merge_from(reg)
        via_map = MetricsRegistry()
        via_map.merge_from(reg.as_dict())
        assert via_obj.as_dict() == via_map.as_dict()

    def test_add_to_current(self):
        add_to_current({"counters": {"x": 1}, "histograms": {}})  # dropped
        with collect_metrics() as m:
            add_to_current(_registry({"x": 2}, {"h": [1.0]}).as_dict())
        assert m.counter("x") == 2
        assert m.histograms["h"].count == 1


class TestPipelineCounters:
    def _schedule_one(self):
        from repro.core.scheduler import SchedulerConfig, schedule_dag
        from repro.ir import compile_source
        from repro.synth.generator import GeneratorConfig, generate_block

        source = generate_block(GeneratorConfig(n_statements=18), 7).source()
        return schedule_dag(compile_source(source), SchedulerConfig(n_pes=4))

    def test_scheduler_counters_populated(self):
        with collect_metrics() as m:
            result = self._schedule_one()
        barriers = [b for b in result.schedule.barriers() if not b.is_initial]
        inserted = m.counter("scheduler.barriers_inserted")
        assert inserted >= len(barriers) > 0  # merges only remove barriers
        assert m.counter("views.dag.evolved") > 0
        assert m.counter("merge.verdict.recomputed") > 0

    def test_cross_check_outcomes_surfaced(self, monkeypatch):
        """Satellite: a REPRO_CHECK_INCREMENTAL run reports how much it
        verified (views checked / mismatches) through the obs registry
        instead of passing silently."""
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        with collect_metrics() as m:
            self._schedule_one()
        assert m.counter("views.check.checked") > 0
        assert m.counter("views.check.mismatches") == 0

    def test_cross_check_silent_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INCREMENTAL", raising=False)
        with collect_metrics() as m:
            self._schedule_one()
        assert m.counter("views.check.checked") == 0


class TestKillSwitch:
    def test_disable_env_kills_all_collectors(self):
        """REPRO_OBS_DISABLE=1 (read at import) nulls every collector --
        the configuration the CI overhead guard measures against."""
        import os
        import subprocess
        import sys

        code = (
            "from repro.obs.metrics import collect_metrics, current_registry, inc\n"
            "from repro.obs.spans import collect_trace, current_tracer, span\n"
            "from repro.obs.provenance import collect_provenance, current_recorder\n"
            "with collect_trace() as t, collect_metrics() as m, collect_provenance():\n"
            "    assert current_tracer() is None\n"
            "    assert current_registry() is None\n"
            "    assert current_recorder() is None\n"
            "    with span('generate'):\n"
            "        inc('x')\n"
            "assert not t.spans and not m.counters\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**os.environ, "REPRO_OBS_DISABLE": "1"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"


class TestHistogramStat:
    def test_merge_empty_identity(self):
        h = HistogramStat()
        h.observe(2.0)
        empty = HistogramStat()
        h.merge_from(empty)
        assert (h.count, h.total) == (1, 2.0)
        empty.merge_from(h)
        assert empty.as_dict() == h.as_dict()
