"""The continuous-profiling layer: kernel timing histograms, memory and
GC accounting, folded-stack export, and -- the merge contract the
parallel drivers rely on -- order-invariant folding of worker profiles,
mirroring ``tests/obs/test_metrics.py`` for the registry."""

from __future__ import annotations

import gc

import pytest

from repro import kernels
from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.obs.prof import (
    KernelStat,
    Profiler,
    add_to_current,
    collect_profile,
    current_profiler,
    folded_stacks,
    rss_bytes,
    track_gc,
    write_folded,
)
from repro.obs.spans import collect_trace
from repro.perf.gctune import batched_gc
from repro.perf.parallel import fork_available
from repro.synth.generator import GeneratorConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

POINT = ExperimentPoint(
    generator=GeneratorConfig(n_statements=15, n_variables=6),
    scheduler=SchedulerConfig(n_pes=4),
    count=8,
    master_seed=3,
)


def _profile(**kernel_obs) -> Profiler:
    """A profiler pre-loaded with ``key=[(wall, cpu), ...]`` samples."""
    prof = Profiler()
    for key, samples in kernel_obs.items():
        for wall, cpu in samples:
            prof.record_kernel(key, wall, cpu)
    return prof


class TestKernelStat:
    def test_observe_accumulates(self):
        stat = KernelStat()
        stat.observe(0.5, 0.4)
        stat.observe(1.5, 1.0)
        assert stat.count == 2
        assert stat.wall_s == pytest.approx(2.0)
        assert stat.cpu_s == pytest.approx(1.4)
        assert stat.max_s == pytest.approx(1.5)
        assert stat.mean_s == pytest.approx(1.0)

    def test_dict_round_trip(self):
        stat = KernelStat(count=3, wall_s=1.25, cpu_s=1.0, max_s=0.75)
        assert KernelStat.from_dict(stat.as_dict()) == stat


class TestProfilerMerge:
    """Worker profiles must fold associatively and commutatively: the
    parent's totals cannot depend on chunk completion order."""

    def _parts(self) -> list[Profiler]:
        a = _profile(**{"paths.numpy": [(0.1, 0.1), (0.3, 0.2)]})
        a.record_stage_rss("schedule", 1024)
        a.add_bytes("shm.arena", 4096)
        a.peak_rss = 500
        a.record_gc_pause(0.01, 50)
        b = _profile(
            **{"paths.numpy": [(0.2, 0.1)], "splice.python": [(0.05, 0.05)]}
        )
        b.record_stage_rss("schedule", 512)
        b.record_stage_rss("generate", 256)
        b.peak_rss = 900
        c = _profile(**{"splice.python": [(0.5, 0.4)]})
        c.add_bytes("shm.arena", 1000)
        c.add_bytes("batch.tensors", 2000)
        c.peak_rss = 700
        c.record_gc_pause(0.02, 10)
        return [a, b, c]

    def test_merge_order_invariance(self):
        import itertools

        reference = None
        for order in itertools.permutations(self._parts()):
            total = Profiler()
            for part in order:
                total.merge_from(part)
            if reference is None:
                reference = total.as_dict()
            else:
                assert total.as_dict() == reference

    def test_merge_associativity(self):
        parts = self._parts()
        left = Profiler()
        for p in parts:
            left.merge_from(p)
        bc = Profiler()
        bc.merge_from(parts[1])
        bc.merge_from(parts[2])
        right = Profiler()
        right.merge_from(parts[0])
        right.merge_from(bc)
        assert left.as_dict() == right.as_dict()

    def test_merge_from_mapping_matches_object(self):
        """The wire form (``as_dict``, what workers actually ship) must
        merge identically to the live object."""
        parts = self._parts()
        via_obj = Profiler()
        via_map = Profiler()
        for p in parts:
            via_obj.merge_from(p)
            via_map.merge_from(p.as_dict())
        assert via_obj.as_dict() == via_map.as_dict()

    def test_merge_semantics(self):
        total = Profiler()
        for p in self._parts():
            total.merge_from(p)
        assert total.kernels["paths.numpy"].count == 3
        assert total.kernels["paths.numpy"].wall_s == pytest.approx(0.6)
        assert total.kernels["paths.numpy"].max_s == pytest.approx(0.3)
        assert total.stage_rss == {"schedule": 1536, "generate": 256}
        assert total.bytes == {"shm.arena": 5096, "batch.tensors": 2000}
        assert total.peak_rss == 900  # max-merge, not sum
        assert total.gc_pauses == 2
        assert total.gc_pause_s == pytest.approx(0.03)
        assert total.gc_collected == 60

    def test_dict_round_trip(self):
        total = Profiler()
        for p in self._parts():
            total.merge_from(p)
        assert Profiler.from_dict(total.as_dict()).as_dict() == total.as_dict()

    def test_merge_empty_identity(self):
        loaded = self._parts()[0]
        snapshot = loaded.as_dict()
        loaded.merge_from(Profiler())
        assert loaded.as_dict() == snapshot
        empty = Profiler()
        empty.merge_from(loaded)
        assert empty.as_dict() == snapshot


class TestCollection:
    def test_noop_without_profiler(self):
        assert current_profiler() is None
        with kernels.timed("paths", "python"):
            pass  # must not raise, must not record anywhere

    def test_nesting_innermost_wins(self):
        with collect_profile() as outer:
            with collect_profile() as inner:
                current_profiler().record_kernel("k.python", 0.1, 0.1)
            assert inner.kernels["k.python"].count == 1
            assert "k.python" not in outer.kernels

    def test_timed_records_at_dispatch(self):
        with collect_profile() as prof:
            with kernels.timed("paths", "python"):
                sum(range(1000))
        stat = prof.kernels["paths.python"]
        assert stat.count == 1
        assert stat.wall_s > 0.0
        assert stat.max_s == pytest.approx(stat.wall_s)

    def test_rss_accounting(self):
        assert rss_bytes() > 0
        with collect_profile() as prof:
            pass
        assert prof.peak_rss >= rss_bytes() - 1024  # sampled on exit

    def test_track_gc_records_pauses(self):
        with collect_profile() as prof:
            with track_gc():
                gc.collect()
        assert prof.gc_pauses >= 1
        assert prof.gc_pause_s >= 0.0

    def test_track_gc_noop_without_profiler(self):
        before = len(gc.callbacks)
        with track_gc():
            gc.collect()
        assert len(gc.callbacks) == before

    def test_batched_gc_feeds_profiler(self):
        """The corpus drivers' GC regime reports its pauses."""
        with collect_profile() as prof:
            with batched_gc():
                junk = [[i] for i in range(200_000)]
                del junk
                gc.collect()
        assert prof.gc_pauses >= 1

    def test_add_to_current(self):
        shipped = _profile(**{"k.numpy": [(1.0, 0.9)]}).as_dict()
        with collect_profile() as prof:
            add_to_current(shipped)
        assert prof.kernels["k.numpy"].count == 1
        add_to_current(shipped)  # no active profiler: silent no-op

    def test_disable_kill_switch(self, monkeypatch):
        monkeypatch.setattr("repro.obs.prof.DISABLED", True)
        with collect_profile():
            assert current_profiler() is None
            with kernels.timed("paths", "python"):
                pass

    def test_corpus_run_populates_kernel_timings(self):
        with collect_profile() as prof:
            run_corpus(POINT, jobs=1)
        assert prof.kernels, "dispatch boundary must record kernel timings"
        assert any(stat.count > 0 for stat in prof.kernels.values())
        total_wall = sum(s.wall_s for s in prof.kernels.values())
        assert total_wall > 0.0


@needs_fork
class TestWorkerProfileShipping:
    """Pool and shm workers ship their profiles home; the parent's
    totals cover the serial run's regardless of completion order."""

    def test_pool_workers_ship_profiles(self):
        with collect_profile() as serial:
            run_corpus(POINT, jobs=1)
        with collect_profile() as parallel:
            run_corpus(POINT, jobs=2)
        assert parallel.kernels, "worker profiles must be folded into parent"
        # Chunking changes how many times each kernel dispatches (one
        # batch call per chunk, thresholds per chunk size), so exact
        # call counts are not comparable -- but both runs did real work
        # on the same kernel families.
        assert sum(s.count for s in parallel.kernels.values()) > 0
        assert sum(s.count for s in serial.kernels.values()) > 0
        assert set(parallel.kernels) & set(serial.kernels)

    def test_shm_workers_ship_profiles(self):
        point = POINT.with_(count=16)
        with collect_profile() as prof:
            run_corpus(point, jobs=2, compact=True)
        assert prof.kernels
        assert sum(s.count for s in prof.kernels.values()) > 0


class TestFoldedStacks:
    def test_self_time_and_nesting(self):
        from repro.perf.timers import stage

        with collect_trace() as tracer:
            with stage("schedule"):
                with stage("insert"):
                    sum(range(50_000))
        lines = folded_stacks(tracer)
        stacks = {line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1]) for line in lines}
        assert "schedule;insert" in stacks
        assert all(count >= 1 for count in stacks.values())
        # Self time, not inclusive: the parent's count excludes the child's.
        total_us = sum(stacks.values())
        root = next(s for s in tracer.spans if s.name == "schedule")
        assert total_us <= root.dur_us * 1.5 + 2

    def test_write_folded(self, tmp_path):
        from repro.perf.timers import stage

        with collect_trace() as tracer:
            with stage("generate"):
                sum(range(10_000))
        path = write_folded(tracer, tmp_path / "out.folded")
        text = path.read_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) >= 1

    def test_empty_tracer(self, tmp_path):
        with collect_trace() as tracer:
            pass
        assert folded_stacks(tracer) == []
        path = write_folded(tracer, tmp_path / "empty.folded")
        assert path.read_text() == ""

    @needs_fork
    def test_worker_spans_prefixed(self):
        with collect_trace() as tracer:
            run_corpus(POINT, jobs=2)
        lines = folded_stacks(tracer)
        assert any(line.startswith("worker:") for line in lines), (
            "adopted worker spans must be distinguishable in the flamegraph"
        )
