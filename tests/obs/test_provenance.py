"""Decision provenance: recorded rules, barrier attribution, explain."""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.ir import compile_source
from repro.obs.explain import explain_result
from repro.obs.provenance import (
    BarrierDecision,
    collect_provenance,
    current_recorder,
    record_assignment,
    record_barrier,
    record_merge,
)
from repro.synth.generator import GeneratorConfig, generate_block


@pytest.fixture(scope="module")
def traced_schedule():
    source = generate_block(GeneratorConfig(n_statements=20), 11).source()
    dag = compile_source(source)
    with collect_provenance() as recorder:
        result = schedule_dag(dag, SchedulerConfig(n_pes=4))
    return recorder, result


class TestRecorder:
    def test_noop_without_recorder(self):
        assert current_recorder() is None
        record_assignment("n", 0, "earliest-start")
        record_merge("insert", 1, 2, True, "unordered-overlap")
        record_barrier(
            BarrierDecision(1, "g", "i", 0, 4, 1, -3, (0, 1))
        )  # silently dropped

    def test_every_list_node_has_an_assignment(self, traced_schedule):
        recorder, result = traced_schedule
        for node in result.list_order:
            decision = recorder.assignments[node]
            assert decision.rule in (
                "serialization",
                "earliest-start",
                "slack-serialization",
                "roundrobin",
                "lookahead-divert",
            )
            # The recorded PE matches where the node actually landed.
            assert result.schedule.processor_of(node) == decision.pe

    def test_barrier_decisions_have_negative_slack(self, traced_schedule):
        recorder, result = traced_schedule
        assert recorder.barriers, "workload must force at least one barrier"
        for d in recorder.barriers:
            assert d.slack == d.t_min_i - d.t_max_g
            assert d.slack < 0, "a barrier is only forced by a failed proof"
            assert d.t_max_g > d.t_min_i

    def test_barrier_count_matches_resolutions(self, traced_schedule):
        recorder, result = traced_schedule
        forced = [r for r in result.resolutions if r.barrier is not None]
        assert len(recorder.barriers) == len(forced)
        assert {d.barrier_id for d in recorder.barriers} == {
            r.barrier.id for r in forced
        }

    def test_merge_decisions_recorded_with_reasons(self, traced_schedule):
        recorder, _ = traced_schedule
        assert recorder.merges
        for m in recorder.merges:
            assert m.trigger in ("insert", "finalize")
            if m.accepted:
                assert m.reason == "unordered-overlap"
            else:
                assert m.reason in ("hb-ordered", "windows-disjoint")

    def test_last_assignment_wins(self):
        with collect_provenance() as rec:
            record_assignment("n", 0, "earliest-start")
            record_assignment("n", 2, "lookahead-divert")
        assert rec.assignments["n"].pe == 2
        assert rec.assignments["n"].rule == "lookahead-divert"


class TestExplain:
    def test_every_final_barrier_attributed(self, traced_schedule):
        recorder, result = traced_schedule
        report = explain_result(result, recorder)
        final = [b for b in result.schedule.barriers() if not b.is_initial]
        assert len(report.barriers) == len(final)
        for attr in report.barriers:
            # Every barrier the edge resolver inserted traces back to a
            # concrete producer -> consumer edge.
            assert attr.attributed
            own = attr.decisions[0]
            assert own.barrier_id == attr.barrier_id
            assert own.slack < 0

    def test_merged_victims_attributed_to_survivor(self, traced_schedule):
        recorder, result = traced_schedule
        report = explain_result(result, recorder)
        merged = [b for b in report.barriers if b.merged_ids]
        for attr in merged:
            victim_ids = {d.barrier_id for d in attr.decisions[1:]}
            assert victim_ids <= set(attr.merged_ids)

    def test_render_shape(self, traced_schedule):
        recorder, result = traced_schedule
        text = explain_result(result, recorder).render()
        assert "assignments:" in text
        assert "barriers:" in text
        assert "forced by" in text
        assert "slack" in text
        assert "merges:" in text

    def test_as_dict_is_json_shaped(self, traced_schedule):
        import json

        recorder, result = traced_schedule
        doc = explain_result(result, recorder).as_dict()
        json.dumps(doc)
        assert set(doc) == {
            "summary", "assignments", "barriers", "merges", "demotions",
            "kernels",
        }

    def test_ablation_policies_record_their_rule(self):
        source = generate_block(GeneratorConfig(n_statements=14), 3).source()
        dag = compile_source(source)
        with collect_provenance() as rec:
            schedule_dag(dag, SchedulerConfig(n_pes=4, assignment="roundrobin"))
        rules = {d.rule for d in rec.assignments.values()}
        assert rules == {"roundrobin"}
