"""Perf-trajectory watchdog: regression flagging over BENCH series.

Entries are built synthetically -- the watchdog consumes plain dicts in
the trajectory-entry shape, so tests can pin the statistics without
running the perf workload."""

import json

import pytest

from repro.obs.watch import (
    WatchConfig,
    explain_regression,
    load_trajectory,
    watch_trajectory,
)
from repro.perf.report import TRAJECTORY_FORMAT, append_trajectory, trajectory_entry


def entry(wall=10.0, digest="d0", barrier=0.25, **stages):
    base_stages = {
        "generate": 1.0,
        "schedule": 2.0,
        "insert": 1.0,
        "merge": 0.5,
        "simulate": 0.5,
    }
    base_stages.update(stages)
    return {
        "format": TRAJECTORY_FORMAT,
        "wall_s": wall,
        "stages": base_stages,
        "results_digest": digest,
        "points": [
            {
                "value": 20,
                "barrier": barrier,
                "serialized": 0.5,
                "static": 0.25,
                "mean_makespan_max": 30.0,
            }
        ],
    }


class TestTimeSeries:
    def test_steady_series_is_ok(self):
        report = watch_trajectory([entry(), entry(), entry()])
        assert report.ok
        assert report.entries == 3

    def test_wall_regression_flagged(self):
        # 10, 10, then 25: median(prior)=10, limit=max(20, 11.5)=20.
        report = watch_trajectory([entry(), entry(), entry(wall=25.0)])
        flagged = {v.name for v in report.flagged}
        assert "wall_s" in flagged

    def test_stage_regression_flagged_with_stage_floor(self):
        report = watch_trajectory(
            [entry(), entry(), entry(schedule=5.0)]
        )
        assert {v.name for v in report.flagged} == {"stages.schedule"}

    def test_noise_below_absolute_floor_not_flagged(self):
        # 3x a tiny stage time is still under the 0.5s absolute floor.
        report = watch_trajectory(
            [entry(merge=0.01), entry(merge=0.01), entry(merge=0.03)]
        )
        assert report.ok

    def test_factor_configurable(self):
        entries = [entry(), entry(), entry(wall=18.0)]
        assert watch_trajectory(entries, WatchConfig(factor=2.0)).ok
        loose = watch_trajectory(entries, WatchConfig(factor=1.1))
        assert not loose.ok

    def test_baseline_excludes_other_workloads(self):
        # Quick default-preset runs must not drag the baseline median
        # down for a heavy scale1024 entry (and vice versa).
        quick = dict(entry(wall=0.5), preset="default", count=25)
        heavy = dict(entry(wall=30.0), preset="scale1024", count=100)
        latest = dict(entry(wall=40.0), preset="scale1024", count=100)
        report = watch_trajectory([quick, quick, heavy, latest])
        # Comparable history is just the one heavy run: limit 60s, ok.
        assert "wall_s" not in {v.name for v in report.flagged}
        assert any(
            "different" in n and "workload" in n for n in report.notes
        )

    def test_no_comparable_history_skips_time_series(self):
        quick = dict(entry(wall=0.5), preset="default", count=25)
        latest = dict(entry(wall=40.0), preset="scale1024", count=100)
        report = watch_trajectory([quick, quick, latest])
        assert not [v for v in report.verdicts if v.kind == "time"]

    def test_single_entry_yields_note_only(self):
        report = watch_trajectory([entry()])
        assert report.ok and not report.verdicts
        assert any("fewer than 2" in n for n in report.notes)


def rated(rate, wall=10.0, **kwargs):
    return dict(entry(wall=wall, **kwargs), cases_per_s=rate)


class TestThroughputSeries:
    def test_steady_throughput_is_ok(self):
        report = watch_trajectory([rated(5.0), rated(5.0), rated(5.1)])
        assert report.ok
        assert [v for v in report.verdicts if v.kind == "throughput"]

    def test_throughput_collapse_flagged(self):
        # 5/s baseline, factor 2 -> limit 2.5/s; 1.0/s is a regression.
        report = watch_trajectory([rated(5.0), rated(5.0), rated(1.0)])
        flagged = [v for v in report.flagged if v.kind == "throughput"]
        assert flagged and flagged[0].name == "cases_per_s"
        assert "fell below" in flagged[0].detail

    def test_faster_is_never_flagged(self):
        report = watch_trajectory([rated(5.0), rated(5.0), rated(50.0)])
        assert not [v for v in report.flagged if v.kind == "throughput"]

    def test_subsecond_runs_skip_throughput(self):
        # Rate on a sub-floor wall time is noise, same as the wall series.
        report = watch_trajectory(
            [rated(5.0, wall=0.1), rated(5.0, wall=0.1), rated(0.5, wall=0.1)]
        )
        assert not [v for v in report.verdicts if v.kind == "throughput"]

    def test_entries_without_rate_skip_series(self):
        # Entries recorded before throughput landed have no cases_per_s.
        report = watch_trajectory([entry(), entry(), entry()])
        assert not [v for v in report.verdicts if v.kind == "throughput"]


def profiled(schedule=2.0, kernel_wall=1.0, kernel_calls=100,
             gc_pause=0.1, rate=5.0, wall=10.0, cpu=None, **kwargs):
    """A trajectory entry carrying the profile block ``watch --explain``
    diffs, in the trimmed shape ``trajectory_entry`` records."""
    e = dict(
        entry(wall=wall, schedule=schedule, **kwargs),
        preset="default",
        count=25,
        cases_per_s=rate,
        profile={
            "kernels": {
                "paths.python": {
                    "count": kernel_calls,
                    "wall_s": kernel_wall,
                    "cpu_s": kernel_wall,
                    "max_s": 0.01,
                }
            },
            "gc": {"pauses": 2, "pause_s": gc_pause, "collected": 10},
            "peak_rss": 1 << 20,
        },
    )
    if cpu is not None:
        e["stages"] = dict(e["stages"], cpu=cpu)
    return e


class TestExplainRegression:
    def test_injected_stage_regression_named_top(self):
        """The pinned acceptance scenario: inject a synthetic regression
        into one stage and one kernel; --explain must name them, ranked
        by lost time, with the deltas."""
        prior = [profiled() for _ in range(4)]
        slow = profiled(schedule=6.0, kernel_wall=3.5, wall=14.0)
        report = explain_regression(prior + [slow])
        assert report.n_prior == 4
        assert report.causes, "regression must produce causes"
        top = report.causes[0]
        assert (top.kind, top.name) == ("stage", "schedule")
        assert top.delta == pytest.approx(4.0)
        kinds = {(c.kind, c.name) for c in report.causes}
        assert ("kernel", "paths.python") in kinds
        kernel = next(c for c in report.causes if c.kind == "kernel")
        assert kernel.delta == pytest.approx(2.5)

    def test_stall_note_from_cpu_column(self):
        # Wall grew 4s but CPU barely moved: the note must call it a
        # stall, not compute.
        prior = [profiled(cpu={"schedule": 1.9}) for _ in range(3)]
        slow = profiled(schedule=6.0, wall=14.0, cpu={"schedule": 2.0})
        report = explain_regression(prior + [slow])
        stage = next(c for c in report.causes if c.name == "schedule")
        assert "stall" in stage.note

    def test_gc_regression_surfaces(self):
        prior = [profiled() for _ in range(3)]
        slow = profiled(gc_pause=2.5)
        report = explain_regression(prior + [slow])
        assert any(c.kind == "gc" for c in report.causes)

    def test_steady_series_has_no_causes(self):
        report = explain_regression([profiled() for _ in range(4)])
        assert report.causes == ()
        assert "nothing regressed" in report.render()

    def test_other_workloads_excluded_from_baseline(self):
        other = dict(profiled(schedule=0.1, wall=1.0), preset="scale1024")
        prior = [profiled() for _ in range(3)]
        report = explain_regression([other] + prior + [profiled(schedule=2.0)])
        assert report.n_prior == 3  # the scale1024 run is not comparable
        assert not any(c.name == "schedule" for c in report.causes)

    def test_empty_and_no_comparable_history(self):
        assert explain_regression([]).causes == ()
        lone = explain_regression([profiled()])
        assert lone.n_prior == 0
        assert any("no prior" in n for n in lone.notes)

    def test_prior_without_profiles_noted(self):
        # Entries recorded before profiling landed carry no profile;
        # kernel deltas are skipped with an explicit note, not compared
        # against a silent zero baseline.
        bare = [dict(profiled(), profile=None) for _ in range(3)]
        report = explain_regression(bare + [profiled(kernel_wall=9.0)])
        assert not any(c.kind == "kernel" for c in report.causes)
        assert any("kernel" in n for n in report.notes)

    def test_top_n_truncates(self):
        prior = [profiled() for _ in range(3)]
        slow = profiled(
            schedule=6.0, kernel_wall=3.0, gc_pause=2.0, wall=14.0,
            generate=3.0, insert=3.0, merge=3.0, simulate=3.0,
        )
        report = explain_regression(prior + [slow], top=2)
        assert len(report.causes) == 2
        deltas = [c.delta for c in report.causes]
        assert deltas == sorted(deltas, reverse=True)

    def test_renderings(self):
        prior = [profiled() for _ in range(3)]
        slow = profiled(schedule=6.0, wall=14.0)
        report = explain_regression(prior + [slow])
        text = report.render()
        assert "explain:" in text and "stage schedule" in text
        md = report.render_markdown()
        assert md.startswith("## Regression attribution")
        assert "| 1 | stage | `schedule` |" in md
        data = json.loads(json.dumps(report.as_dict()))
        assert data["causes"][0]["name"] == "schedule"


class TestDeterministicSeries:
    def test_same_digest_same_values_ok(self):
        report = watch_trajectory([entry(digest="x"), entry(digest="x")])
        assert report.ok
        det = [v for v in report.verdicts if v.kind == "deterministic"]
        assert det  # the headline numbers were actually compared

    def test_same_digest_different_value_is_determinism_violation(self):
        report = watch_trajectory(
            [entry(digest="x", barrier=0.25), entry(digest="x", barrier=0.26)]
        )
        flagged = [v for v in report.flagged if v.kind == "deterministic"]
        assert flagged
        assert "determinism violation" in flagged[0].detail

    def test_same_digest_different_workload_not_compared(self):
        # The digest only covers the simulated subset (it saturates at
        # SIMULATED_CASES), so a --count 10 run can share a digest with
        # a --count 100 run while sweeping a different corpus.  Those
        # entries must not be treated as a determinism check.
        small = dict(entry(digest="x", barrier=0.25), count=10, master_seed=0)
        big = dict(entry(digest="x", barrier=0.40), count=100, master_seed=0)
        report = watch_trajectory([small, big])
        assert report.ok
        assert not [v for v in report.verdicts if v.kind == "deterministic"]
        assert any("different" in n and "workload" in n for n in report.notes)

    def test_same_digest_same_workload_still_compared(self):
        a = dict(entry(digest="x", barrier=0.25), count=25, master_seed=0)
        b = dict(entry(digest="x", barrier=0.26), count=25, master_seed=0)
        report = watch_trajectory([a, b])
        flagged = [v for v in report.flagged if v.kind == "deterministic"]
        assert flagged and "determinism violation" in flagged[0].detail

    def test_digest_change_downgrades_to_note(self):
        report = watch_trajectory(
            [entry(digest="x", barrier=0.25), entry(digest="y", barrier=0.40)]
        )
        det_flagged = [v for v in report.flagged if v.kind == "deterministic"]
        assert not det_flagged
        assert any("distinct results_digest" in n for n in report.notes)


class TestRendering:
    def test_markdown_report_shape(self):
        report = watch_trajectory([entry(), entry(), entry(wall=50.0)])
        md = report.render_markdown()
        assert md.startswith("# Perf-trajectory watchdog")
        assert "REGRESSION" in md
        assert "| `wall_s` |" in md

    def test_text_report_marks_flags(self):
        report = watch_trajectory([entry(), entry(), entry(wall=50.0)])
        text = report.render()
        assert "[FLAG] wall_s" in text

    def test_as_dict_json_shaped(self):
        report = watch_trajectory([entry(), entry()])
        data = json.loads(json.dumps(report.as_dict()))
        assert data["ok"] is True


class TestTrajectoryIO:
    def test_missing_file_is_empty_series(self, tmp_path):
        assert load_trajectory(tmp_path / "none.jsonl") == []

    def test_bad_line_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            load_trajectory(path)

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "series" / "t.jsonl"
        data = {
            "wall_s": 1.5,
            "stages": {"schedule": 0.5},
            "results_digest": "abc",
            "points": [{"value": 10, "barrier": 0.2}],
            "created_unix": 123.0,
        }
        append_trajectory(data, path, label="one")
        append_trajectory(data, path, label="two")
        entries = load_trajectory(path)
        assert [e["label"] for e in entries] == ["one", "two"]
        assert all(e["format"] == TRAJECTORY_FORMAT for e in entries)
        assert entries[0]["wall_s"] == 1.5

    def test_trajectory_entry_trims_to_watched_fields(self):
        data = {
            "wall_s": 2.0,
            "stages": {"schedule": 1.0},
            "results_digest": "abc",
            "points": [{"value": 10, "barrier": 0.2, "n_benchmarks": 99}],
            "metrics": {"huge": "blob"},
            "created_unix": 5.0,
        }
        trimmed = trajectory_entry(data)
        assert "metrics" not in trimmed
        assert trimmed["points"][0].get("n_benchmarks") is None
        assert trimmed["results_digest"] == "abc"
