"""The hierarchical span tracer: nesting, events, export, adoption."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.export import (
    to_chrome_trace,
    trace_events,
    write_jsonl,
    write_trace,
)
from repro.obs.spans import (
    SpanTracer,
    collect_trace,
    current_tracer,
    event,
    span,
)


class TestSpanRecording:
    def test_noop_without_tracer(self):
        # Zero-cost contract: no subscriber means no recording and no error.
        assert current_tracer() is None
        with span("schedule", foo=1):
            event("engine.release")

    def test_nesting_reconstructed_via_parents(self):
        with collect_trace() as tracer:
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
            with span("root2"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        outer, root2 = by_name["outer"], by_name["root2"]
        assert outer.parent is None and outer.depth == 0
        assert root2.parent is None
        assert by_name["inner.a"].parent == outer.id
        assert by_name["inner.b"].parent == outer.id
        assert by_name["inner.a"].depth == 1
        tree = tracer.children()
        assert {s.name for s in tree[None]} == {"outer", "root2"}
        assert {s.name for s in tree[outer.id]} == {"inner.a", "inner.b"}

    def test_span_timing_containment(self):
        with collect_trace() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        inner = tracer.named("inner")[0]
        outer = tracer.named("outer")[0]
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0

    def test_instant_events_and_args(self):
        with collect_trace() as tracer:
            with span("schedule", pes=4):
                event("engine.release", barrier=3)
        assert tracer.named("schedule")[0].args == {"pes": 4}
        (ev,) = tracer.events
        assert ev.name == "engine.release" and ev.args == {"barrier": 3}

    def test_tracers_nest_innermost_wins(self):
        with collect_trace() as outer:
            with collect_trace() as inner:
                with span("generate"):
                    pass
        assert [s.name for s in inner.spans] == ["generate"]
        assert outer.spans == []


class TestAdopt:
    def _worker_state(self):
        worker = SpanTracer()
        worker.pid = 99999  # pretend it is another process
        with_sid = worker.open("schedule")
        inner = worker.open("insert")
        worker.close(inner)
        worker.close(with_sid)
        worker.instant("engine.release", {"barrier": 1})
        return worker.export_state()

    def test_adopt_preserves_parent_links_and_shifts_ids(self):
        parent = SpanTracer()
        own = parent.open("sweep")
        parent.close(own)
        parent.adopt(self._worker_state())
        names = {s.name: s for s in parent.spans}
        assert names["insert"].parent == names["schedule"].id
        assert names["schedule"].parent is None
        ids = [s.id for s in parent.spans]
        assert len(ids) == len(set(ids)), "adopted ids must not collide"
        assert parent.events[0].name == "engine.release"

    def test_adopt_rebases_onto_parent_timeline(self):
        state = self._worker_state()
        parent = SpanTracer()
        # Simulate a worker whose wall clock anchor is 1s after the parent's.
        state = dict(state, wall_epoch=parent.wall_epoch + 1.0)
        parent.adopt(state)
        sched = [s for s in parent.spans if s.name == "schedule"][0]
        assert sched.ts_us >= 1e6  # shifted ~1s forward

    def test_adopt_twice_keeps_ids_disjoint(self):
        parent = SpanTracer()
        parent.adopt(self._worker_state())
        parent.adopt(self._worker_state())
        ids = [s.id for s in parent.spans]
        assert len(ids) == len(set(ids))


class TestExport:
    def _traced(self):
        with collect_trace() as tracer:
            with span("schedule", pes=8):
                with span("insert"):
                    pass
            event("engine.release", barrier=0)
        return tracer

    def test_chrome_trace_schema(self):
        tracer = self._traced()
        doc = to_chrome_trace(tracer)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"schedule", "insert"}
        assert [e["name"] for e in instants] == ["engine.release"]
        for e in complete:
            for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
                assert key in e
        for e in instants:
            assert e["s"] == "t"
            assert "dur" not in e
        # Nesting metadata travels in args for machine consumers.
        insert = [e for e in complete if e["name"] == "insert"][0]
        sched = [e for e in complete if e["name"] == "schedule"][0]
        assert insert["args"]["parent_id"] == sched["args"]["span_id"]
        # Chrome trace must be plain JSON.
        json.dumps(doc)

    def test_events_sorted_by_timestamp(self):
        tracer = self._traced()
        ts = [e["ts"] for e in trace_events(tracer)]
        assert ts == sorted(ts)

    def test_jsonl_round_trip(self):
        tracer = self._traced()
        buf = io.StringIO()
        write_jsonl(tracer, buf)
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        spans = [r for r in records if r["kind"] == "span"]
        events = [r for r in records if r["kind"] == "event"]
        assert {r["name"] for r in spans} == {"schedule", "insert"}
        assert [r["name"] for r in events] == ["engine.release"]
        by_name = {r["name"]: r for r in spans}
        assert by_name["insert"]["parent"] == by_name["schedule"]["id"]
        # A JSONL dump round-trips through export_state/adopt.
        fresh = SpanTracer()
        fresh.adopt(
            {
                "wall_epoch": fresh.wall_epoch,
                "spans": spans,
                "events": events,
            }
        )
        assert {s.name for s in fresh.spans} == {"schedule", "insert"}

    def test_write_trace_selects_format_by_suffix(self, tmp_path):
        tracer = self._traced()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        write_trace(tracer, str(chrome))
        write_trace(tracer, str(jsonl))
        assert "traceEvents" in json.loads(chrome.read_text())
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert first["kind"] == "span"


class TestPipelineIntegration:
    def test_stage_spans_nest_inner_operations(self, small_result_traced):
        tracer, _ = small_result_traced
        sched = tracer.named("schedule")
        assert len(sched) == 1
        tree = tracer.children()
        nested = {s.name for s in tree.get(sched[0].id, [])}
        assert "insert" in nested
        assert "merge" in nested

    def test_evolved_views_traced_under_insert(self, small_result_traced):
        tracer, _ = small_result_traced
        names = {s.name for s in tracer.spans}
        assert "dag.evolved_insert" in names
        assert "dom.evolved" in names
        # Every inner span has a containing stage span.
        roots = {s.name for s in tracer.children()[None]}
        assert roots <= {"generate", "schedule", "simulate"}


@pytest.fixture
def small_result_traced():
    from repro.core.scheduler import SchedulerConfig, schedule_dag
    from repro.ir import compile_source
    from repro.perf.timers import stage
    from repro.synth.generator import GeneratorConfig, generate_block

    source = generate_block(GeneratorConfig(n_statements=16), 5).source()
    with collect_trace() as tracer:
        with stage("generate"):
            dag = compile_source(source)
        with stage("schedule"):
            result = schedule_dag(dag, SchedulerConfig(n_pes=4))
    return tracer, result
