"""Machine-timeline export: Perfetto-loadable Chrome trace JSON with
per-PE tracks and barrier flow events.

The assertions pin the Chrome Trace Event Format schema the export
relies on (Perfetto's chrome-trace importer): complete slices carry
``ph/ts/dur/pid/tid``, metadata events name the process and one thread
per PE, and every flow start (``ph: "s"``) has a matching finish
(``ph: "f"``, ``bp: "e"``) with the same numeric ``id``."""

import json

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.program import MachineOp, MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.obs.runtime import analyze_trace
from repro.obs.runtime_export import (
    MACHINE_PID,
    machine_trace_events,
    to_machine_chrome_trace,
    write_machine_trace,
)
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


@pytest.fixture(scope="module")
def simulated():
    case = compile_case(GeneratorConfig(n_statements=25, n_variables=8), 11)
    result = schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=11))
    program = MachineProgram.from_schedule(result.schedule)
    trace = simulate_sbm(program, rng=11)
    trace.assert_sound(program.edges)
    return program, trace


@pytest.fixture(scope="module")
def events(simulated):
    return machine_trace_events(*simulated)


class TestEventSchema:
    def test_all_events_on_the_machine_pid(self, events):
        assert events
        assert {e["pid"] for e in events} == {MACHINE_PID}

    def test_process_and_thread_metadata(self, simulated, events):
        program, _ = simulated
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"]: e for e in meta if e["name"] == "process_name"}
        assert names["process_name"]["args"]["name"] == "machine:sbm"
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert {e["tid"] for e in threads} == set(range(program.n_pes))
        # Thread names surface the per-PE utilization.
        assert all("busy" in e["args"]["name"] for e in threads)

    def test_one_slice_per_instruction(self, simulated, events):
        program, trace = simulated
        ops = [e for e in events if e["ph"] == "X" and e["cat"] == "op"]
        n_instructions = sum(
            1
            for stream in program.streams
            for item in stream
            if isinstance(item, MachineOp)
        )
        assert len(ops) == n_instructions
        by_name = {e["name"]: e for e in ops}
        for node, start in trace.start.items():
            ev = by_name[str(node)]
            assert ev["ts"] == start
            assert ev["dur"] == trace.finish[node] - start

    def test_wait_slices_cover_barrier_waits(self, simulated, events):
        _, trace = simulated
        waits = [e for e in events if e["ph"] == "X" and e["cat"] == "wait"]
        for e in waits:
            bid = e["args"]["barrier"]
            assert e["ts"] + e["dur"] == trace.barrier_fire[bid]

    def test_complete_slices_carry_required_keys(self, events):
        for e in events:
            if e["ph"] == "X":
                assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)


class TestFlowEvents:
    def test_every_flow_start_has_a_matching_finish(self, events):
        starts = {e["id"] for e in events if e["ph"] == "s"}
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert starts and starts == finishes

    def test_flow_finish_binds_enclosing_slice(self, events):
        for e in events:
            if e["ph"] == "f":
                assert e["bp"] == "e"

    def test_one_flow_per_barrier_participant(self, simulated, events):
        program, trace = simulated
        analysis = analyze_trace(program, trace)
        expected = sum(b.width for b in analysis.barriers)
        assert len([e for e in events if e["ph"] == "s"]) == expected

    def test_flow_ids_unique_per_pair(self, events):
        start_ids = [e["id"] for e in events if e["ph"] == "s"]
        assert len(start_ids) == len(set(start_ids))
        assert all(isinstance(i, int) and i > 0 for i in start_ids)

    def test_flows_start_at_origin_arrival_and_end_at_fire(
        self, simulated, events
    ):
        program, trace = simulated
        analysis = analyze_trace(program, trace)
        by_barrier = {b.barrier_id: b for b in analysis.barriers}
        for e in events:
            b = by_barrier[e["args"]["barrier"]] if e["ph"] in "sf" else None
            if e["ph"] == "s":
                assert e["tid"] == b.last_arriver
                assert e["ts"] == b.arrivals[b.last_arriver]
            elif e["ph"] == "f":
                assert e["ts"] == b.fire

    def test_critical_flag_matches_analysis(self, simulated, events):
        program, trace = simulated
        critical = set(analyze_trace(program, trace).critical_barriers())
        for e in events:
            if e["ph"] == "s":
                assert e["args"]["critical"] == (
                    e["args"]["barrier"] in critical
                )


class TestRoundTrip:
    def test_json_round_trip(self, simulated):
        payload = to_machine_chrome_trace(*simulated)
        data = json.loads(json.dumps(payload))
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["machine"] == "sbm"
        assert data["otherData"]["makespan"] == simulated[1].makespan

    def test_write_machine_trace_file(self, simulated, tmp_path):
        path = tmp_path / "machine.json"
        write_machine_trace(*simulated, str(path))
        data = json.loads(path.read_text())
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"X", "M", "s", "f"} <= phases

    def test_events_sorted_by_timestamp(self, events):
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_reuses_provided_analysis(self, simulated):
        program, trace = simulated
        analysis = analyze_trace(program, trace)
        a = machine_trace_events(program, trace, analysis)
        b = machine_trace_events(program, trace)
        assert a == b
