"""Runtime trace analytics: per-PE breakdowns, barrier waits, release
skew, supersteps, and the executed critical path.

Hand-built programs keep every expected number derivable on paper; a
compiled corpus case then checks the invariants that must hold for any
sound schedule (time accounted exactly, critical path ends at the
makespan, metrics recorded)."""

import pytest

from repro.timing import Interval
from repro.barriers.mask import BarrierMask
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.durations import MaxSampler
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.obs.metrics import collect_metrics
from repro.obs.runtime import analyze_trace
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


def hand_program(streams, masks, order, edges=()):
    return MachineProgram(
        n_pes=len(streams),
        streams=tuple(tuple(s) for s in streams),
        masks=masks,
        barrier_order=tuple(order),
        initial_barrier_id=0,
        edges=tuple(edges),
    )


def two_pe_program():
    """PE0 runs a 4-tick op, PE1 a 1-tick op, then both meet at b1.

    With MaxSampler: PE1 arrives at b1 at t=1, PE0 at t=4; b1 fires at
    t=4 (skew 3, PE1 waits 3).  Both then run a 2-tick op: makespan 6.
    """
    b0, b1 = BarrierRef(0), BarrierRef(1)
    long = MachineOp("long", Interval(4, 4), "long")
    short = MachineOp("short", Interval(1, 1), "short")
    tail_a = MachineOp("tail_a", Interval(2, 2), "tail_a")
    tail_b = MachineOp("tail_b", Interval(2, 2), "tail_b")
    masks = {
        0: BarrierMask.from_pes([0, 1], 2),
        1: BarrierMask.from_pes([0, 1], 2),
    }
    return hand_program(
        [[b0, long, b1, tail_a], [b0, short, b1, tail_b]], masks, [0, 1]
    )


class TestHandBuiltAnalysis:
    @pytest.fixture()
    def analysis(self):
        program = two_pe_program()
        trace = simulate_sbm(program, MaxSampler())
        return analyze_trace(program, trace)

    def test_makespan_and_utilization(self, analysis):
        assert analysis.makespan == 6
        assert analysis.breakdown_of(0).busy == 6
        assert analysis.breakdown_of(1).busy == 3
        assert analysis.breakdown_of(0).utilization(6) == 1.0
        assert analysis.breakdown_of(1).utilization(6) == 0.5
        assert analysis.mean_utilization == pytest.approx(0.75)

    def test_barrier_wait_and_skew(self, analysis):
        b1 = analysis.barrier_runtime(1)
        assert b1.fire == 4
        assert b1.arrivals == {0: 4, 1: 1}
        assert b1.waits == {0: 0, 1: 3}
        assert b1.skew == 3
        assert b1.max_wait == 3
        assert b1.last_arriver == 0
        assert analysis.max_release_skew == 3
        assert analysis.breakdown_of(1).barrier_wait == 3
        assert analysis.breakdown_of(0).barrier_wait == 0

    def test_time_accounted_exactly(self, analysis):
        for pe in analysis.pes:
            assert pe.busy + pe.barrier_wait + pe.tail_idle == analysis.makespan

    def test_supersteps(self, analysis):
        # Fires at t=0 (b0) and t=4 (b1): supersteps [0,4) and [4,6).
        assert [(s.start, s.end) for s in analysis.supersteps] == [(0, 4), (4, 6)]
        first, second = analysis.supersteps
        assert first.busy == (4, 1) and first.imbalance == 3
        assert second.busy == (2, 2) and second.imbalance == 0
        assert analysis.mean_superstep_imbalance == pytest.approx(1.5)

    def test_critical_path(self, analysis):
        # The realized makespan is carried by b0 -> long(PE0) -> b1 ->
        # tail; b1 appears even though PE0 waited zero time at it.
        descr = [s.describe() for s in analysis.critical_path]
        assert descr[0] == "b0@0"
        assert descr[1] == "long(PE0)@4"
        assert descr[2] == "b1@4"
        assert descr[3] in ("tail_a(PE0)@6", "tail_b(PE1)@6")
        assert analysis.critical_barriers() == (0, 1)
        assert analysis.critical_path[-1].at == analysis.makespan
        # b1 fired the instant its last participant arrived: dependence.
        assert analysis.critical_path[2].cause == "dependence"

    def test_render_mentions_headline_numbers(self, analysis):
        text = analysis.render()
        assert "makespan 6" in text
        assert "PE0" in text and "PE1" in text
        assert "critical path" in text

    def test_as_dict_round_trips_through_json(self, analysis):
        import json

        data = json.loads(json.dumps(analysis.as_dict()))
        assert data["makespan"] == 6
        assert len(data["pes"]) == 2
        assert data["critical_path"][2]["barrier"] == 1


class TestQueueSerializationAttribution:
    def test_sbm_head_of_line_wait_is_attributed_to_queue(self):
        """b2 involves only PE1 (ready at t=1) but sits behind b1 in the
        FIFO queue; b1 cannot fire before PE0 arrives at t=4, so b2's
        release at t=4 is a *queue* effect, not a dependence."""
        b0, b1, b2 = BarrierRef(0), BarrierRef(1), BarrierRef(2)
        long = MachineOp("long", Interval(4, 4), "long")
        short = MachineOp("short", Interval(1, 1), "short")
        tail = MachineOp("tail", Interval(1, 1), "tail")
        masks = {
            0: BarrierMask.from_pes([0, 1], 2),
            1: BarrierMask.from_pes([0], 2),
            2: BarrierMask.from_pes([1], 2),
        }
        program = hand_program(
            [[b0, long, b1], [b0, short, b2, tail]], masks, [0, 1, 2]
        )
        trace = simulate_sbm(program, MaxSampler())
        assert trace.barrier_fire[2] == 4  # held back by the queue
        analysis = analyze_trace(program, trace)
        causes = {
            s.barrier: s.cause
            for s in analysis.critical_path
            if s.kind == "barrier"
        }
        assert causes.get(2) == "queue"
        # ... and the chain continues through b1 to the long op.
        assert any(
            s.kind == "op" and str(s.node) == "long"
            for s in analysis.critical_path
        )


class TestCompiledCaseInvariants:
    @pytest.fixture(scope="class")
    def analyzed(self):
        case = compile_case(GeneratorConfig(n_statements=30, n_variables=8), 5)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=5))
        program = MachineProgram.from_schedule(result.schedule)
        trace = simulate_sbm(program, rng=5)
        trace.assert_sound(program.edges)
        return program, trace, analyze_trace(program, trace)

    def test_every_pe_time_accounted(self, analyzed):
        _, _, analysis = analyzed
        for pe in analysis.pes:
            assert pe.busy + pe.barrier_wait + pe.tail_idle == analysis.makespan
            assert 0.0 <= pe.utilization(analysis.makespan) <= 1.0

    def test_all_barriers_have_runtimes(self, analyzed):
        _, trace, analysis = analyzed
        assert {b.barrier_id for b in analysis.barriers} == set(
            trace.barrier_fire
        )
        for b in analysis.barriers:
            assert all(w >= 0 for w in b.waits.values())
            assert b.skew >= 0

    def test_critical_path_ends_at_makespan(self, analyzed):
        _, _, analysis = analyzed
        assert analysis.critical_path
        assert analysis.critical_path[-1].at == analysis.makespan
        # Steps never move backwards in time.
        ats = [s.at for s in analysis.critical_path]
        assert ats == sorted(ats)

    def test_supersteps_tile_the_makespan(self, analyzed):
        _, _, analysis = analyzed
        steps = analysis.supersteps
        assert steps[0].start == 0
        assert steps[-1].end == analysis.makespan
        for prev, cur in zip(steps, steps[1:]):
            assert prev.end == cur.start

    def test_metrics_recorded_when_registry_active(self, analyzed):
        program, trace, _ = analyzed
        with collect_metrics() as m:
            analyze_trace(program, trace)
        assert m.counter("engine.analyses") == 1
        assert m.histograms["engine.pe_utilization"].count == program.n_pes

    def test_partial_trace_rejected(self, analyzed):
        program, trace, _ = analyzed
        from dataclasses import replace

        broken = replace(trace, barrier_fire={})
        with pytest.raises(ValueError, match="no fire time"):
            analyze_trace(program, broken)
