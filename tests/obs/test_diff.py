"""Differential observability: run records and first-divergence diffs.

The acceptance scenario of the subsystem is pinned here: two runs of the
same block differing only in ``--merge`` must diff to a localized first
divergence whose report names the merge decision from provenance."""

import json

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.obs.diff import (
    DIFF_LAYERS,
    RUN_RECORD_FORMAT,
    diff_runs,
    load_run_record,
    run_record,
    write_run_record,
)
from repro.obs.provenance import collect_provenance
from repro.obs.runtime import analyze_trace
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig


def scheduled_record(seed=9, stmts=25, label="", **config):
    case = compile_case(GeneratorConfig(n_statements=stmts, n_variables=8), seed)
    with collect_provenance() as recorder:
        result = schedule_dag(
            case.dag, SchedulerConfig(n_pes=4, seed=seed, **config)
        )
    program = MachineProgram.from_schedule(result.schedule)
    trace = simulate_sbm(program, rng=seed)
    analysis = analyze_trace(program, trace)
    return run_record(
        result,
        provenance=recorder,
        trace=trace,
        analysis=analysis,
        label=label,
    )


class TestRunRecord:
    def test_versioned_and_json_serializable(self):
        record = scheduled_record(label="a")
        assert record["format"] == RUN_RECORD_FORMAT
        assert record["label"] == "a"
        json.dumps(record)  # fully JSON-shaped

    def test_carries_every_layer(self):
        record = scheduled_record()
        assert record["assignment"] and record["order"]
        assert record["barriers"] and record["queue"]
        assert record["results_digest"]
        assert record["trace"]["makespan"] > 0
        assert record["analysis"]["pes"]
        assert record["provenance"]["merges"] is not None

    def test_write_load_round_trip(self, tmp_path):
        record = scheduled_record()
        path = write_run_record(record, tmp_path / "run.json")
        assert load_run_record(path) == json.loads(json.dumps(record))

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something.else"}))
        with pytest.raises(ValueError, match="unsupported run-record format"):
            load_run_record(path)


class TestDiffEquivalence:
    def test_identical_runs_have_no_divergence(self):
        a = scheduled_record(label="a")
        b = scheduled_record(label="b")
        diff = diff_runs(a, b)
        assert diff.identical
        assert "equivalent" in diff.render()
        assert any("identical" in n for n in diff.notes)

    def test_as_dict_is_json_shaped(self):
        diff = diff_runs(scheduled_record(), scheduled_record())
        data = json.loads(json.dumps(diff.as_dict()))
        assert data["identical"] is True


class TestMergeOnOffAcceptance:
    """ISSUE acceptance: diff two runs differing only in --merge."""

    @pytest.fixture(scope="class")
    def diff(self):
        on = scheduled_record(label="merge-on", merge_barriers=True)
        off = scheduled_record(label="merge-off", merge_barriers=False)
        return diff_runs(on, off)

    def test_divergence_localized(self, diff):
        assert not diff.identical
        assert diff.divergence.layer in DIFF_LAYERS

    def test_config_change_reported(self, diff):
        assert "merge_barriers" in diff.config_changes
        assert diff.config_changes["merging_enabled"] == (True, False)

    def test_merge_decision_named_from_provenance(self, diff):
        text = diff.render()
        # The report names the decision: some barrier was absorbed into
        # a survivor in exactly one of the two runs.
        assert "absorbed into" in text
        assert "merge only in" in text

    def test_digest_difference_noted(self, diff):
        assert any("results_digest" in n for n in diff.notes)


class TestLayerOrdering:
    def test_first_divergence_wins(self):
        """A doctored record differing in assignment *and* barriers must
        report the assignment layer -- the earliest causal difference."""
        a = scheduled_record()
        b = json.loads(json.dumps(a))
        first_node = b["order"][0]
        b["assignment"][first_node] = (b["assignment"][first_node] + 1) % 4
        b["barriers"] = b["barriers"][:-1]
        diff = diff_runs(a, b)
        assert diff.divergence.layer == "assignment"
        assert f"node {first_node}" in diff.divergence.subject

    def test_barrier_only_divergence(self):
        a = scheduled_record()
        b = json.loads(json.dumps(a))
        dropped = b["barriers"][-1]["id"]
        b["barriers"] = b["barriers"][:-1]
        diff = diff_runs(a, b)
        assert diff.divergence.layer == "barriers"
        assert diff.divergence.subject == f"b{dropped}"
        assert any("exists only in A" in n for n in diff.divergence.notes)

    def test_fire_time_divergence(self):
        a = scheduled_record()
        b = json.loads(json.dumps(a))
        b["barriers"][-1]["fire_window"][1] += 1
        diff = diff_runs(a, b)
        assert diff.divergence.layer == "fire"
        assert "fire_window" in diff.divergence.subject

    def test_simulated_fire_divergence(self):
        a = scheduled_record()
        b = json.loads(json.dumps(a))
        bid = next(iter(b["trace"]["barrier_fire"]))
        b["trace"]["barrier_fire"][bid] += 1
        diff = diff_runs(a, b)
        assert diff.divergence.layer == "fire"
        assert "@run" in diff.divergence.subject

    def test_insertion_mode_divergence_is_explained(self):
        cons = scheduled_record(label="cons", insertion="conservative")
        opt = scheduled_record(label="opt", insertion="optimal")
        diff = diff_runs(cons, opt)
        assert diff.config_changes.get("insertion") == (
            "conservative",
            "optimal",
        )
        # Conservative vs optimal may or may not change this block; if
        # it does, the divergence must be localized to a single layer.
        if not diff.identical:
            assert diff.divergence.layer in DIFF_LAYERS
