"""Observation must never perturb results: digest parity on the
standard 100-block corpus with tracing off, on, and under worker
parallelism.  This is the tentpole invariant of ``repro.obs`` -- every
recording entry point is observation-only, so the ``results_digest``
(summaries, list orders, every edge resolution) is bit-identical no
matter which collectors are active."""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.obs import metrics as obs_metrics
from repro.obs.provenance import collect_provenance
from repro.obs.runtime import analyze_trace
from repro.obs.spans import collect_trace
from repro.perf.parallel import fork_available, results_digest
from repro.synth.generator import GeneratorConfig

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)

#: The standard corpus: 100 mid-size blocks, the same shape the perf
#: harness and the paper's per-point evaluation use.
POINT = ExperimentPoint(
    generator=GeneratorConfig(n_statements=20, n_variables=8),
    scheduler=SchedulerConfig(n_pes=8),
    count=100,
    master_seed=0,
)


@pytest.fixture(scope="module")
def baseline_digest():
    return results_digest(run_corpus(POINT, jobs=1))


class TestDigestParity:
    def test_traced_serial_matches_untraced(self, baseline_digest):
        with collect_trace() as tracer, obs_metrics.collect_metrics() as m, \
                collect_provenance():
            digest = results_digest(run_corpus(POINT, jobs=1))
        assert digest == baseline_digest
        # ... and the observation actually happened (not vacuous parity).
        assert tracer.spans
        assert m.counter("scheduler.barriers_inserted") > 0

    @needs_fork
    def test_parallel_matches_serial(self, baseline_digest):
        digest = results_digest(run_corpus(POINT, jobs=2))
        assert digest == baseline_digest

    @needs_fork
    def test_traced_parallel_matches_untraced_serial(self, baseline_digest):
        with collect_trace() as tracer, obs_metrics.collect_metrics() as m:
            digest = results_digest(run_corpus(POINT, jobs=2))
        assert digest == baseline_digest
        pids = {s.pid for s in tracer.spans}
        assert len(pids) >= 2, "worker spans must be adopted by the parent"
        assert m.counter("scheduler.barriers_inserted") > 0

    def test_trace_analysis_preserves_digest(self, baseline_digest):
        """Runtime trace analysis is observation-only: analyzing every
        simulated trace (with the metrics registry live, so the engine.*
        family is actually recorded) must not move the digest."""
        with obs_metrics.collect_metrics() as m:
            results = run_corpus(POINT, jobs=1)
            for result in results[:10]:
                program = MachineProgram.from_schedule(result.schedule)
                trace = simulate_sbm(program, rng=0)
                analyze_trace(program, trace)
            digest = results_digest(results)
        assert digest == baseline_digest
        # ... and the analysis actually recorded the engine.* family.
        assert m.counter("engine.analyses") == 10
        for name in (
            "engine.pe_utilization",
            "engine.barrier_wait",
            "engine.release_skew",
            "engine.superstep_imbalance",
            "engine.critical_path_len",
        ):
            assert m.histograms[name].count > 0, name

    def test_trace_digest_invariant_under_analysis(self):
        """The *trace itself* is identical whether or not it is analyzed
        (analysis never touches the engine or the RNG)."""
        result = run_corpus(POINT.with_(count=1), jobs=1)[0]
        program = MachineProgram.from_schedule(result.schedule)
        bare = simulate_sbm(program, rng=7)
        with obs_metrics.collect_metrics():
            analyzed = simulate_sbm(program, rng=7)
            analyze_trace(program, analyzed)
        assert bare.start == analyzed.start
        assert bare.finish == analyzed.finish
        assert bare.barrier_fire == analyzed.barrier_fire
        assert bare.pe_finish == analyzed.pe_finish

    def test_profiled_serial_matches_unprofiled(self, baseline_digest):
        """Continuous profiling (kernel timers, RSS sampling, GC hooks,
        progress heartbeats) is observation-only: the digest is
        bit-identical with the whole layer armed."""
        from repro.obs.progress import ProgressMeter, collect_progress
        from repro.obs.prof import collect_profile

        meter = ProgressMeter(lambda beat: None, interval_s=0.0)
        with collect_profile() as prof, collect_progress(meter):
            digest = results_digest(run_corpus(POINT, jobs=1))
        assert digest == baseline_digest
        # ... and the profiling actually happened (not vacuous parity).
        assert prof.kernels
        assert meter.done == POINT.count

    @needs_fork
    def test_profiled_parallel_matches_unprofiled_serial(self, baseline_digest):
        from repro.obs.prof import collect_profile

        with collect_profile() as prof:
            digest = results_digest(run_corpus(POINT, jobs=2))
        assert digest == baseline_digest
        assert prof.kernels, "worker profiles must ship home"

    @needs_fork
    def test_worker_metrics_cover_serial_metrics(self):
        """Worker registries are merged into the parent.  The parallel
        driver overdraws work past the acceptance target (chunk
        granularity, bounded in-flight speculation), so its counters may
        exceed the serial run's -- but never fall short: every counted
        decision of the serial corpus happened in some worker and was
        shipped home."""
        with obs_metrics.collect_metrics() as serial:
            run_corpus(POINT, jobs=1)
        with obs_metrics.collect_metrics() as parallel:
            run_corpus(POINT, jobs=2)
        for name in (
            "scheduler.barriers_inserted",
            "scheduler.resolution.barrier",
            "scheduler.resolution.serialized",
        ):
            assert parallel.counter(name) >= serial.counter(name) > 0, name
