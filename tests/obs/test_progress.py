"""The live progress stream: heartbeat throttling, ETA math, the two
CLI sinks, and the observation-only module helpers the corpus drivers
call."""

from __future__ import annotations

import io
import json

from repro.obs.progress import (
    HEARTBEAT_INTERVAL_S,
    JSONLSink,
    ProgressMeter,
    TTYStatusSink,
    advance,
    collect_progress,
    current_meter,
    format_status,
    set_total,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestProgressMeter:
    def test_throttles_to_interval(self):
        clock = FakeClock()
        beats: list[dict] = []
        meter = ProgressMeter(beats.append, interval_s=1.0, clock=clock)
        meter.set_total(100)
        meter.advance()  # first advance emits (last_emit starts at -inf)
        for _ in range(50):
            meter.advance()  # same instant: all suppressed
        assert len(beats) == 1
        clock.t = 1.0
        meter.advance()
        assert len(beats) == 2
        assert beats[-1]["done"] == 52

    def test_heartbeat_rate_and_eta(self):
        clock = FakeClock()
        meter = ProgressMeter(lambda beat: None, clock=clock)
        meter.set_total(100)
        meter.done = 25
        clock.t = 5.0
        beat = meter.heartbeat()
        assert beat["event"] == "progress"
        assert beat["cases_per_s"] == 5.0
        assert beat["eta_s"] == 15.0  # 75 remaining at 5/s
        assert beat["final"] is False

    def test_heartbeat_without_total(self):
        clock = FakeClock()
        meter = ProgressMeter(lambda beat: None, clock=clock)
        meter.done = 10
        clock.t = 2.0
        beat = meter.heartbeat()
        assert beat["total"] is None
        assert beat["eta_s"] is None

    def test_finish_emits_unthrottled_final_beat(self):
        clock = FakeClock()
        beats: list[dict] = []
        meter = ProgressMeter(beats.append, interval_s=1e9, clock=clock)
        meter.set_total(3)
        meter.advance(3)
        meter.finish()
        assert beats[-1]["final"] is True
        assert beats[-1]["done"] == 3


class TestFormatStatus:
    def test_with_total_and_eta(self):
        text = format_status(
            {"done": 123, "total": 3500, "cases_per_s": 41.25, "eta_s": 42.0}
        )
        assert text == "123/3500 cases  41.2/s  eta 0:42"

    def test_without_total(self):
        text = format_status({"done": 7, "cases_per_s": 2.0, "eta_s": None})
        assert text == "7 cases  2.0/s"


class TestSinks:
    def test_tty_sink_rewrites_one_line(self):
        stream = io.StringIO()
        sink = TTYStatusSink(stream)
        sink.emit({"done": 1, "total": 10, "cases_per_s": 1.0, "eta_s": 9.0})
        long_line = stream.getvalue()
        sink.emit({"done": 2, "total": 10, "cases_per_s": 1.0, "eta_s": 8.0})
        assert stream.getvalue().count("\r") == 2
        assert "\n" not in stream.getvalue()
        sink.close()
        assert stream.getvalue().endswith("\n")
        assert long_line.startswith("\rperf: ")

    def test_tty_sink_pads_shrinking_lines(self):
        stream = io.StringIO()
        sink = TTYStatusSink(stream)
        sink.emit({"done": 100, "total": 1000, "cases_per_s": 10.0, "eta_s": 90.0})
        first_len = len(stream.getvalue()) - 1  # minus the \r
        stream.truncate(0)
        stream.seek(0)
        sink.emit({"done": 9, "total": 10, "cases_per_s": 1.0, "eta_s": 1.0})
        # The shorter line is padded out to overwrite the longer one.
        assert len(stream.getvalue()) - 1 >= first_len

    def test_tty_sink_close_idempotent_when_silent(self):
        stream = io.StringIO()
        TTYStatusSink(stream).close()
        assert stream.getvalue() == ""

    def test_jsonl_sink(self):
        stream = io.StringIO()
        sink = JSONLSink(stream)
        sink.emit({"event": "progress", "done": 1, "total": 2})
        sink.emit({"event": "progress", "done": 2, "total": 2})
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["done"] == 1
        sink.close()
        assert not stream.closed  # does not own the stream

    def test_jsonl_sink_owns_stream(self, tmp_path):
        handle = open(tmp_path / "live.jsonl", "w", encoding="utf-8")
        sink = JSONLSink(handle, owns_stream=True)
        sink.emit({"done": 1})
        sink.close()
        assert handle.closed


class TestModuleHelpers:
    def test_noop_without_meter(self):
        assert current_meter() is None
        set_total(10)  # must not raise
        advance(3)

    def test_helpers_feed_installed_meter(self):
        beats: list[dict] = []
        meter = ProgressMeter(beats.append, interval_s=0.0)
        with collect_progress(meter):
            assert current_meter() is meter
            set_total(5)
            advance(2)
            advance(3)
        assert current_meter() is None
        assert meter.done == 5
        assert meter.total == 5
        assert beats and beats[-1]["done"] == 5

    def test_disable_kill_switch(self, monkeypatch):
        monkeypatch.setattr("repro.obs.progress.DISABLED", True)
        meter = ProgressMeter(lambda beat: None)
        with collect_progress(meter):
            assert current_meter() is None
            advance()  # swallowed
        assert meter.done == 0

    def test_corpus_run_advances_meter(self):
        from repro.core.scheduler import SchedulerConfig
        from repro.experiments.sweeps import ExperimentPoint, run_corpus
        from repro.synth.generator import GeneratorConfig

        meter = ProgressMeter(lambda beat: None, interval_s=0.0)
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=10, n_variables=5),
            scheduler=SchedulerConfig(n_pes=4),
            count=6,
            master_seed=1,
        )
        with collect_progress(meter):
            results = run_corpus(point, jobs=1)
        assert meter.done == len(results) == 6
