"""Tests for the hybrid demotion plan: edge classification and guards."""

import pytest

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults.margin import robustness_margin
from repro.hybrid import hybrid_program, hybridize_schedule
from repro.machine.program import MachineProgram
from repro.obs.provenance import collect_provenance
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

# The reference racy configuration of docs/robustness.md.
RACY_SEED = 7


def scheduled(seed=RACY_SEED, n_pes=4, machine="sbm"):
    case = compile_case(GeneratorConfig(n_statements=30), seed)
    cfg = SchedulerConfig(n_pes=n_pes, machine=machine, seed=seed)
    return schedule_dag(case.dag, cfg).schedule


class TestClassification:
    def test_zero_budget_demotes_nothing(self):
        plan = hybridize_schedule(scheduled(), 0.0)
        assert plan.n_demoted == 0
        assert plan.guards == {}
        assert plan.n_proven == plan.n_timing

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            hybridize_schedule(scheduled(), -0.1)

    def test_demotes_exactly_the_fragile_margin_edges(self):
        schedule = scheduled()
        margin = robustness_margin(schedule)
        budget = 0.25
        fragile = {
            (m.producer, m.consumer)
            for m in margin.edges
            if m.epsilon_edge < budget
        }
        plan = hybridize_schedule(schedule, budget, margin=margin)
        assert {(d.producer, d.consumer) for d in plan.demotions} == fragile
        assert plan.n_timing == len(margin.edges)
        assert all(d.epsilon_edge < budget for d in plan.demotions)

    def test_huge_budget_demotes_every_timing_edge(self):
        schedule = scheduled()
        plan = hybridize_schedule(schedule, 1e9)
        assert plan.n_demoted == plan.n_timing
        assert plan.n_proven == 0

    def test_demotions_sorted_most_fragile_first(self):
        plan = hybridize_schedule(scheduled(), 1e9)
        eps = [d.epsilon_edge for d in plan.demotions]
        assert eps == sorted(eps)

    def test_guards_group_producers_per_consumer(self):
        plan = hybridize_schedule(scheduled(), 0.25)
        assert plan.n_demoted > 0
        total = sum(len(ps) for ps in plan.guards.values())
        assert total == plan.n_demoted
        for d in plan.demotions:
            assert d.producer in plan.guards[d.consumer]

    def test_render_names_budget_and_edges(self):
        plan = hybridize_schedule(scheduled(), 0.25)
        text = plan.render()
        assert "budget eps=0.25" in text
        assert "dynamic guard" in text


class TestHybridProgram:
    def test_program_keeps_static_skeleton(self):
        schedule = scheduled()
        plan = hybridize_schedule(schedule, 0.25)
        base = MachineProgram.from_schedule(schedule)
        hybrid = hybrid_program(schedule, plan)
        assert hybrid.streams == base.streams
        assert hybrid.barrier_order == base.barrier_order
        assert hybrid.masks == base.masks
        assert hybrid.guards == plan.guards
        assert hybrid.n_guards == plan.n_demoted

    def test_render_mentions_guards(self):
        schedule = scheduled()
        plan = hybridize_schedule(schedule, 0.25)
        assert "data guards" in hybrid_program(schedule, plan).render()


class TestSchedulerIntegration:
    def test_static_mode_has_no_hybrid_plan(self):
        case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=4))
        assert result.hybrid is None

    def test_hybrid_mode_attaches_plan(self):
        case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
        cfg = SchedulerConfig(
            n_pes=4, seed=RACY_SEED, mode="hybrid", hybrid_epsilon=0.25
        )
        result = schedule_dag(case.dag, cfg)
        assert result.hybrid is not None
        assert result.hybrid.budget == 0.25

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SchedulerConfig(n_pes=4, mode="dynamic")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError, match="hybrid_epsilon"):
            SchedulerConfig(n_pes=4, hybrid_epsilon=-1.0)


class TestDemotionProvenance:
    def test_demotions_recorded(self):
        schedule = scheduled()
        with collect_provenance() as recorder:
            plan = hybridize_schedule(schedule, 0.25)
        assert len(recorder.demotions) == plan.n_demoted
        d = recorder.demotions[0]
        assert d.budget == 0.25
        assert (d.producer, d.consumer) in {
            (e.producer, e.consumer) for e in plan.demotions
        }
        assert recorder.as_dict()["demotions"]
