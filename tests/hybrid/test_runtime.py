"""Runtime tests for dynamic data guards: waits, watchdog, controller."""

import pytest

from repro.barriers.mask import BarrierMask
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, FaultySampler
from repro.hybrid import HybridController, hybrid_program, hybridize_schedule
from repro.machine.durations import MaxSampler, MinSampler
from repro.machine.engine import GuardPolicy, run_machine
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.sbm import SBMController
from repro.machine.trace import GuardStall
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig
from repro.timing import Interval

RACY_SEED = 7


def guarded_program(producer_latency=Interval(1, 5)):
    """Two PEs: PE0 runs producer A, PE1's consumer B waits for A's data."""
    b0 = BarrierRef(0)
    streams = [
        [b0, MachineOp("A", producer_latency)],
        [b0, MachineOp("B", Interval(1, 1))],
    ]
    return MachineProgram(
        n_pes=2,
        streams=tuple(tuple(s) for s in streams),
        masks={0: BarrierMask.from_pes([0, 1], 2)},
        barrier_order=(0,),
        initial_barrier_id=0,
        edges=(("A", "B"),),
        guards={"B": ("A",)},
    )


def run(program, sampler, policy=None, rng=0):
    controller = SBMController(program)
    return run_machine(
        program, controller, "sbm", sampler, rng=rng, guard_policy=policy
    )


class TestGuardWaits:
    def test_slow_producer_blocks_consumer_until_data(self):
        trace = run(guarded_program(), MaxSampler())
        # A finishes at 5; B arrived at 0 and must have waited.
        assert trace.finish["A"] == 5
        assert trace.start["B"] == 5
        (wait,) = trace.guard_waits
        assert wait.consumer == "B"
        assert wait.producers == ("A",)
        assert wait.waited == 5
        assert wait.recovered
        assert trace.guard_saves == 1
        trace.assert_sound(program_edges := guarded_program().edges)

    def test_fast_producer_means_zero_wait(self):
        trace = run(guarded_program(Interval(1, 5)), MinSampler())
        # A finishes at 1, B arrives at 0: still a 1-tick wait.  Make the
        # producer instant-ish relative to a delayed consumer instead.
        assert trace.guard_waits[0].waited == 1

    def test_poll_quantizes_the_resume_time(self):
        trace = run(guarded_program(), MaxSampler(), GuardPolicy(poll=3))
        (wait,) = trace.guard_waits
        # 5 ticks of real wait round up to two 3-tick polls.
        assert wait.polls == 2
        assert wait.resumed == 6
        assert trace.start["B"] == 6

    def test_watchdog_timeout_raises_guard_stall(self):
        with pytest.raises(GuardStall) as exc:
            run(guarded_program(), MaxSampler(), GuardPolicy(poll=1, timeout=2))
        message = str(exc.value)
        assert "guard stall" in message
        assert "consumer B" in message
        assert "A" in message
        assert exc.value.waited == 5
        assert exc.value.timeout == 2

    def test_stall_carries_fault_context(self):
        plan = FaultPlan(epsilon=4.0, p_overrun=1.0)
        sampler = FaultySampler(plan, MaxSampler())
        with pytest.raises(GuardStall) as exc:
            controller = SBMController(prog := guarded_program())
            run_machine(
                prog,
                controller,
                "sbm",
                sampler,
                rng=0,
                allow_overrun=True,
                guard_policy=GuardPolicy(poll=1, timeout=2),
            )
        assert "under faults" in str(exc.value)
        assert "epsilon=4" in str(exc.value)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(poll=0)
        with pytest.raises(ValueError):
            GuardPolicy(poll=4, timeout=2)


class TestHybridController:
    def scheduled(self, machine="sbm"):
        case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
        cfg = SchedulerConfig(n_pes=4, machine=machine, seed=RACY_SEED)
        return schedule_dag(case.dag, cfg).schedule

    @pytest.mark.parametrize("machine", ["sbm", "dbm"])
    def test_wraps_both_machines(self, machine):
        schedule = self.scheduled(machine)
        plan = hybridize_schedule(schedule, 0.25)
        program = hybrid_program(schedule, plan)
        controller = HybridController.for_program(program, machine)
        trace = run_machine(program, controller, machine, MaxSampler())
        trace.assert_sound(program.edges)

    def test_unknown_machine_rejected(self):
        schedule = self.scheduled()
        plan = hybridize_schedule(schedule, 0.25)
        program = hybrid_program(schedule, plan)
        with pytest.raises(ValueError, match="machine"):
            HybridController.for_program(program, "vliw")

    def test_fault_context_flows_into_deadlock_diagnostics(self):
        schedule = self.scheduled()
        plan = hybridize_schedule(schedule, 0.25)
        program = hybrid_program(schedule, plan)
        controller = HybridController.for_program(
            program, "sbm", fault_context="epsilon=0.25"
        )
        assert controller.fault_context == "epsilon=0.25"
        assert controller.pending() == controller.inner.pending()


class TestGuardedCampaignSurvival:
    def test_guards_recover_the_races_hardening_would_barrier(self):
        # The reference racy case: at eps=0.25 the static schedule races;
        # the hybrid schedule recovers every one as a guard wait.
        from repro.faults import run_campaign

        case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
        cfg = SchedulerConfig(n_pes=4, machine="sbm", seed=RACY_SEED)
        schedule = schedule_dag(case.dag, cfg).schedule
        plan = FaultPlan(epsilon=0.25)
        static = run_campaign(schedule, "sbm", plan, runs=30, seed=RACY_SEED)
        hyb = hybridize_schedule(schedule, plan.worst_stretch)
        hybrid = run_campaign(
            schedule, "sbm", plan, runs=30, seed=RACY_SEED, hybrid=hyb
        )
        assert not static.race_free
        assert hybrid.race_free
        assert hybrid.n_guard_saves > 0
        assert hybrid.survival_rate > static.survival_rate
        assert "GUARDS" in hybrid.render()
