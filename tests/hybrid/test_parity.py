"""Digest-parity pins: hybrid mode must be free when nothing faults.

The hybrid scheduler's contract is *pure insurance*: demoting a timing
edge to a data guard changes neither the schedule (placement, order,
barriers) nor a zero-fault execution.  These tests pin that contract
with the same digests CI uses elsewhere -- ``results_digest`` for the
compile side, ``campaign_digest`` for the runtime side -- so any drift
(a guard that perturbs placement, a wait charged without a fault) is a
hard failure, not a performance footnote.
"""

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.faults import FaultPlan, campaign_digest, run_campaign
from repro.hybrid import hybridize_schedule
from repro.perf.parallel import results_digest
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

RACY_SEED = 7


def compiled(seed=RACY_SEED):
    return compile_case(GeneratorConfig(n_statements=30), seed)


class TestCompileParity:
    def test_hybrid_compile_is_digest_identical_to_static(self):
        # Acceptance criterion: with zero faults, `--mode hybrid` output
        # is digest-identical to the static schedule.
        for seed in range(5):
            case = compiled(seed)
            static = schedule_dag(case.dag, SchedulerConfig(n_pes=4, seed=seed))
            hybrid = schedule_dag(
                case.dag,
                SchedulerConfig(
                    n_pes=4, seed=seed, mode="hybrid", hybrid_epsilon=0.25
                ),
            )
            assert results_digest([static]) == results_digest([hybrid])

    def test_zero_budget_hybrid_degenerates_to_static(self):
        case = compiled()
        result = schedule_dag(
            case.dag,
            SchedulerConfig(n_pes=4, seed=RACY_SEED, mode="hybrid"),
        )
        assert result.hybrid is not None
        assert result.hybrid.n_demoted == 0
        assert result.hybrid.guards == {}


class TestRuntimeParity:
    def test_zero_fault_campaign_digest_identical(self):
        # With a null fault plan the guards never fire: run-for-run the
        # hybrid campaign is indistinguishable from the static one.
        case = compiled()
        cfg = SchedulerConfig(n_pes=4, machine="sbm", seed=RACY_SEED)
        schedule = schedule_dag(case.dag, cfg).schedule
        hyb = hybridize_schedule(schedule, 0.25)
        assert hyb.n_demoted > 0
        plan = FaultPlan()
        static = run_campaign(schedule, "sbm", plan, runs=20, seed=RACY_SEED)
        hybrid = run_campaign(
            schedule, "sbm", plan, runs=20, seed=RACY_SEED, hybrid=hyb
        )
        assert campaign_digest(static) == campaign_digest(hybrid)
        assert hybrid.n_guard_saves == 0

    def test_campaign_digest_serial_vs_parallel(self):
        # Satellite: run_campaign must produce bit-identical reports
        # serial and under --jobs N (fork pool), faults or not.
        case = compiled()
        cfg = SchedulerConfig(n_pes=4, machine="sbm", seed=RACY_SEED)
        schedule = schedule_dag(case.dag, cfg).schedule
        plan = FaultPlan(epsilon=0.25)
        hyb = hybridize_schedule(schedule, plan.worst_stretch)
        for hybrid in (None, hyb):
            serial = run_campaign(
                schedule, "sbm", plan, runs=24, seed=3, hybrid=hybrid, jobs=1
            )
            parallel = run_campaign(
                schedule, "sbm", plan, runs=24, seed=3, hybrid=hybrid, jobs=4
            )
            assert campaign_digest(serial) == campaign_digest(parallel)
            assert serial == parallel

    def test_campaign_digest_is_sensitive_to_outcomes(self):
        case = compiled()
        cfg = SchedulerConfig(n_pes=4, machine="sbm", seed=RACY_SEED)
        schedule = schedule_dag(case.dag, cfg).schedule
        quiet = run_campaign(schedule, "sbm", FaultPlan(), runs=10, seed=0)
        racy = run_campaign(
            schedule, "sbm", FaultPlan(epsilon=0.25), runs=10, seed=0
        )
        assert campaign_digest(quiet) != campaign_digest(racy)
