"""Run records carry the demotion table; diff names demotion deltas."""

import json

from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.obs.diff import diff_runs, run_record
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

RACY_SEED = 7


def records():
    case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
    static = schedule_dag(
        case.dag, SchedulerConfig(n_pes=4, seed=RACY_SEED)
    )
    hybrid = schedule_dag(
        case.dag,
        SchedulerConfig(
            n_pes=4, seed=RACY_SEED, mode="hybrid", hybrid_epsilon=0.25
        ),
    )
    return (
        run_record(static, label="static"),
        run_record(hybrid, label="hybrid"),
    )


class TestHybridRunRecord:
    def test_record_carries_demotion_table(self):
        static_rec, hybrid_rec = records()
        assert static_rec["hybrid"] is None
        h = hybrid_rec["hybrid"]
        assert h["budget"] == 0.25
        assert len(h["demotions"]) == h["n_timing"] - h["n_proven"]
        assert len(h["demotions"]) > 0
        json.dumps(hybrid_rec)  # still a JSON artifact
        assert hybrid_rec["config"]["mode"] == "hybrid"

    def test_diff_is_clean_but_names_the_demotions(self):
        # Hybrid never perturbs the pipeline layers, so the diff finds
        # no divergence -- but it must say which runs guard which edges.
        static_rec, hybrid_rec = records()
        diff = diff_runs(static_rec, hybrid_rec)
        assert diff.identical
        assert ("mode", ("static", "hybrid")) in diff.config_changes.items()
        text = diff.render()
        assert "hybrid only in B" in text
        assert "results_digest: identical" in text

    def test_diff_between_budgets_names_edge_deltas(self):
        case = compile_case(GeneratorConfig(n_statements=30), RACY_SEED)
        small = run_record(
            schedule_dag(
                case.dag,
                SchedulerConfig(
                    n_pes=4, seed=RACY_SEED, mode="hybrid", hybrid_epsilon=0.1
                ),
            ),
            label="small",
        )
        big = run_record(
            schedule_dag(
                case.dag,
                SchedulerConfig(
                    n_pes=4, seed=RACY_SEED, mode="hybrid", hybrid_epsilon=1e9
                ),
            ),
            label="big",
        )
        assert len(big["hybrid"]["demotions"]) > len(
            small["hybrid"]["demotions"]
        )
        text = diff_runs(small, big).render()
        assert "demoted only in B" in text
