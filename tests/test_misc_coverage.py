"""Edge-case tests for smaller surfaces across the library."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import Interval
from repro.analysis import analyze_schedule
from repro.barriers.mask import BarrierMask
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulerConfig, schedule_dag
from repro.experiments.sweeps import ExperimentPoint, sweep, sweep_rows
from repro.ir import compile_source, parse_block
from repro.ir.interp import UndefinedVariableError, interpret
from repro.ir.codegen import generate_tuples
from repro.machine import MachineProgram, simulate_sbm
from repro.machine.engine import run_machine
from repro.machine.sbm import SBMController
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig
from repro.viz.gantt import _glyph
from repro.machine.program import MachineOp

from tests.conftest import chain_dag


class TestInterpreterErrors:
    def test_undefined_variable(self):
        program = generate_tuples(parse_block("a = x + 1"))
        with pytest.raises(UndefinedVariableError):
            interpret(program, {})

    def test_partial_env_ok_when_variable_unused(self):
        program = generate_tuples(parse_block("a = x + 1"))
        assert interpret(program, {"x": 1, "zzz": 9}) == {"a": 2}


class TestEngineValidation:
    def test_bad_sampler_rejected(self):
        case = compile_case(GeneratorConfig(n_statements=10, n_variables=4), 1)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=2, seed=1))
        program = MachineProgram.from_schedule(result.schedule)

        class Bad:
            def sample(self, node, latency, rng):
                return latency.hi + 1

        controller = SBMController(program)
        with pytest.raises(ValueError):
            run_machine(program, controller, "sbm", Bad())

    def test_rng_accepts_none_int_random(self):
        case = compile_case(GeneratorConfig(n_statements=10, n_variables=4), 2)
        result = schedule_dag(case.dag, SchedulerConfig(n_pes=2, seed=2))
        program = MachineProgram.from_schedule(result.schedule)
        simulate_sbm(program, rng=None)
        simulate_sbm(program, rng=7)
        simulate_sbm(program, rng=random.Random(7))


class TestScheduleSmall:
    def test_render_lists_streams(self):
        dag = chain_dag([(1, 1), (1, 1)])
        sched = Schedule(dag, 2)
        sched.append_instruction(0, 0)
        sched.append_instruction(1, 1)
        text = sched.render()
        assert text.startswith("PE0:") and "|b0|" in text

    def test_iter_protocol(self):
        dag = chain_dag([(1, 1)])
        sched = Schedule(dag, 2)
        pes = [pe for pe, _stream in sched]
        assert pes == [0, 1]

    def test_barriers_include_initial_flag(self):
        dag = chain_dag([(1, 1)])
        sched = Schedule(dag, 2)
        assert sched.barriers() == []
        assert len(sched.barriers(include_initial=True)) == 1


class TestAnalysisDegenerate:
    def test_barrier_free_schedule_report(self):
        dag = compile_source("a = x + 1\nb = a * 2\nc = b - 3")
        result = schedule_dag(dag, SchedulerConfig(n_pes=4, seed=0))
        report = analyze_schedule(result)
        if result.counts.barriers_final == 0:
            assert report.barriers.count == 0
            assert report.barriers.mean_width == 0.0
        assert "schedule report" in report.render()


class TestSweepRows:
    def test_renders_table(self):
        point = ExperimentPoint(
            generator=GeneratorConfig(n_statements=10, n_variables=4),
            scheduler=SchedulerConfig(n_pes=2),
            count=3,
            master_seed=1,
        )
        rows = sweep(point, "scheduler.n_pes", [1, 2])
        text = sweep_rows(rows, "PEs")
        assert "barrier" in text and text.count("\n") == 2


class TestGanttGlyph:
    def test_alpha_from_mnemonic(self):
        assert _glyph(MachineOp("n", Interval(1, 1), "Add 0,1")) == "A"

    def test_fallback_for_symbols(self):
        assert _glyph(MachineOp("n", Interval(1, 1), "##")) == "#"

    def test_node_used_when_no_mnemonic(self):
        assert _glyph(MachineOp("xy", Interval(1, 1), "")) == "X"


class TestMaskProperties:
    pes_sets = st.sets(st.integers(0, 15), max_size=16)

    @settings(max_examples=100, deadline=None)
    @given(a=pes_sets, b=pes_sets)
    def test_subset_matches_set_semantics(self, a, b):
        ma = BarrierMask.from_pes(a, 16)
        mb = BarrierMask.from_pes(b, 16)
        assert ma.is_subset_of(mb) == (a <= b)
        assert mb.covers(ma) == (a <= b)

    @settings(max_examples=100, deadline=None)
    @given(a=pes_sets, b=pes_sets)
    def test_release_is_set_difference(self, a, b):
        ma = BarrierMask.from_pes(a, 16)
        mb = BarrierMask.from_pes(b, 16)
        assert set(ma.release(mb)) == a - b

    @settings(max_examples=50, deadline=None)
    @given(a=pes_sets)
    def test_with_wait_adds_one(self, a):
        mask = BarrierMask.from_pes(a, 16)
        grown = mask.with_wait(3)
        assert set(grown) == a | {3}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 5000),
    pes=st.integers(1, 10),
)
def test_fractions_always_in_unit_interval(seed, pes):
    from repro.metrics.fractions import fractions_of

    case = compile_case(GeneratorConfig(n_statements=15, n_variables=5), seed)
    result = schedule_dag(case.dag, SchedulerConfig(n_pes=pes, seed=seed))
    fr = fractions_of(result)
    for value in (fr.barrier, fr.serialized, fr.static):
        assert 0.0 <= value <= 1.0
