"""Fuzz tests: the parsers must never raise anything but ParseError."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.parser import parse_program
from repro.ir.ast import BasicBlock
from repro.ir.parser import ParseError, parse_block, tokenize

# Printable text biased toward the language's own alphabet so the fuzzer
# reaches deep into the grammar rather than failing at the first byte.
_alphabet = st.sampled_from(
    list(string.ascii_lowercase[:8])
    + list("0123456789")
    + list("+-*/%&|()=;{} \n")
    + ["if", "else", "while", "//", "  "]
)
fuzz_text = st.lists(_alphabet, max_size=60).map("".join)


@settings(max_examples=300, deadline=None)
@given(fuzz_text)
def test_parse_block_total(source):
    try:
        block = parse_block(source)
    except ParseError:
        return
    assert isinstance(block, BasicBlock)
    # successful parses must round-trip
    assert parse_block(block.source()) == block


@settings(max_examples=300, deadline=None)
@given(fuzz_text)
def test_parse_program_total(source):
    try:
        program = parse_program(source)
    except ParseError:
        return
    assert parse_program(program.source()) == program


@settings(max_examples=200, deadline=None)
@given(fuzz_text)
def test_tokenizer_total(source):
    try:
        tokens = tokenize(source)
    except ParseError:
        return
    assert tokens[-1].kind == "eof"
    # tokens carry sane positions
    for tok in tokens:
        assert tok.line >= 1 and tok.column >= 1


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=40))
def test_parsers_survive_arbitrary_unicode(source):
    for parser in (parse_block, parse_program):
        try:
            parser(source)
        except ParseError:
            pass
