"""Tests for AST -> tuple code generation."""

import pytest

from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Var
from repro.ir.codegen import generate_tuples
from repro.ir.interp import interpret
from repro.ir.ops import Opcode
from repro.ir.parser import parse_block
from repro.ir.tuples import Imm, Ref


def ops_of(program):
    return [t.opcode for t in program]


class TestLoadInsertion:
    def test_first_read_emits_load(self):
        program = generate_tuples(parse_block("a = x + y"))
        assert ops_of(program) == [Opcode.LOAD, Opcode.LOAD, Opcode.ADD, Opcode.STORE]

    def test_second_read_reuses_load(self):
        program = generate_tuples(parse_block("a = x + x\nb = x - 1"))
        loads = [t for t in program if t.opcode is Opcode.LOAD]
        assert len(loads) == 1 and loads[0].var == "x"

    def test_read_after_assign_uses_value_not_load(self):
        program = generate_tuples(parse_block("a = x + 1\nb = a * 2"))
        loads = [t for t in program if t.opcode is Opcode.LOAD]
        assert [t.var for t in loads] == ["x"]
        mul = next(t for t in program if t.opcode is Opcode.MUL)
        add = next(t for t in program if t.opcode is Opcode.ADD)
        assert Ref(add.id) in mul.operands

    def test_self_reference_before_assign(self):
        program = generate_tuples(parse_block("x = x + 1"))
        assert ops_of(program) == [Opcode.LOAD, Opcode.ADD, Opcode.STORE]


class TestStoreInsertion:
    def test_every_assignment_stores(self):
        program = generate_tuples(parse_block("a = 1 + 2\na = 3 + 4"))
        stores = [t for t in program if t.opcode is Opcode.STORE]
        assert len(stores) == 2
        assert all(t.var == "a" for t in stores)

    def test_copy_statement_stores_operand(self):
        program = generate_tuples(parse_block("a = x + 0"))
        store = program.stores()[0]
        assert store.var == "a"


class TestNumbering:
    def test_ids_are_sequential_from_zero(self):
        program = generate_tuples(parse_block("a = x + y\nb = a - x"))
        assert [t.id for t in program] == list(range(len(program)))

    def test_constants_become_immediates(self):
        program = generate_tuples(parse_block("a = x + 3"))
        add = next(t for t in program if t.opcode is Opcode.ADD)
        assert Imm(3) in add.operands


class TestSemantics:
    @pytest.mark.parametrize(
        "source,env",
        [
            ("a = x + y\nb = a * a\nc = b - x", {"x": 3, "y": 4}),
            ("a = x / y\nb = x % y", {"x": 17, "y": 5}),
            ("a = x / y", {"x": 17, "y": 0}),
            ("a = x & y | x", {"x": 12, "y": 10}),
            ("a = x + 1\na = a + 1\na = a + 1", {"x": 0}),
        ],
    )
    def test_generated_code_matches_block_semantics(self, source, env):
        block = parse_block(source)
        program = generate_tuples(block)
        assert interpret(program, env) == block.execute(env)

    def test_nested_expression(self):
        block = BasicBlock(
            (
                Assign(
                    "r",
                    BinOp(
                        Opcode.MUL,
                        BinOp(Opcode.ADD, Var("x"), Const(2)),
                        BinOp(Opcode.SUB, Var("y"), Var("x")),
                    ),
                ),
            )
        )
        program = generate_tuples(block)
        env = {"x": 3, "y": 10}
        assert interpret(program, env) == block.execute(env) == {"r": 35}

    def test_program_validates(self):
        program = generate_tuples(parse_block("a = x + y\nb = a - 1"))
        program.validate()  # must not raise
