"""Tests for the optimizer passes, individually and as a pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.codegen import generate_tuples
from repro.ir.interp import interpret
from repro.ir.ops import Opcode
from repro.ir.optimizer import (
    OptimizationPipeline,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize,
    simplify_algebraic,
)
from repro.ir.parser import parse_block
from repro.synth.generator import GeneratorConfig, generate_block

from tests.conftest import random_env


def ops_of(program):
    return [t.opcode for t in program]


class TestConstantFolding:
    def test_folds_pure_constant_expr(self):
        program = generate_tuples(parse_block("a = 2 + 3"))
        folded = fold_constants(program)
        assert ops_of(folded) == [Opcode.STORE]
        assert folded.stores()[0].operands[0].value == 5

    def test_folds_chains(self):
        program = generate_tuples(parse_block("a = (2 + 3) * (4 - 1)"))
        folded = fold_constants(program)
        assert ops_of(folded) == [Opcode.STORE]
        assert folded.stores()[0].operands[0].value == 15

    def test_division_by_constant_zero_folds_to_zero(self):
        program = generate_tuples(parse_block("a = 7 / 0"))
        folded = fold_constants(program)
        assert folded.stores()[0].operands[0].value == 0

    def test_leaves_variable_expressions(self):
        program = generate_tuples(parse_block("a = x + 3"))
        assert fold_constants(program) is program


class TestAlgebraicSimplification:
    @pytest.mark.parametrize(
        "source,expected_value_ops",
        [
            ("a = x + 0", []),
            ("a = 0 + x", []),
            ("a = x - 0", []),
            ("a = x * 1", []),
            ("a = 1 * x", []),
            ("a = x / 1", []),
            ("a = x | 0", []),
        ],
    )
    def test_identity_removed(self, source, expected_value_ops):
        program = simplify_algebraic(generate_tuples(parse_block(source)))
        alu = [t.opcode for t in program if t.opcode.is_alu]
        assert alu == expected_value_ops

    @pytest.mark.parametrize(
        "source",
        ["a = x - x", "a = x % x", "a = x * 0", "a = x & 0", "a = x % 1", "a = x / 0"],
    )
    def test_annihilators_become_constant_zero(self, source):
        program = simplify_algebraic(generate_tuples(parse_block(source)))
        store = program.stores()[0]
        assert store.operands[0].value == 0

    @pytest.mark.parametrize("source", ["a = x & x", "a = x | x"])
    def test_idempotent_ops_removed(self, source):
        program = simplify_algebraic(generate_tuples(parse_block(source)))
        alu = [t for t in program if t.opcode.is_alu]
        assert alu == []

    def test_zero_minus_x_not_simplified(self):
        program = simplify_algebraic(generate_tuples(parse_block("a = 0 - x")))
        assert any(t.opcode is Opcode.SUB for t in program)


class TestCse:
    def test_duplicate_expression_shared(self):
        program = generate_tuples(parse_block("a = x + y\nb = x + y"))
        out = eliminate_common_subexpressions(program)
        adds = [t for t in out if t.opcode is Opcode.ADD]
        assert len(adds) == 1
        s1, s2 = out.stores()
        assert s1.operands == s2.operands

    def test_commutative_normalization(self):
        program = generate_tuples(parse_block("a = x + y\nb = y + x"))
        out = eliminate_common_subexpressions(program)
        assert len([t for t in out if t.opcode is Opcode.ADD]) == 1

    def test_non_commutative_not_merged(self):
        program = generate_tuples(parse_block("a = x - y\nb = y - x"))
        out = eliminate_common_subexpressions(program)
        assert len([t for t in out if t.opcode is Opcode.SUB]) == 2

    def test_cse_respects_operand_substitution(self):
        # After the first CSE merge the second pair becomes identical too.
        program = generate_tuples(parse_block("a = x + y\nb = x + y\nc = a * 2\nd = b * 2"))
        out = eliminate_common_subexpressions(program)
        assert len([t for t in out if t.opcode is Opcode.MUL]) == 1


class TestDce:
    def test_unused_load_removed(self):
        # y is loaded for the RHS of a dead store.
        program = generate_tuples(parse_block("a = y + 1\na = x + 1"))
        out = eliminate_dead_code(program)
        assert [t.var for t in out.loads()] == ["x"]

    def test_dead_store_removed(self):
        program = generate_tuples(parse_block("a = x + 1\na = x + 2"))
        out = eliminate_dead_code(program)
        stores = out.stores()
        assert len(stores) == 1

    def test_intermediate_value_chain_kept(self):
        program = generate_tuples(parse_block("a = x + 1\nb = a * 2"))
        out = eliminate_dead_code(program)
        assert len(out) == len(program)

    def test_dead_store_value_still_used_elsewhere(self):
        # first store to a is dead, but the Add feeding it is used by b.
        program = generate_tuples(parse_block("a = x + 1\nb = a * 2\na = x - 1"))
        out = eliminate_dead_code(program)
        assert len([t for t in out if t.opcode is Opcode.ADD]) == 1
        assert len(out.stores()) == 2


class TestPipeline:
    def test_reaches_fixpoint_with_extended_passes(self):
        from repro.ir.optimizer.pipeline import EXTENDED_PASSES

        program = generate_tuples(
            parse_block("a = 2 + 3\nb = a * 1\nc = b + 0\nd = c - c\ne = x + d")
        )
        pipeline = OptimizationPipeline(passes=EXTENDED_PASSES)
        out = pipeline.run(program)
        # e = x + 0 -> x; so only Load x and the live stores remain
        assert all(not t.opcode.is_alu for t in out)
        assert pipeline.rounds_run >= 2

    def test_default_pipeline_matches_paper_pass_list(self):
        from repro.ir.optimizer.pipeline import DEFAULT_PASSES
        from repro.ir.optimizer.algebraic import simplify_algebraic

        assert simplify_algebraic not in DEFAULT_PASSES

    def test_figure1_style_gaps(self):
        """Optimized programs keep original ids, leaving gaps (figure 1)."""
        program = generate_tuples(parse_block("a = x + y\nb = x + y\nc = a - b"))
        out = optimize(program)
        ids = [t.id for t in out]
        assert ids == sorted(ids)
        assert len(out) < len(program)

    def test_preserves_empty_program(self):
        from repro.ir.tuples import TupleProgram

        assert len(optimize(TupleProgram([]))) == 0


# -- the key property: optimization preserves semantics --------------------

@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_statements=st.integers(min_value=1, max_value=40),
    n_variables=st.integers(min_value=1, max_value=10),
)
def test_optimizer_preserves_semantics_on_random_programs(
    seed, n_statements, n_variables
):
    config = GeneratorConfig(
        n_statements=n_statements,
        n_variables=n_variables,
        p_constant_operand=0.3,
        p_nested=0.2,
    )
    block = generate_block(config, random.Random(seed))
    raw = generate_tuples(block)
    opt = optimize(raw)
    env = random_env(block, seed)
    expected = block.execute(env)
    assert interpret(raw, env) == expected
    assert interpret(opt, env) == expected


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_pass_is_individually_semantics_preserving(seed):
    config = GeneratorConfig(n_statements=25, n_variables=6, p_constant_operand=0.35)
    block = generate_block(config, random.Random(seed))
    program = generate_tuples(block)
    env = random_env(block, seed)
    expected = block.execute(env)
    for pass_fn in (
        fold_constants,
        simplify_algebraic,
        eliminate_common_subexpressions,
        eliminate_dead_code,
    ):
        transformed = pass_fn(program)
        assert interpret(transformed, env) == expected, pass_fn.__name__
