"""Tests for the Table 1 instruction set and timing models."""

import pytest

from repro.timing import Interval
from repro.ir.ops import (
    ALU_OPCODES,
    COMMUTATIVE_OPCODES,
    DEFAULT_TIMING,
    OP_FREQUENCIES,
    OP_SYMBOLS,
    SYMBOL_OPS,
    VARIABLE_TIME_OPCODES,
    Opcode,
    TimingModel,
)


class TestTable1:
    """The default model must match Table 1 of the paper exactly."""

    @pytest.mark.parametrize(
        "op,lo,hi",
        [
            (Opcode.LOAD, 1, 4),
            (Opcode.STORE, 1, 1),
            (Opcode.ADD, 1, 1),
            (Opcode.SUB, 1, 1),
            (Opcode.AND, 1, 1),
            (Opcode.OR, 1, 1),
            (Opcode.MUL, 16, 24),
            (Opcode.DIV, 24, 32),
            (Opcode.MOD, 24, 32),
        ],
    )
    def test_latency(self, op, lo, hi):
        assert DEFAULT_TIMING[op] == Interval(lo, hi)
        assert DEFAULT_TIMING.min_time(op) == lo
        assert DEFAULT_TIMING.max_time(op) == hi

    def test_frequencies_sum_to_100(self):
        assert abs(sum(OP_FREQUENCIES.values()) - 100.0) < 1e-9

    def test_frequency_values(self):
        assert OP_FREQUENCIES[Opcode.ADD] == 45.8
        assert OP_FREQUENCIES[Opcode.MOD] == 1.2

    def test_variable_time_opcodes(self):
        assert VARIABLE_TIME_OPCODES == {
            Opcode.LOAD,
            Opcode.MUL,
            Opcode.DIV,
            Opcode.MOD,
        }

    def test_alu_opcode_list_matches_frequencies(self):
        assert set(ALU_OPCODES) == set(OP_FREQUENCIES)


class TestOpcodeClassification:
    def test_memory_ops(self):
        assert Opcode.LOAD.is_memory and Opcode.STORE.is_memory
        assert not Opcode.ADD.is_memory

    def test_alu_ops(self):
        assert Opcode.MUL.is_alu
        assert not Opcode.LOAD.is_alu

    def test_commutative_set(self):
        assert Opcode.ADD in COMMUTATIVE_OPCODES
        assert Opcode.SUB not in COMMUTATIVE_OPCODES
        assert Opcode.DIV not in COMMUTATIVE_OPCODES
        assert Opcode.MOD not in COMMUTATIVE_OPCODES

    def test_symbol_round_trip(self):
        for op, sym in OP_SYMBOLS.items():
            assert SYMBOL_OPS[sym] is op


class TestTimingModel:
    def test_requires_every_opcode(self):
        with pytest.raises(ValueError):
            TimingModel({Opcode.ADD: Interval(1, 1)})

    def test_scaled_preserves_min(self):
        doubled = DEFAULT_TIMING.scaled(2.0)
        assert doubled[Opcode.LOAD] == Interval(1, 7)  # width 3 -> 6
        assert doubled[Opcode.ADD] == Interval(1, 1)

    def test_scaled_zero_is_deterministic(self):
        det = DEFAULT_TIMING.scaled(0.0)
        assert det.variable_opcodes() == frozenset()

    def test_override(self):
        slow_loads = DEFAULT_TIMING.override(load=Interval(1, 8))
        assert slow_loads[Opcode.LOAD] == Interval(1, 8)
        assert slow_loads[Opcode.MUL] == DEFAULT_TIMING[Opcode.MUL]

    def test_fixed_at_max_is_vliw_model(self):
        vliw = DEFAULT_TIMING.fixed_at_max()
        assert vliw[Opcode.LOAD] == Interval(4, 4)
        assert vliw[Opcode.DIV] == Interval(32, 32)
        assert vliw.variable_opcodes() == frozenset()

    def test_names(self):
        assert DEFAULT_TIMING.name == "table1"
        assert "table1" in DEFAULT_TIMING.scaled(2.0).name
