"""Tests for the tuple IR data structures."""

import pytest

from repro.ir.ops import Opcode
from repro.ir.tuples import Imm, IRTuple, Ref, TupleProgram


def t_load(i, var):
    return IRTuple(i, Opcode.LOAD, (), var)


def t_add(i, a, b):
    return IRTuple(i, Opcode.ADD, (a, b))


def t_store(i, var, src):
    return IRTuple(i, Opcode.STORE, (src,), var)


class TestIRTupleValidation:
    def test_load_shape(self):
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.LOAD, (Imm(1),), "x")
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.LOAD, ())  # no var

    def test_store_shape(self):
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.STORE, (), "x")
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.STORE, (Imm(1), Imm(2)), "x")

    def test_alu_shape(self):
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.ADD, (Imm(1),))
        with pytest.raises(ValueError):
            IRTuple(0, Opcode.ADD, (Imm(1), Imm(2)), "x")  # no var allowed

    def test_refs_property(self):
        tup = t_add(2, Ref(0), Imm(5))
        assert tup.refs == (0,)

    def test_render(self):
        assert t_load(0, "i").render() == "Load i"
        assert t_add(2, Ref(0), Ref(1)).render() == "Add 0,1"
        assert t_store(3, "b", Ref(2)).render() == "Store b,2"
        assert t_add(4, Ref(0), Imm(7)).render() == "Add 0,#7"


class TestTupleProgramValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TupleProgram([t_load(0, "x"), t_load(0, "y")])

    def test_decreasing_ids_rejected(self):
        with pytest.raises(ValueError):
            TupleProgram([t_load(1, "x"), t_load(0, "y")])

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            TupleProgram([t_add(0, Ref(1), Ref(1)), t_load(1, "x")])

    def test_gappy_ids_allowed(self):
        program = TupleProgram([t_load(0, "x"), t_add(5, Ref(0), Ref(0))])
        assert program[5].opcode is Opcode.ADD

    def test_getitem_by_id(self):
        program = TupleProgram([t_load(0, "x"), t_add(7, Ref(0), Imm(2))])
        assert program[7].id == 7
        with pytest.raises(KeyError):
            program[3]


class TestQueries:
    def _program(self):
        return TupleProgram(
            [
                t_load(0, "x"),
                t_add(1, Ref(0), Imm(1)),
                t_store(2, "a", Ref(1)),
                t_store(3, "a", Ref(0)),
                t_store(4, "b", Ref(1)),
            ]
        )

    def test_use_counts(self):
        counts = self._program().use_counts()
        assert counts[0] == 2 and counts[1] == 2 and counts[2] == 0

    def test_final_stores(self):
        finals = self._program().final_stores()
        assert finals["a"].id == 3 and finals["b"].id == 4

    def test_opcode_histogram(self):
        hist = self._program().opcode_histogram()
        assert hist[Opcode.STORE] == 3 and hist[Opcode.LOAD] == 1


class TestFilterReplace:
    def test_drop_and_substitute(self):
        program = TupleProgram(
            [
                t_load(0, "x"),
                t_add(1, Ref(0), Imm(0)),  # to be replaced by Ref(0)
                t_store(2, "a", Ref(1)),
            ]
        )
        out = program.filter_replace([0, 2], {1: Ref(0)})
        assert [t.id for t in out] == [0, 2]
        assert out[2].operands == (Ref(0),)

    def test_replacement_chain_followed(self):
        program = TupleProgram(
            [
                t_load(0, "x"),
                t_add(1, Ref(0), Imm(0)),
                t_add(2, Ref(1), Imm(0)),
                t_store(3, "a", Ref(2)),
            ]
        )
        out = program.filter_replace([0, 3], {2: Ref(1), 1: Ref(0)})
        assert out[3].operands == (Ref(0),)

    def test_cyclic_chain_detected(self):
        program = TupleProgram([t_load(0, "x"), t_store(1, "a", Ref(0))])
        with pytest.raises(ValueError):
            program.filter_replace([1], {0: Ref(0)})

    def test_render_lists_like_figure1(self):
        text = self._sample().render()
        assert "Load x" in text and "Store a,1" in text

    def _sample(self):
        return TupleProgram(
            [t_load(0, "x"), t_add(1, Ref(0), Imm(1)), t_store(2, "a", Ref(1))]
        )
