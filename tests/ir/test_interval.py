"""Unit and property tests for the interval arithmetic foundation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timing import Interval, ZERO, interval_max, interval_sum

intervals = st.builds(
    lambda lo, w: Interval(lo, lo + w),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)


class TestConstruction:
    def test_point(self):
        iv = Interval.point(5)
        assert iv.lo == iv.hi == 5
        assert iv.is_point

    def test_of_single(self):
        assert Interval.of(3) == Interval(3, 3)

    def test_of_pair(self):
        assert Interval.of(1, 4) == Interval(1, 4)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(-1, 2)

    def test_zero_constant(self):
        assert ZERO.lo == 0 and ZERO.hi == 0

    def test_width(self):
        assert Interval(1, 4).width == 3
        assert Interval(7, 7).width == 0


class TestArithmetic:
    def test_add_intervals(self):
        assert Interval(1, 4) + Interval(2, 3) == Interval(3, 7)

    def test_add_int(self):
        assert Interval(1, 4) + 2 == Interval(3, 6)
        assert 2 + Interval(1, 4) == Interval(3, 6)

    def test_join_takes_max_of_both_bounds(self):
        # Figure 13 rule: region min is the max of participant minima.
        assert Interval(4, 6).join(Interval(5, 5)) == Interval(5, 6)

    def test_or_operator_is_join(self):
        assert (Interval(1, 2) | Interval(2, 3)) == Interval(2, 3)

    def test_hull(self):
        assert Interval(3, 5).hull(Interval(1, 4)) == Interval(1, 5)

    def test_interval_sum(self):
        assert interval_sum([Interval(1, 2), Interval(3, 4)]) == Interval(4, 6)
        assert interval_sum([]) == ZERO

    def test_interval_max(self):
        assert interval_max([Interval(1, 5), Interval(2, 3)]) == Interval(2, 5)
        assert interval_max([]) == ZERO
        assert interval_max([], default=Interval(1, 1)) == Interval(1, 1)


class TestOrderingPredicates:
    def test_definitely_before(self):
        assert Interval(1, 3).definitely_before(Interval(3, 9))
        assert not Interval(1, 4).definitely_before(Interval(3, 9))

    def test_overlaps(self):
        assert Interval(1, 4).overlaps(Interval(4, 9))
        assert Interval(1, 4).overlaps(Interval(2, 3))
        assert not Interval(1, 4).overlaps(Interval(5, 9))

    def test_contains(self):
        assert 2 in Interval(1, 4)
        assert 5 not in Interval(1, 4)

    def test_iter_yields_bounds(self):
        assert list(Interval(1, 4)) == [1, 4]


class TestScale:
    def test_scale_widens_about_min(self):
        assert Interval(2, 6).scale(2.0) == Interval(2, 10)

    def test_scale_zero_collapses(self):
        assert Interval(2, 6).scale(0.0) == Interval(2, 2)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(1, 2).scale(-1.0)


class TestProperties:
    @given(intervals, intervals)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(intervals, intervals)
    def test_join_commutes_and_idempotent(self, a, b):
        assert a.join(b) == b.join(a)
        assert a.join(a) == a

    @given(intervals, intervals, intervals)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(intervals, intervals, intervals)
    def test_add_distributes_over_join(self, a, b, c):
        # max-plus semiring law: c + max(a,b) == max(c+a, c+b)
        assert c + a.join(b) == (c + a).join(c + b)

    @given(intervals, intervals)
    def test_hull_contains_both(self, a, b):
        h = a.hull(b)
        assert h.lo <= min(a.lo, b.lo) and h.hi >= max(a.hi, b.hi)

    @given(intervals, intervals)
    def test_definitely_before_excludes_overlap_interior(self, a, b):
        if a.definitely_before(b) and b.definitely_before(a):
            # only possible when both are the same single point
            assert a.is_point and b.is_point and a == b

    @given(intervals)
    def test_zero_is_additive_identity(self, a):
        assert a + ZERO == a
