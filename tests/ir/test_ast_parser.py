"""Tests for the mini-language AST, evaluation semantics, and parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Var, apply_op
from repro.ir.ops import Opcode
from repro.ir.parser import ParseError, parse_block, parse_expr, tokenize


class TestApplyOp:
    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.MUL, -3, 4, -12),
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -4),  # floor division
            (Opcode.MOD, 7, 3, 1),
            (Opcode.MOD, -7, 3, 2),  # Python modulo sign
        ],
    )
    def test_values(self, op, l, r, expected):
        assert apply_op(op, l, r) == expected

    def test_division_by_zero_is_total(self):
        assert apply_op(Opcode.DIV, 42, 0) == 0
        assert apply_op(Opcode.MOD, 42, 0) == 0

    def test_rejects_memory_ops(self):
        with pytest.raises(ValueError):
            apply_op(Opcode.LOAD, 1, 2)


class TestAst:
    def test_binop_rejects_memory_opcode(self):
        with pytest.raises(ValueError):
            BinOp(Opcode.STORE, Var("a"), Var("b"))

    def test_expression_evaluation(self):
        expr = BinOp(Opcode.ADD, Var("x"), BinOp(Opcode.MUL, Const(2), Var("y")))
        assert expr.evaluate({"x": 1, "y": 10}) == 21

    def test_variables_iterates_with_repeats(self):
        expr = BinOp(Opcode.ADD, Var("x"), Var("x"))
        assert list(expr.variables()) == ["x", "x"]

    def test_live_in_variables(self):
        block = parse_block("a = x + y\nx = a + x\nz = q - 1")
        assert block.live_in_variables() == ("x", "y", "q")

    def test_assigned_variables(self):
        block = parse_block("a = 1 + 2\nb = a + 1\na = b - 1")
        assert block.assigned_variables() == ("a", "b")

    def test_execute_returns_final_values(self):
        block = parse_block("a = x + 1\na = a * 2\nb = a - x")
        out = block.execute({"x": 5})
        assert out == {"a": 12, "b": 7}

    def test_source_round_trip(self):
        block = parse_block("a = (x + y) * 3\nb = a % 7")
        again = parse_block(block.source())
        assert again == block


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("a = b + 42")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "punct", "ident", "punct", "int", "eof"]

    def test_comments_ignored(self):
        tokens = tokenize("a = 1 // trailing comment\n// whole line\nb = 2")
        assert sum(1 for t in tokens if t.kind == "ident") == 2

    def test_bad_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("a = b $ c")
        assert err.value.column == 7

    def test_malformed_number(self):
        with pytest.raises(ParseError):
            tokenize("a = 12x")


class TestParser:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, BinOp) and expr.op is Opcode.ADD
        assert isinstance(expr.right, BinOp) and expr.right.op is Opcode.MUL

    def test_precedence_and_over_or(self):
        expr = parse_expr("a | b & c")
        assert expr.op is Opcode.OR
        assert isinstance(expr.right, BinOp) and expr.right.op is Opcode.AND

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        # (a - b) - c
        assert expr.op is Opcode.SUB
        assert isinstance(expr.left, BinOp)
        assert isinstance(expr.left.left, Var) and expr.left.left.name == "a"

    def test_parentheses(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op is Opcode.MUL

    def test_optional_semicolons(self):
        with_semi = parse_block("a = 1;\nb = 2;")
        without = parse_block("a = 1\nb = 2")
        assert with_semi == without

    def test_missing_rhs(self):
        with pytest.raises(ParseError):
            parse_block("a = ")

    def test_missing_close_paren(self):
        with pytest.raises(ParseError):
            parse_block("a = (b + c")

    def test_statement_must_start_with_ident(self):
        with pytest.raises(ParseError):
            parse_block("3 = a + b")

    def test_trailing_garbage_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")

    def test_empty_block(self):
        assert len(parse_block("")) == 0
        assert len(parse_block("// only a comment\n")) == 0

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError) as err:
            parse_block("a = b +\nc = ) d")
        assert err.value.line == 2


# -- property: pretty-print round trip ------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y", "z"])
_ops = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.MUL, Opcode.DIV, Opcode.MOD]
)


def _exprs(depth: int = 3):
    leaf = st.one_of(
        st.builds(Var, _names),
        st.builds(Const, st.integers(min_value=0, max_value=999)),
    )
    return st.recursive(
        leaf,
        lambda inner: st.builds(BinOp, _ops, inner, inner),
        max_leaves=8,
    )


@given(st.lists(st.tuples(_names, _exprs()), min_size=1, max_size=6))
def test_block_source_round_trip(pairs):
    block = BasicBlock(tuple(Assign(name, expr) for name, expr in pairs))
    assert parse_block(block.source()) == block


@given(_exprs(), st.dictionaries(_names, st.integers(-50, 50)))
def test_parsed_expression_evaluates_identically(expr, env):
    full_env = {name: env.get(name, 7) for name in ["a", "b", "c", "x", "y", "z"]}
    reparsed = parse_expr(str(expr))
    assert reparsed.evaluate(full_env) == expr.evaluate(full_env)
