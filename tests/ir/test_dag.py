"""Tests for the instruction DAG: construction, levels, critical path."""

import networkx as nx
import pytest

from repro.timing import Interval
from repro.ir import compile_source
from repro.ir.dag import CycleError, ENTRY, EXIT, InstructionDAG
from repro.ir.ops import DEFAULT_TIMING, Opcode
from repro.ir.parser import parse_block
from repro.ir.codegen import generate_tuples
from repro.ir.optimizer import optimize

from tests.conftest import chain_dag, diamond_dag


class TestBuild:
    def test_dummy_wiring(self):
        dag = diamond_dag()
        assert set(dag.succs(ENTRY)) == {"a"}
        assert set(dag.preds(EXIT)) == {"d"}
        assert len(dag) == 4

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            InstructionDAG.build(
                {1: Interval(1, 1), 2: Interval(1, 1)}, [(1, 2), (2, 1)]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError):
            InstructionDAG.build({1: Interval(1, 1)}, [(1, 1)])

    def test_unknown_node_in_edge(self):
        with pytest.raises(ValueError):
            InstructionDAG.build({1: Interval(1, 1)}, [(1, 2)])

    def test_duplicate_operand_gives_one_edge(self):
        source = "a = x + x"
        dag = compile_source(source)
        add = [n for n in dag.real_nodes if dag.tuple_of(n).opcode is Opcode.ADD][0]
        assert len(dag.real_preds(add)) == 1

    def test_empty_program(self):
        dag = InstructionDAG.build({}, [])
        assert len(dag) == 0
        assert dag.critical_path() == Interval(0, 0)

    def test_topological_real_nodes(self):
        dag = diamond_dag()
        order = {n: k for k, n in enumerate(dag.real_nodes)}
        for u, v in dag.real_edges():
            assert order[u] < order[v]

    def test_pickle_roundtrip_filters_dummies(self):
        # An unpickled dag carries non-interned ENTRY/EXIT strings, so
        # the dummy filters must compare by value, not identity.  A
        # dag returned from a process-pool worker is exactly this case;
        # leaked pseudo edges used to crash trace verification.
        import pickle

        dag = compile_source("a = x + y\nb = a * z")
        clone = pickle.loads(pickle.dumps(dag))
        assert clone.real_nodes == dag.real_nodes
        assert list(clone.real_edges()) == list(dag.real_edges())
        for n in clone.real_nodes:
            assert ENTRY not in clone.real_preds(n)
            assert EXIT not in clone.real_succs(n)


class TestFromProgram:
    def test_edges_follow_refs(self):
        program = optimize(generate_tuples(parse_block("a = x + y\nb = a - x")))
        dag = InstructionDAG.from_program(program)
        by_op = {dag.tuple_of(n).opcode: n for n in dag.real_nodes}
        sub = by_op[Opcode.SUB]
        add = by_op[Opcode.ADD]
        assert add in dag.real_preds(sub)

    def test_latencies_from_timing_model(self):
        dag = compile_source("a = x * y")
        mul = [n for n in dag.real_nodes if dag.tuple_of(n).opcode is Opcode.MUL][0]
        assert dag.latency(mul) == DEFAULT_TIMING[Opcode.MUL]

    def test_implied_synchronizations_counts_real_edges_only(self):
        dag = compile_source("a = x + y")
        # Load x -> Add, Load y -> Add, Add -> Store: 3 edges
        assert dag.implied_synchronizations == 3


class TestLevels:
    def test_figure1_levels(self):
        """The min/max finish columns of figure 1 for 'b = i + a'."""
        dag = compile_source("b = i + a", run_optimizer=False)
        levels = dag.finish_levels()
        by_render = {dag.tuple_of(n).render(): levels[n] for n in dag.real_nodes}
        assert by_render["Load i"] == Interval(1, 4)
        assert by_render["Load a"] == Interval(1, 4)
        assert by_render["Add 0,1"] == Interval(2, 5)
        assert by_render["Store b,2"] == Interval(3, 6)

    def test_chain_critical_path(self):
        dag = chain_dag([(1, 4), (1, 1), (16, 24)])
        assert dag.critical_path() == Interval(18, 29)

    def test_diamond_critical_path_takes_slow_arm(self):
        dag = diamond_dag()
        # a[1,4] + c[16,24] + d[1,1]
        assert dag.critical_path() == Interval(18, 29)

    def test_parallelism_width(self):
        dag = diamond_dag()
        total = 4 + 1 + 24 + 1
        assert dag.parallelism_width() == pytest.approx(total / 29)


class TestInterop:
    def test_to_networkx(self):
        dag = diamond_dag()
        graph = dag.to_networkx()
        assert set(graph.nodes) == {"a", "b", "c", "d"}
        assert graph.number_of_edges() == 4
        assert nx.is_directed_acyclic_graph(graph)

    def test_to_networkx_with_dummies(self):
        dag = diamond_dag()
        graph = dag.to_networkx(include_dummies=True)
        assert ENTRY in graph.nodes and EXIT in graph.nodes

    def test_render_contains_nodes(self):
        text = compile_source("a = x + y").render()
        assert "Load" in text and "Store" in text

    def test_payloads(self):
        dag = compile_source("a = x + 1")
        for node in dag.real_nodes:
            assert dag.tuple_of(node).id == node

    def test_tuple_of_raises_without_payload(self):
        dag = diamond_dag()
        with pytest.raises(KeyError):
            dag.tuple_of("a")
