"""Backend dispatch policy and python/numpy parity (:mod:`repro.kernels`).

The pure-python loops are the specification; the numpy kernels are
accelerators that must be bit-identical.  These tests pin

* the ``REPRO_BACKEND`` dispatch contract (python / numpy / auto, the
  per-kernel size thresholds, check-mode override, invalid values);
* corpus ``results_digest`` parity between backends -- with
  ``REPRO_CHECK_KERNELS=1`` forcing every kernel on (so small corpora
  actually exercise them) and with ``REPRO_CHECK_INCREMENTAL=1``
  layered on top;
* the bit-matrix pack/unpack round trip at word boundaries.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.cli import main
from repro.core.scheduler import SchedulerConfig
from repro.experiments.sweeps import ExperimentPoint, run_corpus
from repro.obs.metrics import collect_metrics
from repro.perf.parallel import results_digest
from repro.synth.generator import GeneratorConfig


def corpus_digest(n_pes=8, n_statements=24, count=6, master_seed=11):
    point = ExperimentPoint(
        generator=GeneratorConfig(n_statements=n_statements, n_variables=8),
        scheduler=SchedulerConfig(n_pes=n_pes),
        count=count,
        master_seed=master_seed,
    )
    return results_digest(run_corpus(point, jobs=1))


class TestDispatchPolicy:
    def test_python_setting_never_engages(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        for kernel in kernels.THRESHOLDS:
            assert not kernels.use_numpy(kernel, 10**6)
        assert kernels.resolved_backend() == "python"

    @pytest.mark.parametrize("setting", ["auto", "numpy"])
    def test_thresholds_gate_every_backend(self, monkeypatch, setting):
        monkeypatch.setenv("REPRO_BACKEND", setting)
        monkeypatch.delenv("REPRO_CHECK_KERNELS", raising=False)
        for kernel, threshold in kernels.THRESHOLDS.items():
            assert not kernels.use_numpy(kernel, threshold - 1)
            assert kernels.use_numpy(kernel, threshold) == kernels.have_numpy()

    def test_check_mode_overrides_thresholds(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_CHECK_KERNELS", "1")
        for kernel in kernels.THRESHOLDS:
            assert kernels.use_numpy(kernel, 1) == kernels.have_numpy()

    def test_empty_setting_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert kernels.backend_setting() == "auto"
        monkeypatch.delenv("REPRO_BACKEND")
        assert kernels.backend_setting() == "auto"

    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            kernels.backend_setting()
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            kernels.use_numpy("assign", 10**6)

    def test_invalid_backend_is_cli_exit_two(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        rc = main(
            ["perf", "--count", "1", "--jobs", "1", "-o", "-",
             "--no-trajectory"]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith("repro-sbm: error:")

    def test_cli_backend_flag_scopes_environment(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        rc = main(
            ["perf", "--count", "1", "--jobs", "1", "--backend", "python",
             "-o", "-", "--no-trajectory"]
        )
        assert rc == 0
        assert '"setting": "python"' in capsys.readouterr().out
        import os

        assert "REPRO_BACKEND" not in os.environ  # scope was restored

    def test_kernels_info_shape(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        info = kernels.kernels_info()
        assert info["setting"] == "auto"
        assert info["resolved"] in ("python", "numpy")
        assert info["thresholds"] == kernels.THRESHOLDS
        assert isinstance(info["calls"], dict)

    def test_count_tallies_module_and_registry(self):
        kernels.reset_calls()
        with collect_metrics() as metrics:
            kernels.count("assign", "numpy")
            kernels.count("assign", "python")
            kernels.count("assign", "numpy")
        calls = kernels.kernels_info()["calls"]
        assert calls["kernels.calls.assign.numpy"] == 2
        assert calls["kernels.calls.assign.python"] == 1
        counters = metrics.as_dict()["counters"]
        assert counters["kernels.backend.numpy"] == 2
        kernels.reset_calls()
        assert kernels.kernels_info()["calls"] == {}

    def test_verify_counts_and_raises_on_mismatch(self):
        with collect_metrics() as metrics:
            kernels.verify("merge", [1, 2], [1, 2])
            with pytest.raises(AssertionError, match="cross-check"):
                kernels.verify("merge", [1, 2], [1, 3])
        counters = metrics.as_dict()["counters"]
        assert counters["kernels.check.checked"] == 2
        assert counters["kernels.check.mismatches"] == 1


class TestDigestParity:
    """Scheduling results must be bit-identical across backends."""

    def test_forced_kernels_match_python(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_BACKEND", "python")
        baseline = corpus_digest()
        # Check mode forces every kernel on AND cross-checks each call
        # against the python implementation in-line.
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_CHECK_KERNELS", "1")
        with collect_metrics() as metrics:
            checked = corpus_digest()
        assert checked == baseline
        counters = metrics.as_dict()["counters"]
        assert counters.get("kernels.check.checked", 0) > 0
        assert counters.get("kernels.check.mismatches", 0) == 0

    def test_forced_kernels_match_python_with_incremental_checks(
        self, monkeypatch
    ):
        pytest.importorskip("numpy")
        monkeypatch.setenv("REPRO_BACKEND", "python")
        baseline = corpus_digest(n_statements=30, count=4, master_seed=3)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_CHECK_KERNELS", "1")
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        assert (
            corpus_digest(n_statements=30, count=4, master_seed=3) == baseline
        )

    def test_natural_threshold_crossing_matches_python(self, monkeypatch):
        # 128 PEs crosses the assign threshold without check mode: the
        # vectorized step-[2] scan must draw identical tie-break choices.
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_CHECK_KERNELS", raising=False)
        monkeypatch.setenv("REPRO_BACKEND", "python")
        baseline = corpus_digest(n_pes=128, n_statements=40, count=4)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        kernels.reset_calls()
        assert corpus_digest(n_pes=128, n_statements=40, count=4) == baseline
        calls = kernels.kernels_info()["calls"]
        assert calls.get("kernels.calls.assign.numpy", 0) > 0


class TestBitsetPacking:
    """Word-boundary round trips of the uint64 bit-matrix layout."""

    @pytest.mark.parametrize("n_bits", [1, 63, 64, 65, 127, 128, 1024])
    def test_pack_unpack_round_trip(self, n_bits):
        pytest.importorskip("numpy")
        from repro.kernels.bitset import pack_rows, unpack_rows

        rows = [
            0,
            (1 << n_bits) - 1,
            1 << (n_bits - 1),
            sum(1 << b for b in range(0, n_bits, 7)),
        ]
        assert unpack_rows(pack_rows(rows, n_bits)) == rows
