"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.timing import Interval
from repro.ir import compile_source, parse_block
from repro.ir.dag import InstructionDAG
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

# A hand-written block exercising every opcode, loads, dead stores, CSE
# opportunities and constant folding.
SAMPLE_SOURCE = """
b = i + a
f = f & d
e = f - x
i = (j + f) - i
a = a + b
h = f & d
g = c + e
k = 2 * 3
m = k / 0
n = b % 5
p = b * c
q = b | e
"""

# The figure 1 benchmark from the paper (reconstructed from the tuple
# listing): statements chosen so code generation + optimization yield the
# same shapes of tuples as the figure.
FIGURE1_SOURCE = """
b = i + a
i = (f + j) - i
a = a + b
h = f & d
e = h - f
g = c + e
"""


@pytest.fixture
def sample_dag() -> InstructionDAG:
    return compile_source(SAMPLE_SOURCE)


@pytest.fixture
def sample_block():
    return parse_block(SAMPLE_SOURCE)


@pytest.fixture
def figure1_dag() -> InstructionDAG:
    return compile_source(FIGURE1_SOURCE)


def make_case(
    n_statements: int = 30,
    n_variables: int = 8,
    seed: int = 0,
):
    """Compile one synthetic benchmark (convenience for tests)."""
    return compile_case(
        GeneratorConfig(n_statements=n_statements, n_variables=n_variables), seed
    )


def random_env(block, seed: int = 0) -> dict[str, int]:
    """An initial memory binding every live-in variable of ``block``."""
    rng = random.Random(seed)
    return {name: rng.randint(-100, 100) for name in block.live_in_variables()}


def chain_dag(lengths: list[tuple[int, int]]) -> InstructionDAG:
    """A single dependence chain with the given (min,max) latencies."""
    latencies = {k: Interval(lo, hi) for k, (lo, hi) in enumerate(lengths)}
    edges = [(k, k + 1) for k in range(len(lengths) - 1)]
    return InstructionDAG.build(latencies, edges)


def diamond_dag() -> InstructionDAG:
    """a -> {b, c} -> d with mixed latencies."""
    latencies = {
        "a": Interval(1, 4),
        "b": Interval(1, 1),
        "c": Interval(16, 24),
        "d": Interval(1, 1),
    }
    edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    return InstructionDAG.build(latencies, edges)
