"""JSON serialization for machine programs, traces, and result summaries.

A compiled :class:`~repro.machine.program.MachineProgram` is the natural
interchange artifact: it is exactly what a barrier-MIMD loader would
consume (per-PE streams, barrier masks, queue order) and exactly what
the simulators execute.  This module round-trips it through plain JSON
so schedules can be archived, diffed, or executed in another process:

* :func:`program_to_json` / :func:`program_from_json`;
* :func:`trace_to_json` for execution traces;
* :func:`result_summary` for the scheduler-statistics record an
  experiment pipeline would log per benchmark;
* :func:`save_program` / :func:`load_program` file helpers.

Node ids are restricted to ints and strings (everything the compiler
front end produces); other id types are rejected with a clear error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.barriers.mask import BarrierMask
from repro.core.scheduler import ScheduleResult
from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import ExecutionTrace
from repro.metrics.fractions import fractions_of
from repro.timing import Interval

__all__ = [
    "program_to_json",
    "program_from_json",
    "save_program",
    "load_program",
    "trace_to_json",
    "result_summary",
]

_FORMAT = "repro.machine-program.v1"


def _encode_node(node: Any) -> list:
    if isinstance(node, bool) or not isinstance(node, (int, str)):
        raise TypeError(
            f"only int/str node ids are serializable, got {type(node).__name__}"
        )
    return ["i", node] if isinstance(node, int) else ["s", node]


def _decode_node(enc: list) -> Any:
    tag, value = enc
    if tag == "i":
        return int(value)
    if tag == "s":
        return str(value)
    raise ValueError(f"unknown node tag {tag!r}")


def program_to_json(program: MachineProgram) -> dict:
    """Encode a machine program as a JSON-compatible dict."""
    streams = []
    for stream in program.streams:
        items = []
        for item in stream:
            if isinstance(item, BarrierRef):
                items.append({"wait": item.barrier_id})
            else:
                items.append(
                    {
                        "node": _encode_node(item.node),
                        "lat": [item.latency.lo, item.latency.hi],
                        "mn": item.mnemonic,
                    }
                )
        streams.append(items)
    data = {
        "format": _FORMAT,
        "n_pes": program.n_pes,
        "streams": streams,
        "masks": {str(bid): list(mask) for bid, mask in program.masks.items()},
        "barrier_order": list(program.barrier_order),
        "initial_barrier_id": program.initial_barrier_id,
        "edges": [[_encode_node(g), _encode_node(i)] for g, i in program.edges],
        "barrier_latency": program.barrier_latency,
    }
    if program.guards:
        data["guards"] = [
            [_encode_node(consumer), [_encode_node(p) for p in producers]]
            for consumer, producers in sorted(
                program.guards.items(), key=lambda kv: str(kv[0])
            )
        ]
    return data


def program_from_json(data: dict) -> MachineProgram:
    """Decode :func:`program_to_json` output back into a machine program."""
    if data.get("format") != _FORMAT:
        raise ValueError(
            f"unsupported format {data.get('format')!r}; expected {_FORMAT!r}"
        )
    n_pes = int(data["n_pes"])
    streams = []
    for raw_stream in data["streams"]:
        items = []
        for item in raw_stream:
            if "wait" in item:
                items.append(BarrierRef(int(item["wait"])))
            else:
                lo, hi = item["lat"]
                items.append(
                    MachineOp(
                        _decode_node(item["node"]),
                        Interval(int(lo), int(hi)),
                        item.get("mn", ""),
                    )
                )
        streams.append(tuple(items))
    masks = {
        int(bid): BarrierMask.from_pes([int(p) for p in pes], n_pes)
        for bid, pes in data["masks"].items()
    }
    edges = tuple(
        (_decode_node(g), _decode_node(i)) for g, i in data["edges"]
    )
    guards = {
        _decode_node(consumer): tuple(_decode_node(p) for p in producers)
        for consumer, producers in data.get("guards", [])
    }
    return MachineProgram(
        n_pes=n_pes,
        streams=tuple(streams),
        masks=masks,
        barrier_order=tuple(int(b) for b in data["barrier_order"]),
        initial_barrier_id=int(data["initial_barrier_id"]),
        edges=edges,
        barrier_latency=int(data.get("barrier_latency", 0)),
        guards=guards,
    )


def save_program(program: MachineProgram, path: str | Path) -> None:
    """Write a machine program to a JSON file."""
    Path(path).write_text(json.dumps(program_to_json(program), indent=1))


def load_program(path: str | Path) -> MachineProgram:
    """Read a machine program from a JSON file."""
    return program_from_json(json.loads(Path(path).read_text()))


def trace_to_json(trace: ExecutionTrace) -> dict:
    """Encode one execution trace (start/finish/fires/makespan)."""
    return {
        "machine": trace.machine,
        "makespan": trace.makespan,
        "start": [[_encode_node(n), t] for n, t in sorted(
            trace.start.items(), key=lambda kv: str(kv[0])
        )],
        "finish": [[_encode_node(n), t] for n, t in sorted(
            trace.finish.items(), key=lambda kv: str(kv[0])
        )],
        "barrier_fire": {str(b): t for b, t in trace.barrier_fire.items()},
        "pe_finish": list(trace.pe_finish),
    }


def result_summary(result: ScheduleResult) -> dict:
    """The per-benchmark record an experiment pipeline would log."""
    fr = fractions_of(result)
    c = result.counts
    return {
        "n_pes": result.config.n_pes,
        "machine": result.config.machine,
        "insertion": result.config.insertion,
        "seed": result.config.seed,
        "total_edges": c.total_edges,
        "serialized_edges": c.serialized_edges,
        "static_edges": c.static_edges,
        "barrier_edges": c.barrier_edges,
        "barriers_final": c.barriers_final,
        "merges": c.merges,
        "repairs": c.repairs,
        "fractions": {
            "barrier": fr.barrier,
            "serialized": fr.serialized,
            "static": fr.static,
        },
        "makespan": [result.makespan.lo, result.makespan.hi],
        "processors_used": result.schedule.used_processors(),
    }
