"""The ``repro-sbm perf`` harness: a standard sweep, timed end to end.

Emits a machine-readable ``BENCH_*.json`` record -- per-stage timings,
wall time, environment, and the swept headline numbers -- so the repo
has a performance *trajectory*: each data point is comparable with the
checked-in baseline (``benchmarks/data/BENCH_perf_baseline.json``) and
the CI perf-smoke job fails when end-to-end wall time regresses past
2x the baseline.

The workload is deliberately fixed: a ``generator.n_statements`` sweep
over a mid-size corpus plus one simulation pass, exercising every
instrumented stage (generate / schedule / insert / merge / simulate).
The *scheduling results* inside a report are deterministic in the master
seed; only the timings vary by machine.  Result caching is bypassed --
a perf run that skipped its own work would measure nothing.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro import __version__, kernels
from repro.core.scheduler import SchedulerConfig
from repro.machine.program import MachineProgram
from repro.machine.sbm import simulate_sbm
from repro.obs import progress as obs_progress
from repro.obs.metrics import collect_metrics
from repro.obs.prof import Profiler, collect_profile
from repro.obs.runtime import analyze_trace
from repro.perf.parallel import resolve_jobs, results_digest
from repro.perf.timers import STAGES, collect_timings
from repro.synth.generator import GeneratorConfig

__all__ = [
    "PerfReport",
    "run_perf_report",
    "trajectory_entry",
    "append_trajectory",
    "DEFAULT_TRAJECTORY",
    "PRESETS",
    "PRESET_COUNTS",
    "TRAJECTORY_FORMAT",
]

_FORMAT = "repro.perf-report.v1"

TRAJECTORY_FORMAT = "repro.perf-trajectory.v1"

#: Where ``repro-sbm perf`` appends its trajectory series by default
#: (relative to the working directory, i.e. the repo root in CI).
DEFAULT_TRAJECTORY = Path("benchmarks") / "data" / "BENCH_trajectory.jsonl"

#: The standard sweep axis and values of the perf workload.
PERF_AXIS = "generator.n_statements"
PERF_VALUES: tuple[int, ...] = (10, 20, 30)

#: Benchmarks simulated (one run each) to exercise the simulate stage.
SIMULATED_CASES = 10

#: Named workloads: each preset is a tuple of sweep legs
#: ``(axis, values, base overrides)``, overrides being dotted axes
#: applied to the base point before the leg's sweep.
#:
#: ``default``
#:     The original mid-size smoke workload (3 points).
#: ``paper3500``
#:     The paper-scale evaluation: 35 sweep points x 100 benchmarks =
#:     3500 scheduled benchmarks (PAPER.md section 5) -- a size sweep,
#:     a machine-width sweep up to 1024 PEs, and the paper's ablations
#:     (round-robin assignment, the DBM, optimal insertion).
#: ``scale1024``
#:     The 1024-PE stress leg on its own: the workload behind the CI
#:     numpy-vs-python speed gate and the committed scaling record.
PRESETS: dict[str, tuple[tuple[str, tuple, dict], ...]] = {
    "default": ((PERF_AXIS, PERF_VALUES, {}),),
    "paper3500": (
        (PERF_AXIS, (10, 15, 20, 25, 30, 35, 40, 50, 60, 80), {}),
        ("scheduler.n_pes", (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024), {}),
        (PERF_AXIS, (10, 20, 30, 40, 50), {"scheduler.assignment": "roundrobin"}),
        (PERF_AXIS, (10, 20, 30, 40, 50), {"scheduler.machine": "dbm"}),
        (PERF_AXIS, (10, 20, 30, 40, 50), {"scheduler.insertion": "optimal"}),
    ),
    "scale1024": (
        (PERF_AXIS, (40, 60, 80), {"scheduler.n_pes": 1024}),
    ),
}

#: Default benchmarks per sweep point, by preset.
PRESET_COUNTS: dict[str, int] = {
    "default": 25,
    "paper3500": 100,
    "scale1024": 100,
}


@dataclass(frozen=True)
class PerfReport:
    """One perf-trajectory data point, JSON-shaped."""

    data: dict

    @property
    def wall_s(self) -> float:
        return self.data["wall_s"]

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.data, indent=1, sort_keys=True) + "\n")
        return path

    def render(self) -> str:
        d = self.data
        stage_cpu = d["stages"].get("cpu", {})
        stages = "  ".join(
            f"{s} {d['stages'][s]:.3f}s"
            + (f"/{stage_cpu[s]:.3f}c" if s in stage_cpu else "")
            for s in STAGES
        )
        preset = d.get("preset", "default")
        wall_line = f"wall {d['wall_s']:.3f}s"
        if d.get("cases_per_s"):
            wall_line += f" ({d['cases_per_s']:.1f} cases/s)"
        lines = [
            f"perf report ({d['format']})  repro {d['version']}  "
            f"python {d['python']}  jobs={d['jobs']}/{d['cpu_count']} cpus",
            f"workload: preset {preset}, {len(d['points'])} sweep points "
            f"x {d['count']} benchmarks + {d['simulated_cases']} simulations",
            f"{wall_line}   {stages}",
            f"results digest {d['results_digest'][:16]}...",
        ]
        for i, leg in enumerate(d.get("legs", ())):
            if "wall_s" in leg:
                lines.append(
                    f"  leg {i} {leg['axis']}: {leg['cases']} cases  "
                    f"wall {leg['wall_s']:.3f}s  "
                    f"{leg['cases_per_s']:.1f} cases/s"
                )
        profile = d.get("profile")
        if profile and (profile.get("kernels") or profile.get("peak_rss")):
            # An all-zero profile (REPRO_OBS_DISABLE=1) prints nothing.
            lines.append(Profiler.from_dict(profile).render(top=3))
        backend = d.get("backend")
        if backend:
            calls = backend.get("calls", {})
            numpy_calls = sum(
                n for key, n in calls.items() if key.endswith(".numpy")
            )
            python_calls = sum(
                n for key, n in calls.items() if key.endswith(".python")
            )
            lines.append(
                f"backend {backend.get('resolved')} "
                f"(setting {backend.get('setting')}, "
                f"check {'on' if backend.get('checking') else 'off'}); "
                f"kernel calls numpy {numpy_calls} python {python_calls}"
            )
        counters = d.get("metrics", {}).get("counters", {})
        checked = counters.get("views.check.checked", 0)
        if checked:
            lines.append(
                f"incremental cross-check: {checked} views checked, "
                f"{counters.get('views.check.mismatches', 0)} mismatches"
            )
        for row in d["points"]:
            axis = row.get("axis", d["axis"])
            lines.append(
                f"  {axis}={row['value']:<4} barrier {row['barrier']:.3f} "
                f"serialized {row['serialized']:.3f} static {row['static']:.3f} "
                f"barriers {row['mean_barriers']:.2f}"
            )
        return "\n".join(lines)


def trajectory_entry(data: dict, label: str = "") -> dict:
    """Reduce one perf-report record to a trajectory-series line.

    The trajectory keeps only what the watchdog
    (:mod:`repro.obs.watch`) compares across runs: identity, timings
    per stage, throughput, the headline sweep numbers, the
    ``results_digest`` that separates behaviour changes from perf
    changes, and a trimmed resource profile (per-kernel timings, GC,
    peak RSS) so ``watch --explain`` can attribute a flagged
    regression.  Works on a live report's ``.data`` and on any
    committed ``BENCH_*.json``.
    """
    profile = data.get("profile") or {}
    return {
        "format": TRAJECTORY_FORMAT,
        "label": label,
        "created_unix": data.get("created_unix", time.time()),
        "version": data.get("version"),
        "python": data.get("python"),
        "platform": data.get("platform"),
        "jobs": data.get("jobs"),
        "count": data.get("count"),
        "master_seed": data.get("master_seed"),
        "preset": data.get("preset", "default"),
        "backend": (data.get("backend") or {}).get("resolved"),
        "wall_s": data.get("wall_s"),
        "cases_per_s": data.get("cases_per_s"),
        "stages": dict(data.get("stages", {})),
        "legs": [
            {
                "axis": leg.get("axis"),
                "cases": leg.get("cases"),
                "wall_s": leg.get("wall_s"),
                "cases_per_s": leg.get("cases_per_s"),
            }
            for leg in data.get("legs", ())
            if "wall_s" in leg
        ],
        "profile": {
            "kernels": profile.get("kernels", {}),
            "gc": profile.get("gc", {}),
            "peak_rss": profile.get("peak_rss"),
        }
        if profile
        else None,
        "results_digest": data.get("results_digest"),
        "points": [
            {
                "value": p.get("value"),
                "barrier": p.get("barrier"),
                "serialized": p.get("serialized"),
                "static": p.get("static"),
                "mean_makespan_max": p.get("mean_makespan_max"),
            }
            for p in data.get("points", [])
        ],
    }


def append_trajectory(
    data: dict, path: str | Path = DEFAULT_TRAJECTORY, label: str = ""
) -> Path:
    """Append one trajectory line (creating the file and its parents)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = trajectory_entry(data, label=label)
    with path.open("a", encoding="utf-8") as fp:
        fp.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
    return path


def run_perf_report(
    count: int | None = None,
    jobs: int | None = None,
    master_seed: int = 0,
    values: Sequence[int] | None = None,
    preset: str = "default",
) -> PerfReport:
    """Run one preset perf workload and reduce it to a report.

    ``count`` defaults to the preset's standard corpus size
    (:data:`PRESET_COUNTS`); ``values`` overrides the *first* sweep
    leg's axis values (the historical ``default``-preset knob).  The
    simulation pass runs on the first leg's base point, so the
    ``scale1024`` preset simulates (and digests) at 1024 PEs.
    """
    from repro.experiments.sweeps import (
        ExperimentPoint,
        _set_axis,
        run_corpus,
        sweep,
    )

    if preset not in PRESETS:
        raise ValueError(
            f"unknown perf preset {preset!r}; expected one of "
            f"{', '.join(sorted(PRESETS))}"
        )
    legs = [
        (axis, list(vals), dict(overrides))
        for axis, vals, overrides in PRESETS[preset]
    ]
    if values is not None:
        legs[0] = (legs[0][0], list(values), legs[0][2])
    if count is None:
        count = PRESET_COUNTS[preset]
    jobs = resolve_jobs(jobs)
    kernels.reset_calls()
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=20, n_variables=8),
        scheduler=SchedulerConfig(n_pes=8),
        count=count,
        master_seed=master_seed,
    )

    start = time.perf_counter()
    swept: list[tuple[str, object, object]] = []  # (axis, value, stats)
    leg_walls: list[float] = []
    sim_count = min(count, SIMULATED_CASES)
    obs_progress.set_total(
        sum(len(leg_values) for _, leg_values, _ in legs) * count + sim_count
    )
    # The profiler is always on for a perf run: its per-kernel timings
    # and memory accounts go into the report (and, trimmed, into the
    # trajectory so ``watch --explain`` can attribute regressions).
    with collect_metrics() as metrics, collect_timings() as timings, (
        collect_profile()
    ) as prof:
        sim_base = base
        for leg_index, (axis, leg_values, overrides) in enumerate(legs):
            point = base
            for over_axis, over_value in overrides.items():
                point = _set_axis(point, over_axis, over_value)
            if leg_index == 0:
                sim_base = point
            leg_start = time.perf_counter()
            for value, stats in sweep(
                point, axis, leg_values, jobs=jobs, cache=False
            ):
                swept.append((axis, value, stats))
            leg_walls.append(time.perf_counter() - leg_start)
        sim_results = run_corpus(sim_base.with_(count=sim_count), jobs=jobs)
        for result in sim_results:
            program = MachineProgram.from_schedule(result.schedule)
            trace = simulate_sbm(program, rng=master_seed)
            trace.assert_sound(program.edges)
            # Observation only: feeds the engine.* metric family
            # (PE utilization, barrier wait, release skew, superstep
            # imbalance) into the report's metrics block.
            analyze_trace(program, trace)
    wall = time.perf_counter() - start

    points = [
        {
            "axis": axis,
            "value": value,
            "n_benchmarks": stats.n_benchmarks,
            "barrier": stats.barrier.mean,
            "serialized": stats.serialized.mean,
            "static": stats.static.mean,
            "mean_barriers": stats.mean_barriers,
            "mean_makespan_max": stats.mean_makespan_max,
        }
        for axis, value, stats in swept
    ]
    data = {
        "format": _FORMAT,
        "version": __version__,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs,
        "count": count,
        "master_seed": master_seed,
        "preset": preset,
        "axis": legs[0][0],
        "values": legs[0][1],
        "legs": [
            {
                "axis": axis,
                "values": vals,
                "base": overrides,
                "cases": len(vals) * count,
                "wall_s": leg_walls[i],
                "cases_per_s": (
                    len(vals) * count / leg_walls[i] if leg_walls[i] else 0.0
                ),
            }
            for i, (axis, vals, overrides) in enumerate(legs)
        ],
        "backend": kernels.kernels_info(),
        "simulated_cases": len(sim_results),
        "wall_s": wall,
        "cases_per_s": (
            (sum(len(vals) for _, vals, _ in legs) * count + sim_count) / wall
            if wall
            else 0.0
        ),
        "stages": timings.as_dict(),
        "metrics": metrics.as_dict(),
        "profile": prof.as_dict(),
        "results_digest": results_digest(sim_results),
        "points": points,
    }
    return PerfReport(data)
