"""Performance layer: parallel corpus execution, result caching, timers.

The paper's evaluation sweeps 3500+ synthetic basic blocks; this package
makes that affordable at full scale:

* :mod:`repro.perf.timers` -- per-stage wall-clock accumulators
  (generate / schedule / insert / merge / simulate) that the pipeline
  reports through :class:`~repro.metrics.stats.CorpusStats`;
* :mod:`repro.perf.parallel` -- a process-pool execution mode for
  :func:`~repro.experiments.sweeps.run_corpus` whose output is
  bit-identical to the serial run (``--jobs`` / ``REPRO_JOBS``);
* :mod:`repro.perf.cache` -- an on-disk content-addressed cache of
  corpus statistics keyed by the experiment point and package version;
* :mod:`repro.perf.report` -- the ``repro-sbm perf`` harness emitting
  ``BENCH_*.json`` trajectory records.

Attributes are resolved lazily: the scheduler's hot path imports
``repro.perf.timers`` directly, and an eager re-export here would close
an import cycle through ``metrics.stats`` back into the scheduler.

See ``docs/performance.md`` for the operator-facing guide.
"""

from typing import Any

_EXPORTS = {
    "StageTimings": "repro.perf.timers",
    "collect_timings": "repro.perf.timers",
    "stage": "repro.perf.timers",
    "fork_available": "repro.perf.parallel",
    "resolve_jobs": "repro.perf.parallel",
    "results_digest": "repro.perf.parallel",
    "run_cases_parallel": "repro.perf.parallel",
    "cache_dir": "repro.perf.cache",
    "resolve_cache": "repro.perf.cache",
    "point_cache_key": "repro.perf.cache",
    "load_point_stats": "repro.perf.cache",
    "store_point_stats": "repro.perf.cache",
    "PerfReport": "repro.perf.report",
    "run_perf_report": "repro.perf.report",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
