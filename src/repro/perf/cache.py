"""On-disk content-addressed cache of corpus statistics.

Re-running an experiment or benchmark recomputes every parameter point
from scratch even though the pipeline is bit-deterministic in the point.
This cache exploits that determinism: :func:`point_cache_key` derives a
stable SHA-256 from the *complete* content of an
:class:`~repro.experiments.sweeps.ExperimentPoint` (generator
parameters, every scheduler knob, the timing model's name and latency
table, corpus size, master seed) plus the package version, and
:func:`store_point_stats` / :func:`load_point_stats` persist the reduced
:class:`~repro.metrics.stats.CorpusStats` under that key.

Invalidation is purely by key: change any input or bump
``repro.__version__`` and the old entries are simply never looked up
again (delete the cache directory to reclaim the space).  Points with an
``accept`` filter are *never* cached -- a callable has no stable content
hash.

Layout: one JSON file per point under :func:`cache_dir` (default
``~/.cache/repro-sbm/sweeps``, override with ``REPRO_CACHE_DIR``).
Caching is opt-in: pass ``cache=True`` to the sweep helpers or set
``REPRO_CACHE=1`` (the CLI experiment runner turns it on unless invoked
with ``--no-cache``).  Cache hits return the stats recorded at compute
time, including the *original* run's stage timings.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro import __version__
from repro.metrics.fractions import SyncFractions
from repro.metrics.stats import CorpusStats, FractionAggregate
from repro.obs.metrics import inc
from repro.perf.timers import StageTimings

if TYPE_CHECKING:  # avoid the circular import with experiments.sweeps
    from repro.experiments.sweeps import ExperimentPoint

__all__ = [
    "cache_dir",
    "resolve_cache",
    "point_cache_key",
    "load_point_stats",
    "store_point_stats",
    "stats_to_json",
    "stats_from_json",
]

_FORMAT = "repro.sweep-cache.v1"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}


def resolve_cache(cache: bool | None = None) -> bool:
    """Resolve the effective cache switch (``None`` consults ``REPRO_CACHE``)."""
    if cache is not None:
        return cache
    text = os.environ.get("REPRO_CACHE", "").strip().lower()
    if text in _TRUTHY:
        return True
    if text in _FALSY:
        return False
    raise ValueError(f"REPRO_CACHE must be a boolean flag, got {text!r}")


def cache_dir() -> Path:
    """The sweep-cache directory (``REPRO_CACHE_DIR`` overrides the default)."""
    root = os.environ.get("REPRO_CACHE_DIR", "").strip()
    base = Path(root) if root else Path.home() / ".cache" / "repro-sbm"
    return base / "sweeps"


def _point_content(point: "ExperimentPoint") -> dict:
    """The complete, JSON-stable content of a point (the hash preimage)."""
    timing = point.timing
    return {
        "format": _FORMAT,
        "version": __version__,
        "generator": asdict(point.generator),
        "scheduler": asdict(point.scheduler),
        "timing": {
            "name": timing.name,
            "latencies": {
                op.name: [iv.lo, iv.hi] for op, iv in sorted(
                    timing.latencies.items(), key=lambda kv: kv[0].name
                )
            },
        },
        "count": point.count,
        "master_seed": point.master_seed,
    }


def point_cache_key(point: "ExperimentPoint") -> str:
    """Stable SHA-256 key of a point's content plus the package version."""
    blob = json.dumps(_point_content(point), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stats_to_json(stats: CorpusStats) -> dict:
    """Encode :class:`CorpusStats` losslessly as JSON-compatible data."""
    data = asdict(stats)
    data["timings"] = stats.timings.as_dict() if stats.timings else None
    return data


def stats_from_json(data: dict) -> CorpusStats:
    """Decode :func:`stats_to_json` output."""
    aggregates = {
        name: FractionAggregate(**data[name])
        for name in ("barrier", "serialized", "static", "no_runtime_sync")
    }
    timings = data.get("timings")
    return CorpusStats(
        n_benchmarks=data["n_benchmarks"],
        **aggregates,
        mean_implied_syncs=data["mean_implied_syncs"],
        mean_barriers=data["mean_barriers"],
        mean_merges=data["mean_merges"],
        mean_makespan_min=data["mean_makespan_min"],
        mean_makespan_max=data["mean_makespan_max"],
        mean_processors_used=data["mean_processors_used"],
        total_repairs=data["total_repairs"],
        secondary_fraction=data["secondary_fraction"],
        per_benchmark=tuple(
            SyncFractions(**fr) for fr in data.get("per_benchmark", ())
        ),
        timings=StageTimings.from_dict(timings) if timings else None,
    )


def load_point_stats(point: "ExperimentPoint") -> CorpusStats | None:
    """Return the cached stats for ``point``, or ``None`` on a miss (or on
    any unreadable/foreign entry -- misses are never errors).  Outcomes
    are counted on the active obs registry as ``cache.sweep.hits`` /
    ``cache.sweep.misses``."""
    stats = _load_point_stats(point)
    inc("cache.sweep.hits" if stats is not None else "cache.sweep.misses")
    return stats


def _load_point_stats(point: "ExperimentPoint") -> CorpusStats | None:
    path = cache_dir() / f"{point_cache_key(point)}.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if data.get("format") != _FORMAT:
        return None
    try:
        return stats_from_json(data["stats"])
    except (KeyError, TypeError, ValueError):
        return None


def store_point_stats(point: "ExperimentPoint", stats: CorpusStats) -> Path:
    """Persist ``stats`` for ``point``; returns the entry path.

    The write is atomic (temp file + rename) so concurrent sweeps sharing
    a cache directory can only ever observe complete entries.
    """
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{point_cache_key(point)}.json"
    record = {
        "format": _FORMAT,
        "point": _point_content(point),
        "stats": stats_to_json(stats),
    }
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
