"""Per-stage wall-clock timers for the evaluation pipeline.

The pipeline has five instrumented stages:

``generate``   synthetic-benchmark generation + compilation to a DAG
``schedule``   the whole list-scheduling pass (includes ``insert``)
``insert``     barrier insertion, step [6] placements (includes ``merge``)
``merge``      SBM barrier merging triggered by an insertion
``simulate``   cycle-accurate machine execution

Timers are *opt-in*: a caller installs a collector with
:func:`collect_timings`, and every :func:`stage` block encountered while
it is active accumulates into it.  When no collector is installed a
:func:`stage` block costs one context-variable lookup, so the hot paths
can stay instrumented unconditionally.

Stages nest (``merge`` time is part of ``insert``, which is part of
``schedule``); the fields therefore do not sum to wall time and are
reported as-is.  The collector is a :class:`contextvars.ContextVar`, so
concurrent collectors in different threads/tasks do not interfere, and
worker processes of the parallel corpus driver ship their accumulated
timings back to the parent for merging (see
:meth:`StageTimings.merge`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.obs.prof import current_profiler
from repro.obs.spans import current_tracer

__all__ = ["STAGES", "StageTimings", "add_to_current", "collect_timings", "stage"]

#: Instrumented stage names, in pipeline order.
STAGES = ("generate", "schedule", "insert", "merge", "simulate")


@dataclass
class StageTimings:
    """Accumulated wall-clock (and CPU) seconds per pipeline stage.

    The five stage attributes hold wall time; ``cpu`` holds the
    matching ``time.process_time`` seconds per stage, so a report can
    tell compute apart from stalls (GC pauses, page faults, I/O) -- a
    stage whose wall time grows while its CPU time does not is waiting,
    not working.
    """

    generate: float = 0.0
    schedule: float = 0.0
    insert: float = 0.0
    merge: float = 0.0
    simulate: float = 0.0
    cpu: dict[str, float] = field(default_factory=dict)

    def cpu_of(self, name: str) -> float:
        """CPU seconds accumulated under a stage (0.0 if never timed)."""
        return self.cpu.get(name, 0.0)

    def merge_from(self, other: "StageTimings | Mapping") -> None:
        """Accumulate another collector's (or worker's) timings into this one."""
        if isinstance(other, StageTimings):
            other = other.as_dict()
        for name, value in other.items():
            if name == "cpu":
                for stage_name, cpu_s in value.items():
                    if stage_name not in STAGES:
                        raise ValueError(
                            f"unknown timing stage {stage_name!r}"
                        )
                    self.cpu[stage_name] = self.cpu.get(
                        stage_name, 0.0
                    ) + float(cpu_s)
                continue
            if name not in STAGES:
                raise ValueError(f"unknown timing stage {name!r}")
            setattr(self, name, getattr(self, name) + float(value))

    def as_dict(self) -> dict:
        data: dict = {name: getattr(self, name) for name in STAGES}
        data["cpu"] = {
            name: self.cpu[name] for name in STAGES if name in self.cpu
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "StageTimings":
        timings = cls()
        timings.merge_from(data)
        return timings

    def render(self) -> str:
        """``stage wall/cpu`` seconds per stage (wall only when a stage
        never recorded CPU time, e.g. timings loaded from old caches)."""
        parts = []
        for name in STAGES:
            wall = getattr(self, name)
            if name in self.cpu:
                parts.append(f"{name} {wall:.3f}s/{self.cpu[name]:.3f}c")
            else:
                parts.append(f"{name} {wall:.3f}s")
        return "  ".join(parts)


_collector: ContextVar[StageTimings | None] = ContextVar(
    "repro_perf_collector", default=None
)


@contextmanager
def collect_timings() -> Iterator[StageTimings]:
    """Install a fresh collector for the dynamic extent of the block.

    Collectors nest: only the innermost receives the stage times, so a
    caller measuring a sub-pipeline is not polluted by (nor pollutes) an
    outer measurement.
    """
    timings = StageTimings()
    token = _collector.set(timings)
    try:
        yield timings
    finally:
        _collector.reset(token)


def add_to_current(timings: "StageTimings | Mapping[str, float]") -> None:
    """Merge timings into the active collector, if any.

    This is how the parallel corpus driver credits the parent's collector
    with the stage times its worker processes measured.
    """
    collector = _collector.get()
    if collector is not None:
        collector.merge_from(timings)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Accumulate the block's wall time under ``name`` (no-op when no
    collector is installed).

    ``name`` must be one of :data:`STAGES` -- an unknown name raises
    immediately rather than silently accumulating onto a dead attribute
    that ``render()``/``as_dict()`` would never show.

    A stage block is also a span: when a
    :class:`repro.obs.spans.SpanTracer` is active the block is recorded
    under the same name, so stage times and trace spans always agree.
    """
    if name not in STAGES:
        raise ValueError(f"unknown timing stage {name!r}")
    collector = _collector.get()
    tracer = current_tracer()
    if collector is None and tracer is None:
        yield
        return
    # The profiler is only consulted once a collector or tracer is
    # active, keeping the instrumentation-off fast path at two
    # context-variable lookups; every profiling entry point installs a
    # collector alongside the profiler anyway.
    prof = current_profiler()
    sid = tracer.open(name) if tracer is not None else None
    rss0 = prof.sample_rss() if prof is not None else 0
    cpu0 = time.process_time() if collector is not None else 0.0
    start = time.perf_counter()
    try:
        yield
    finally:
        if collector is not None:
            setattr(
                collector,
                name,
                getattr(collector, name) + time.perf_counter() - start,
            )
            collector.cpu[name] = (
                collector.cpu.get(name, 0.0) + time.process_time() - cpu0
            )
        if prof is not None:
            prof.record_stage_rss(name, prof.sample_rss() - rss0)
        if tracer is not None:
            tracer.close(sid)
