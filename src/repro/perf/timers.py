"""Per-stage wall-clock timers for the evaluation pipeline.

The pipeline has five instrumented stages:

``generate``   synthetic-benchmark generation + compilation to a DAG
``schedule``   the whole list-scheduling pass (includes ``insert``)
``insert``     barrier insertion, step [6] placements (includes ``merge``)
``merge``      SBM barrier merging triggered by an insertion
``simulate``   cycle-accurate machine execution

Timers are *opt-in*: a caller installs a collector with
:func:`collect_timings`, and every :func:`stage` block encountered while
it is active accumulates into it.  When no collector is installed a
:func:`stage` block costs one context-variable lookup, so the hot paths
can stay instrumented unconditionally.

Stages nest (``merge`` time is part of ``insert``, which is part of
``schedule``); the fields therefore do not sum to wall time and are
reported as-is.  The collector is a :class:`contextvars.ContextVar`, so
concurrent collectors in different threads/tasks do not interfere, and
worker processes of the parallel corpus driver ship their accumulated
timings back to the parent for merging (see
:meth:`StageTimings.merge`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields
from typing import Iterator, Mapping

from repro.obs.spans import current_tracer

__all__ = ["STAGES", "StageTimings", "add_to_current", "collect_timings", "stage"]

#: Instrumented stage names, in pipeline order.
STAGES = ("generate", "schedule", "insert", "merge", "simulate")


@dataclass
class StageTimings:
    """Accumulated wall-clock seconds per pipeline stage."""

    generate: float = 0.0
    schedule: float = 0.0
    insert: float = 0.0
    merge: float = 0.0
    simulate: float = 0.0

    def merge_from(self, other: "StageTimings | Mapping[str, float]") -> None:
        """Accumulate another collector's (or worker's) timings into this one."""
        if isinstance(other, StageTimings):
            other = other.as_dict()
        for name, value in other.items():
            if name not in STAGES:
                raise ValueError(f"unknown timing stage {name!r}")
            setattr(self, name, getattr(self, name) + float(value))

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "StageTimings":
        timings = cls()
        timings.merge_from(data)
        return timings

    def render(self) -> str:
        return "  ".join(f"{name} {getattr(self, name):.3f}s" for name in STAGES)


_collector: ContextVar[StageTimings | None] = ContextVar(
    "repro_perf_collector", default=None
)


@contextmanager
def collect_timings() -> Iterator[StageTimings]:
    """Install a fresh collector for the dynamic extent of the block.

    Collectors nest: only the innermost receives the stage times, so a
    caller measuring a sub-pipeline is not polluted by (nor pollutes) an
    outer measurement.
    """
    timings = StageTimings()
    token = _collector.set(timings)
    try:
        yield timings
    finally:
        _collector.reset(token)


def add_to_current(timings: "StageTimings | Mapping[str, float]") -> None:
    """Merge timings into the active collector, if any.

    This is how the parallel corpus driver credits the parent's collector
    with the stage times its worker processes measured.
    """
    collector = _collector.get()
    if collector is not None:
        collector.merge_from(timings)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Accumulate the block's wall time under ``name`` (no-op when no
    collector is installed).

    ``name`` must be one of :data:`STAGES` -- an unknown name raises
    immediately rather than silently accumulating onto a dead attribute
    that ``render()``/``as_dict()`` would never show.

    A stage block is also a span: when a
    :class:`repro.obs.spans.SpanTracer` is active the block is recorded
    under the same name, so stage times and trace spans always agree.
    """
    if name not in STAGES:
        raise ValueError(f"unknown timing stage {name!r}")
    collector = _collector.get()
    tracer = current_tracer()
    if collector is None and tracer is None:
        yield
        return
    sid = tracer.open(name) if tracer is not None else None
    start = time.perf_counter()
    try:
        yield
    finally:
        if collector is not None:
            setattr(
                collector,
                name,
                getattr(collector, name) + time.perf_counter() - start,
            )
        if tracer is not None:
            tracer.close(sid)
