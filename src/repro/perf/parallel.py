"""Process-pool execution of corpus points, bit-identical to serial.

The paper's evaluation schedules 100 benchmarks per parameter point and
3500+ overall; every case is independent, so the corpus driver fans the
work out over a pool of worker processes.  Three properties are load
bearing:

**Determinism.**  The serial driver draws one 48-bit case seed per
*attempt* from ``random.Random(master_seed)`` and derives the scheduler
seed as ``case_seed & 0xFFFFFFFF`` (see
:func:`repro.synth.corpus.generate_cases`).  The parallel driver draws
the exact same attempt-seed sequence in the parent, ships seeds to the
workers in chunks, and consumes worker results in submission order --
applying the ``accept`` filter verdicts positionally, exactly as the
serial loop would.  The accepted prefix is therefore identical to the
serial output; only *unused* trailing attempts (work the serial loop
would never have started) may differ.  The determinism regression test
pins this with :func:`results_digest`.

**Graceful fallback.**  ``jobs=1``, a platform without ``fork``, or an
unpicklable payload (e.g. a closure ``accept`` filter) silently falls
back to the serial path; callers never have to care.

**Bounded dispatch.**  Seeds are sent in chunks (amortizing IPC) with a
bounded number of chunks in flight, so a filtered corpus does not race
arbitrarily far past the acceptance target.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import random
from collections import deque
from contextlib import nullcontext
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from dataclasses import dataclass

from repro import kernels
from repro.core.scheduler import (
    ScheduleResult,
    SchedulerConfig,
    SyncCounts,
    schedule_dag,
)
from repro.io import result_summary
from repro.ir.ops import TimingModel
from repro.obs import metrics as obs_metrics
from repro.obs import prof as obs_prof
from repro.obs import progress as obs_progress
from repro.obs.spans import collect_trace, current_tracer
from repro.perf.gctune import batched_gc
from repro.perf.timers import add_to_current, collect_timings, stage
from repro.synth.corpus import BenchmarkCase, compile_case
from repro.synth.generator import GeneratorConfig
from repro.timing import Interval

__all__ = [
    "CompactResult",
    "digest_record",
    "fork_available",
    "resolve_batch",
    "resolve_jobs",
    "results_digest",
    "run_cases_parallel",
]

#: Attempt seeds per worker task; amortizes IPC without hurting balance.
CHUNK_SIZE = 8

#: Chunks in flight per worker; bounds wasted work past the accept target.
CHUNKS_IN_FLIGHT = 2

#: Cases per batched-pipeline chunk (vectorized generation + batched
#: scheduling kernels).  One paper-sized corpus (count=100) per chunk:
#: the vectorized draw's fixed setup amortizes poorly below ~64 seeds,
#: and the padded corpus tensors are still only a few MB at this size.
DEFAULT_BATCH = 100


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve an effective worker count.

    ``None`` consults the ``REPRO_JOBS`` environment variable (absent or
    empty means serial).  ``0`` -- from either source -- means "all
    cores".  Anything else must be a positive integer.
    """
    if jobs is None:
        text = os.environ.get("REPRO_JOBS", "").strip()
        if not text:
            return 1
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {text!r}")
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def resolve_batch(batch: int | None = None) -> int:
    """Resolve the corpus batch size (cases per batched chunk).

    ``None`` consults the ``REPRO_BATCH`` environment variable (absent
    or empty means :data:`DEFAULT_BATCH`).  ``1`` -- from either source
    -- disables batching; anything else must be a positive integer.
    """
    if batch is None:
        text = os.environ.get("REPRO_BATCH", "").strip()
        if not text:
            return DEFAULT_BATCH
        try:
            batch = int(text)
        except ValueError:
            raise ValueError(f"REPRO_BATCH must be an integer, got {text!r}")
    if batch < 1:
        raise ValueError(f"batch size must be >= 1, got {batch}")
    return batch


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX).  The pool uses
    fork so worker processes inherit already-imported modules; spawn-only
    platforms fall back to serial execution."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def _run_chunk(
    payload: tuple[
        GeneratorConfig,
        TimingModel,
        SchedulerConfig,
        Callable[[BenchmarkCase], bool] | None,
        tuple[int, ...],
        bool,
        bool,
        str,
    ],
) -> tuple[
    list[ScheduleResult | None],
    dict[str, float],
    dict,
    dict | None,
    dict | None,
]:
    """Worker: compile/filter/schedule one chunk of attempt seeds.

    Returns one entry per attempt -- ``None`` for rejected attempts, a
    :class:`ScheduleResult` otherwise -- plus the worker's stage timings,
    its obs metrics, its resource profile (when the parent is
    profiling), and (when the parent asked for tracing) its span tracer
    state for :meth:`~repro.obs.spans.SpanTracer.adopt`.
    """
    generator, timing, scheduler, accept, seeds, trace, profile, backend = (
        payload
    )
    # Pin the kernel backend explicitly rather than trusting fork-time
    # env inheritance: the parent may scope REPRO_BACKEND per command
    # (``repro-sbm perf --backend``) while the pool outlives that scope.
    os.environ["REPRO_BACKEND"] = backend
    out: list[ScheduleResult | None] = []
    # A fresh per-chunk tracer: fork copies the parent's contextvars, so
    # without this the spans would pile up in a dead copy of the parent's
    # tracer instead of being shipped back.  Same story for the metrics
    # registry and the profiler -- and the profiler must be installed
    # before ``batched_gc`` so its GC hook finds it.
    tracing = collect_trace() if trace else nullcontext(None)
    profiling = obs_prof.collect_profile() if profile else nullcontext(None)
    with tracing as tracer, obs_metrics.collect_metrics() as metrics, (
        profiling
    ) as prof, batched_gc():
        with collect_timings() as timings:
            for seed in seeds:
                with stage("generate"):
                    case = compile_case(generator, seed, timing)
                if accept is not None and not accept(case):
                    out.append(None)
                    continue
                config = scheduler.with_(seed=case.seed & 0xFFFFFFFF)
                with stage("schedule"):
                    out.append(schedule_dag(case.dag, config))
    trace_state = tracer.export_state() if tracer is not None else None
    return (
        out,
        timings.as_dict(),
        metrics.as_dict(),
        prof.as_dict() if prof is not None else None,
        trace_state,
    )


def run_cases_parallel(
    generator: GeneratorConfig,
    count: int,
    master_seed: int,
    timing: TimingModel,
    scheduler: SchedulerConfig,
    accept: Callable[[BenchmarkCase], bool] | None,
    jobs: int,
    max_attempts_factor: int = 50,
) -> list[ScheduleResult] | None:
    """Schedule a corpus point on a process pool; ``None`` means "cannot
    parallelize, use the serial path" (no fork, or unpicklable payload).

    The result list is bit-identical to the serial driver's (see the
    module docstring for why).  Raises the same ``RuntimeError`` as
    :func:`repro.synth.corpus.generate_cases` when the ``accept`` filter
    exhausts its attempt budget.
    """
    if jobs <= 1 or count <= 0 or not fork_available():
        return None
    try:  # closures / bound methods as ``accept`` cannot cross processes
        pickle.dumps((generator, timing, scheduler, accept))
    except Exception:
        return None

    backend = kernels.backend_setting()  # validates REPRO_BACKEND early
    seed_stream = random.Random(master_seed)
    limit = max(1, count) * max_attempts_factor
    attempts = 0

    def next_chunk() -> tuple[int, ...]:
        nonlocal attempts
        take = min(CHUNK_SIZE, limit - attempts)
        attempts += take
        return tuple(seed_stream.getrandbits(48) for _ in range(take))

    results: list[ScheduleResult] = []
    trace = current_tracer() is not None
    profile = obs_prof.current_profiler() is not None
    context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        pending = deque()

        def submit(seeds: tuple[int, ...]) -> None:
            pending.append(
                pool.submit(
                    _run_chunk,
                    (
                        generator,
                        timing,
                        scheduler,
                        accept,
                        seeds,
                        trace,
                        profile,
                        backend,
                    ),
                )
            )

        for _ in range(jobs * CHUNKS_IN_FLIGHT):
            seeds = next_chunk()
            if not seeds:
                break
            submit(seeds)
        while len(results) < count:
            if not pending:
                raise RuntimeError(
                    f"corpus filter accepted only {len(results)}/{count} cases "
                    f"after {attempts} attempts"
                )
            (
                chunk_results,
                worker_timings,
                worker_metrics,
                worker_profile,
                trace_state,
            ) = pending.popleft().result()
            add_to_current(worker_timings)
            obs_metrics.add_to_current(worker_metrics)
            if worker_profile is not None:
                obs_prof.add_to_current(worker_profile)
            if trace_state is not None:
                tracer = current_tracer()
                if tracer is not None:
                    tracer.adopt(trace_state)
            accepted_before = len(results)
            for item in chunk_results:
                if item is not None:
                    results.append(item)
                    if len(results) == count:
                        break
            obs_progress.advance(len(results) - accepted_before)
            if len(results) < count:
                seeds = next_chunk()
                if seeds:
                    submit(seeds)
        for fut in pending:  # drop overdrawn attempts, matching serial stop
            fut.cancel()
    return results


class _CompactSchedule:
    """Stand-in exposing the one ``Schedule`` accessor reductions use."""

    __slots__ = ("_used",)

    def __init__(self, used: int) -> None:
        self._used = used

    def used_processors(self) -> int:
        return self._used


@dataclass(frozen=True, slots=True)
class CompactResult:
    """A :class:`ScheduleResult` reduced to what reductions read.

    The zero-copy driver (:mod:`repro.perf.shm`) ships these back from
    its workers instead of pickling whole ``Schedule`` object graphs:
    the counts, makespan, processor usage, and the precomputed
    :func:`digest_record` -- everything
    :func:`repro.metrics.stats.aggregate_results` and
    :func:`results_digest` consume, nothing else.
    """

    config: SchedulerConfig
    counts: SyncCounts
    makespan: Interval
    processors_used: int
    record: dict

    @property
    def schedule(self) -> _CompactSchedule:
        return _CompactSchedule(self.processors_used)


def digest_record(result: "ScheduleResult | CompactResult") -> dict:
    """The record :func:`results_digest` hashes for one result.

    Compact results carry theirs precomputed (by this same function, in
    the worker that still held the full result), so serial and
    zero-copy digests agree byte for byte.
    """
    if isinstance(result, CompactResult):
        return result.record
    return {
        "summary": result_summary(result),
        "order": [str(node) for node in result.list_order],
        "resolutions": [
            [
                str(r.producer),
                str(r.consumer),
                r.kind.value,
                r.barrier.id if r.barrier is not None else None,
                r.dominator,
                r.secondary,
                r.via_optimal,
                r.merges,
            ]
            for r in result.resolutions
        ],
    }


def results_digest(
    results: Sequence["ScheduleResult | CompactResult"],
) -> str:
    """A stable digest of a result sequence, for determinism regression.

    Covers everything the experiments read off a result -- the summary
    record (counts, fractions, makespan), the list order, and every edge
    resolution -- so any behavioural drift between serial and parallel
    execution (or across refactors that must preserve paper numbers)
    changes the digest.
    """
    records = [digest_record(result) for result in results]
    blob = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
