"""Garbage-collector tuning for the batched corpus pipeline.

The cyclic collector's generation-0 threshold (700 allocations) was
tuned for interactive programs, not for a pipeline that materializes a
hundred schedules -- each a dense object graph of streams, barriers,
and caches -- while the vectorized generator churns through thousands
of short-lived numpy temporaries.  Every ~700 allocations the collector
re-walks the *live* schedules looking for cycles it will not find,
and those pauses land inside whatever ``stage(...)`` happens to be
open, dwarfing the stage's real work at small batch sizes.

:func:`batched_gc` raises the generation-0 threshold for the duration
of a corpus batch so collections run a few times per corpus instead of
thousands of times.  Collection is deferred, never lost: the original
thresholds are restored on exit and the next allocation burst collects
as usual.  Reference-counted (acyclic) garbage is unaffected either
way.  Results are bit-identical -- collector scheduling has no
observable effect on the schedules.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator

from repro.obs.prof import track_gc

__all__ = ["batched_gc"]

#: Generation-0 allocation threshold while a corpus batch runs.  At
#: ~100k allocations between scans a paper-sized point triggers a
#: handful of collections instead of thousands; the cyclic-garbage
#: backlog between scans stays a few MB at most.
BATCH_GEN0_THRESHOLD = 100_000


@contextmanager
def batched_gc() -> Iterator[None]:
    """Defer cyclic collection while a corpus batch is processed.

    Nests cleanly (restores whatever thresholds it found), and is a
    no-op when the collector is disabled entirely.  When a profiler is
    active (:func:`repro.obs.prof.collect_profile`) the collections
    that *do* run inside the batch are recorded as GC pauses.
    """
    if not gc.isenabled():
        yield
        return
    old = gc.get_threshold()
    gc.set_threshold(BATCH_GEN0_THRESHOLD, old[1], old[2])
    try:
        with track_gc():
            yield
    finally:
        gc.set_threshold(*old)
