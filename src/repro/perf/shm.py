"""Zero-copy parallel corpus driver over shared-memory arenas.

The pickling pool (:mod:`repro.perf.parallel`) ships attempt seeds out
and whole ``ScheduleResult`` object graphs back -- every schedule's
streams, barriers, DAG, and caches cross the process boundary as a
pickle.  This driver removes both copies for the common unfiltered
corpus point:

* **Input.**  The parent draws the *entire* corpus in one vectorized
  pass (:func:`repro.synth.genvec.draw_corpus`) and places the drawn
  arrays -- seeds, constants, targets, opcodes, operand kinds/indices
  -- in ``multiprocessing.shared_memory`` blocks.  Workers attach
  read-only and compile their slice straight out of the arena
  (:func:`repro.synth.genvec.compile_drawn_cases`); no case data is
  pickled.

* **Output.**  Workers schedule their slice and return *compact
  arrays*: one ``(cases, 11)`` counts matrix, a ``(cases, 2)`` makespan
  matrix, a processors-used vector, and the JSON digest records --
  everything :func:`repro.metrics.stats.aggregate_results` and
  :func:`repro.perf.parallel.results_digest` read, a few hundred bytes
  per case instead of a multi-kilobyte schedule pickle.  The parent
  reassembles them into
  :class:`~repro.perf.parallel.CompactResult` rows.

Bit-identity holds because the drawn corpus is exactly the serial
attempt-seed sequence, workers run the unmodified compile + schedule
code on it, and digest records are computed by the same
:func:`~repro.perf.parallel.digest_record` the serial digest uses.

:func:`run_cases_shm` returns ``None`` whenever it cannot apply --
filtered corpora, ``jobs <= 1``, no ``fork``, a generator config the
vectorized path does not cover, or a backend/threshold that resolves
to python -- and callers fall back to the pickling pool or the serial
loop.  Consumers that need full schedules (the simulation pass, the
secondary-effect tables) must keep using those paths; only
aggregation/digest consumers opt in (``run_corpus(...,
compact=True)``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from multiprocessing import shared_memory

from repro import kernels
from repro.core.scheduler import SchedulerConfig, SyncCounts, schedule_dag
from repro.ir.ops import TimingModel
from repro.obs import metrics as obs_metrics
from repro.obs import prof as obs_prof
from repro.obs import progress as obs_progress
from repro.obs.spans import collect_trace, current_tracer
from repro.perf.parallel import (
    CHUNK_SIZE,
    CHUNKS_IN_FLIGHT,
    CompactResult,
    digest_record,
    fork_available,
)
from repro.perf.gctune import batched_gc
from repro.perf.timers import add_to_current, collect_timings, stage
from repro.synth import genvec
from repro.synth.generator import GeneratorConfig
from repro.timing import Interval

__all__ = ["CorpusArena", "run_cases_shm"]

#: Field order of the packed counts rows (== ``SyncCounts`` fields).
_COUNT_FIELDS = (
    "total_edges",
    "serialized_edges",
    "path_edges",
    "timing_edges",
    "barrier_edges",
    "barriers_final",
    "merges",
    "secondary_resolutions",
    "optimal_rescues",
    "repairs",
    "path_explosions",
)


class CorpusArena:
    """A drawn corpus's arrays in named shared-memory blocks.

    ``create`` copies each array into its own block once; ``attach``
    maps the blocks back as numpy views without copying.  The creator
    owns the blocks and must call :meth:`destroy`; attachers call
    :meth:`close` when their views are dead.
    """

    def __init__(self, blocks: dict, manifest: dict, owner: bool) -> None:
        self._blocks = blocks
        self.manifest = manifest  # name -> (shm name, shape, dtype str)
        self._owner = owner

    @classmethod
    def create(cls, arrays: dict) -> "CorpusArena":
        np = kernels.numpy()
        blocks: dict = {}
        manifest: dict = {}
        try:
            for name, arr in arrays.items():
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                blocks[name] = shm
                manifest[name] = (shm.name, arr.shape, arr.dtype.str)
        except Exception:
            for shm in blocks.values():
                shm.close()
                shm.unlink()
            raise
        prof = obs_prof.current_profiler()
        if prof is not None:
            prof.add_bytes(
                "shm.arena", sum(shm.size for shm in blocks.values())
            )
        return cls(blocks, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: dict) -> tuple["CorpusArena", dict]:
        """Map an existing arena; returns ``(arena, arrays)`` views."""
        np = kernels.numpy()
        blocks: dict = {}
        arrays: dict = {}
        for name, (shm_name, shape, dtype) in manifest.items():
            # Attaching does not re-register with the resource tracker
            # (only ``create=True`` does), so worker-side close() is the
            # whole cleanup story; the creator alone unlinks.
            shm = shared_memory.SharedMemory(name=shm_name)
            blocks[name] = shm
            arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf
            )
        return cls(blocks, manifest, owner=False), arrays

    def close(self) -> None:
        for shm in self._blocks.values():
            shm.close()

    def destroy(self) -> None:
        """Close and unlink; creator-side teardown."""
        for shm in self._blocks.values():
            shm.close()
            if self._owner:
                shm.unlink()


def _run_shm_chunk(
    payload: tuple[
        dict,  # arena manifest
        GeneratorConfig,
        TimingModel,
        SchedulerConfig,
        int,  # slice start
        int,  # slice stop
        bool,  # tracing
        bool,  # profiling
        str,  # backend
    ],
):
    """Worker: compile and schedule ``[start, stop)`` out of the arena.

    Returns ``(counts, makespans, processors, records_json)`` compact
    arrays plus the usual worker timings / metrics / profile / trace
    state.
    """
    (
        manifest,
        generator,
        timing,
        scheduler,
        start,
        stop,
        trace,
        profile,
        backend,
    ) = payload
    os.environ["REPRO_BACKEND"] = backend
    np = kernels.numpy()
    arena, arrays = CorpusArena.attach(manifest)
    try:
        sliced = {name: arr[start:stop] for name, arr in arrays.items()}
        tracing = collect_trace() if trace else nullcontext(None)
        # The profiler precedes ``batched_gc`` so its GC hook finds it.
        profiling = (
            obs_prof.collect_profile() if profile else nullcontext(None)
        )
        with tracing as tracer, obs_metrics.collect_metrics() as metrics, (
            profiling
        ) as prof, batched_gc():
            with collect_timings() as timings:
                with stage("generate"):
                    drawn = genvec.DrawnCorpus.from_arrays(sliced)
                    cases = genvec.compile_drawn_cases(
                        drawn, generator, timing
                    )
                n = len(cases)
                counts = np.empty((n, len(_COUNT_FIELDS)), dtype=np.int64)
                makespans = np.empty((n, 2), dtype=np.int64)
                processors = np.empty(n, dtype=np.int64)
                records = []
                with stage("schedule"):
                    for k, case in enumerate(cases):
                        config = scheduler.with_(seed=case.seed & 0xFFFFFFFF)
                        result = schedule_dag(case.dag, config)
                        counts[k] = [
                            getattr(result.counts, f) for f in _COUNT_FIELDS
                        ]
                        makespans[k] = (
                            result.makespan.lo,
                            result.makespan.hi,
                        )
                        processors[k] = result.schedule.used_processors()
                        records.append(digest_record(result))
    finally:
        # from_arrays copied the slice out; no views outlive the attach.
        arena.close()
    trace_state = tracer.export_state() if tracer is not None else None
    return (
        counts,
        makespans,
        processors,
        json.dumps(records),
        timings.as_dict(),
        metrics.as_dict(),
        prof.as_dict() if prof is not None else None,
        trace_state,
    )


def run_cases_shm(
    generator: GeneratorConfig,
    count: int,
    master_seed: int,
    timing: TimingModel,
    scheduler: SchedulerConfig,
    jobs: int,
) -> "list[CompactResult] | None":
    """Run an unfiltered corpus point through the zero-copy driver.

    Returns compact results in the exact serial case order, or ``None``
    when the driver cannot apply (see the module docstring); callers
    then fall back to the pickling pool / serial loop.
    """
    if jobs <= 1 or count <= 0 or not fork_available():
        return None
    if not genvec.supported(generator):
        return None
    if not kernels.use_numpy("genvec", count):
        return None

    backend = kernels.backend_setting()  # validates REPRO_BACKEND early
    seed_stream = random.Random(master_seed)
    seeds = [seed_stream.getrandbits(48) for _ in range(count)]
    with stage("generate"):  # the parent's share: the vectorized draws
        drawn = genvec.draw_corpus(generator, seeds)
        arena = CorpusArena.create(drawn.arrays())

    trace = current_tracer() is not None
    profile = obs_prof.current_profiler() is not None
    results: list[CompactResult] = []
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=jobs, mp_context=context
        ) as pool:
            pending: deque = deque()
            bounds = [
                (lo, min(lo + CHUNK_SIZE, count))
                for lo in range(0, count, CHUNK_SIZE)
            ]
            # Results are consumed strictly in submission order, so the
            # reassembled sequence is the serial order; the in-flight
            # bound only limits arena pressure, not ordering.
            window = max(1, jobs * CHUNKS_IN_FLIGHT)
            for lo, hi in bounds[:window]:
                pending.append(
                    pool.submit(
                        _run_shm_chunk,
                        (
                            arena.manifest,
                            generator,
                            timing,
                            scheduler,
                            lo,
                            hi,
                            trace,
                            profile,
                            backend,
                        ),
                    )
                )
            next_chunk = window
            while pending:
                (
                    counts,
                    makespans,
                    processors,
                    records_json,
                    worker_timings,
                    worker_metrics,
                    worker_profile,
                    trace_state,
                ) = pending.popleft().result()
                if next_chunk < len(bounds):
                    lo, hi = bounds[next_chunk]
                    next_chunk += 1
                    pending.append(
                        pool.submit(
                            _run_shm_chunk,
                            (
                                arena.manifest,
                                generator,
                                timing,
                                scheduler,
                                lo,
                                hi,
                                trace,
                                profile,
                                backend,
                            ),
                        )
                    )
                add_to_current(worker_timings)
                obs_metrics.add_to_current(worker_metrics)
                if worker_profile is not None:
                    obs_prof.add_to_current(worker_profile)
                if trace_state is not None:
                    tracer = current_tracer()
                    if tracer is not None:
                        tracer.adopt(trace_state)
                records = json.loads(records_json)
                base = len(results)
                for k, record in enumerate(records):
                    case_seed = seeds[base + k]
                    results.append(
                        CompactResult(
                            config=scheduler.with_(
                                seed=case_seed & 0xFFFFFFFF
                            ),
                            counts=SyncCounts(*counts[k].tolist()),
                            makespan=Interval(*makespans[k].tolist()),
                            processors_used=int(processors[k]),
                            record=record,
                        )
                    )
                obs_progress.advance(len(records))
    finally:
        arena.destroy()
    return results
