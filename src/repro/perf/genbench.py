"""Generator-only speed gate: vectorized vs per-case corpus generation.

The full perf report times ``stage("generate")`` inside the pipeline,
where the number is polluted by whatever else the process is doing --
first-touch cache misses, collector pauses charged to the open stage,
scheduler allocations aging the heap.  On a noisy CI box those effects
swamp a generator-only comparison.  This module benchmarks *just* the
front end, the way a microbenchmark should:

* the workload is every distinct generator shape of a preset (the
  ``paper3500`` sweep legs dedupe to its size-sweep values) times the
  preset's corpus size, using the exact serial attempt-seed sequence;
* the two arms -- per-case :func:`repro.synth.corpus.compile_case` and
  vectorized :func:`repro.synth.genvec.compile_cases` -- run
  *interleaved*, shape by shape, repetition by repetition, so machine
  noise hits both arms alike;
* each shape's time is the **best of N repetitions** per arm, the
  standard defense against preemption spikes;
* the compiled corpora are digested and compared: the gate fails on
  any program difference before it ever looks at a ratio.

``python -m repro.perf.genbench`` runs the gate from CI (see the
``backend-speed-gate`` job); exit status 1 means the vectorized
generator lost its edge or, worse, changed a program.
"""

from __future__ import annotations

import argparse
import hashlib
import random
import sys
import time

from repro import kernels
from repro.experiments.sweeps import ExperimentPoint, _set_axis
from repro.ir.ops import DEFAULT_TIMING, TimingModel
from repro.perf.gctune import batched_gc
from repro.perf.report import PRESET_COUNTS, PRESETS
from repro.synth import genvec
from repro.synth.corpus import compile_case
from repro.synth.generator import GeneratorConfig

__all__ = ["bench_generate", "generator_shapes", "main"]

#: CI acceptance: vectorized generation must beat per-case python by
#: at least this factor over the preset's shapes.
DEFAULT_MIN_RATIO = 3.0
DEFAULT_REPS = 3


def generator_shapes(preset: str) -> list[GeneratorConfig]:
    """The distinct generator configurations a preset sweeps.

    Legs that sweep scheduler axes contribute their (fixed) base
    generator; legs that sweep generator axes contribute one config per
    value.  Order follows first appearance, duplicates collapse -- the
    ``paper3500`` preset's 35 points dedupe to its size-sweep shapes.
    """
    if preset not in PRESETS:
        raise ValueError(
            f"unknown perf preset {preset!r}; expected one of "
            f"{', '.join(sorted(PRESETS))}"
        )
    base = ExperimentPoint(
        generator=GeneratorConfig(n_statements=20, n_variables=8)
    )
    shapes: dict[GeneratorConfig, None] = {}
    for axis, values, overrides in PRESETS[preset]:
        point = base
        for over_axis, over_value in overrides.items():
            point = _set_axis(point, over_axis, over_value)
        if axis.startswith("generator."):
            for value in values:
                shapes.setdefault(_set_axis(point, axis, value).generator)
        else:
            shapes.setdefault(point.generator)
    return list(shapes)


def _corpus_digest(cases) -> str:
    """Identity of a compiled corpus: seeds and optimized programs."""
    blob = repr([(case.seed, case.program.tuples) for case in cases])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def bench_generate(
    preset: str = "paper3500",
    count: int | None = None,
    reps: int = DEFAULT_REPS,
    master_seed: int = 0,
    timing: TimingModel = DEFAULT_TIMING,
) -> dict:
    """Run the interleaved generator benchmark; return its record.

    The record carries per-shape best times for both arms, the summed
    totals, their ratio, and ``identical`` -- whether every shape's
    vectorized corpus digested equal to the per-case one.
    """
    shapes = generator_shapes(preset)
    if count is None:
        count = PRESET_COUNTS[preset]
    stream = random.Random(master_seed)  # the serial attempt-seed order
    seeds = [stream.getrandbits(48) for _ in range(count)]
    for config in shapes:
        if not genvec.supported(config):
            raise RuntimeError(
                f"vectorized generator does not cover {config}; "
                "the gate would compare python against itself"
            )
    if not kernels.use_numpy("genvec", count):
        raise RuntimeError(
            "genvec resolves to the python path here "
            f"(backend {kernels.backend_setting()!r}, count {count}); "
            "the gate would compare python against itself"
        )

    best_py = [float("inf")] * len(shapes)
    best_vec = [float("inf")] * len(shapes)
    best_py_cpu = [float("inf")] * len(shapes)
    best_vec_cpu = [float("inf")] * len(shapes)
    identical = True
    # Both arms run under the same collector regime as the deployed
    # pipeline (see :mod:`repro.perf.gctune`), and each corpus is
    # digested and dropped before the other arm is timed -- a hundred
    # live cases in the young generation would otherwise turn every
    # gen-0 collection inside the timed region into a full re-walk.
    with batched_gc():
        for rep in range(max(1, reps)):
            for i, config in enumerate(shapes):
                c0 = time.process_time()
                t0 = time.perf_counter()
                py_cases = [compile_case(config, s, timing) for s in seeds]
                best_py[i] = min(best_py[i], time.perf_counter() - t0)
                best_py_cpu[i] = min(
                    best_py_cpu[i], time.process_time() - c0
                )
                py_digest = _corpus_digest(py_cases) if rep == 0 else None
                del py_cases
                c0 = time.process_time()
                t0 = time.perf_counter()
                vec_cases = genvec.compile_cases(config, seeds, timing)
                best_vec[i] = min(best_vec[i], time.perf_counter() - t0)
                best_vec_cpu[i] = min(
                    best_vec_cpu[i], time.process_time() - c0
                )
                if rep == 0 and _corpus_digest(vec_cases) != py_digest:
                    identical = False
                del vec_cases
    py_total = sum(best_py)
    vec_total = sum(best_vec)
    return {
        "preset": preset,
        "count": count,
        "reps": reps,
        "shapes": [
            {
                "n_statements": config.n_statements,
                "n_variables": config.n_variables,
                "python_s": best_py[i],
                "python_cpu_s": best_py_cpu[i],
                "vectorized_s": best_vec[i],
                "vectorized_cpu_s": best_vec_cpu[i],
            }
            for i, config in enumerate(shapes)
        ],
        "python_s": py_total,
        "python_cpu_s": sum(best_py_cpu),
        "vectorized_s": vec_total,
        "vectorized_cpu_s": sum(best_vec_cpu),
        "ratio": py_total / vec_total if vec_total else float("inf"),
        "identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.genbench",
        description="generator speed gate: vectorized vs per-case python",
    )
    parser.add_argument("--preset", default="paper3500")
    parser.add_argument(
        "--count", type=int, default=None, help="seeds per shape"
    )
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=DEFAULT_MIN_RATIO,
        help="required vectorized speedup over the per-case path",
    )
    args = parser.parse_args(argv)
    record = bench_generate(
        preset=args.preset, count=args.count, reps=args.reps
    )
    for shape in record["shapes"]:
        ratio = (
            shape["python_s"] / shape["vectorized_s"]
            if shape["vectorized_s"]
            else float("inf")
        )
        print(
            f"S={shape['n_statements']:<3} V={shape['n_variables']:<3} "
            f"python {shape['python_s']:.3f}s  "
            f"vectorized {shape['vectorized_s']:.3f}s  {ratio:.2f}x"
        )
    print(
        f"total ({record['count']} seeds x {len(record['shapes'])} shapes, "
        f"best of {record['reps']}): python {record['python_s']:.3f}s "
        f"({record['python_cpu_s']:.3f}s cpu)  "
        f"vectorized {record['vectorized_s']:.3f}s "
        f"({record['vectorized_cpu_s']:.3f}s cpu)  "
        f"speedup {record['ratio']:.2f}x"
    )
    if not record["identical"]:
        print(
            "generate-gate: vectorized generator changed a compiled "
            "program",
            file=sys.stderr,
        )
        return 1
    if record["ratio"] < args.min_ratio:
        print(
            f"generate-gate: vectorized generator is not "
            f">={args.min_ratio:g}x faster ({record['ratio']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
