"""Barrier synchronization substrate (paper sections 3.1 and 4.4).

The *barrier dag* ``(B, <_b)`` is the partially ordered set of barriers in
a schedule; its edges carry the ``[min,max]`` execution time of the code
regions between consecutive barriers.  All of the paper's static-timing
machinery -- dominator trees, longest min/max paths from a common
dominating barrier, and the k-longest-path overlap analysis of the
"optimal" insertion algorithm -- lives here.
"""

from repro.barriers.model import Barrier
from repro.barriers.dag import BarrierDag, BarrierEdge
from repro.barriers.dominators import DominatorTree
from repro.barriers.mask import BarrierMask
from repro.barriers.paths import (
    PathExplosionError,
    all_paths,
    k_longest_max_paths,
    longest_min_path_with_forced_max,
)

__all__ = [
    "Barrier",
    "BarrierDag",
    "BarrierEdge",
    "DominatorTree",
    "BarrierMask",
    "PathExplosionError",
    "all_paths",
    "k_longest_max_paths",
    "longest_min_path_with_forced_max",
]
