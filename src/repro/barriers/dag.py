"""The barrier dag ``(B, <_b)`` with weighted edges (paper section 3.1/4.4).

Nodes are :class:`~repro.barriers.model.Barrier` objects; there is an edge
``u -> v`` iff some processor executes ``v`` as the *next* barrier after
``u`` in its stream.  The edge carries the ``[min,max]`` execution time of
the code between the two barriers, combined over every processor sharing
the pair with the **join** rule of figure 13: because no processor
proceeds past ``v`` until all arrive, the minimum edge time is the
*maximum over processors* of the per-processor region minimum (and
likewise for the maximum).

The dag is immutable; when the schedule mutates it derives the next
snapshot *incrementally* with :meth:`BarrierDag.evolved_insert` /
:meth:`BarrierDag.evolved_replace` (fire-time re-propagation limited to
the affected downstream cone, topological-order splicing, descendant
bitset patching), falling back to a scratch rebuild only when no cached
dag exists.  ``REPRO_CHECK_INCREMENTAL=1`` cross-checks every evolved
snapshot against a scratch rebuild (see ``repro.core.schedule``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro import kernels
from repro.barriers.model import Barrier
from repro.obs.metrics import current_registry
from repro.obs.spans import span
from repro.timing import Interval, ZERO

__all__ = ["BarrierEdge", "BarrierDag"]


@dataclass(frozen=True, slots=True)
class BarrierEdge:
    """A directed edge of the barrier dag with its region time interval."""

    src: int  # barrier id
    dst: int  # barrier id
    weight: Interval


class BarrierDag:
    """Immutable snapshot of the barrier partial order with region weights."""

    def __init__(
        self,
        barriers: Iterable[Barrier],
        region_times: Mapping[tuple[int, int], Interval],
        initial: Barrier,
        barrier_latency: int = 0,
    ) -> None:
        """``barrier_latency`` models non-ideal barrier hardware: every
        (non-initial) barrier takes that many extra time units between the
        last arrival and the synchronous release.  The paper's experiments
        assume 0 ("barriers were assumed to always execute immediately",
        section 5); the [OKDi90] companion paper studies the hardware cost
        this knob stands in for.  Folding the latency into every incoming
        edge weight is exact: ``fire(v) = max(fire(u) + region + L)``.
        """
        if barrier_latency < 0:
            raise ValueError("barrier_latency must be >= 0")
        self.barrier_latency = barrier_latency
        self._barriers: dict[int, Barrier] = {b.id: b for b in barriers}
        if initial.id not in self._barriers:
            raise ValueError("initial barrier missing from barrier set")
        self.initial = initial
        self._weight: dict[tuple[int, int], Interval] = {
            edge: (weight + barrier_latency if barrier_latency else weight)
            for edge, weight in region_times.items()
        }
        self._succs: dict[int, list[int]] = {bid: [] for bid in self._barriers}
        self._preds: dict[int, list[int]] = {bid: [] for bid in self._barriers}
        for (u, v) in self._weight:
            if u not in self._barriers or v not in self._barriers:
                raise ValueError(f"edge ({u},{v}) references unknown barrier")
            self._succs[u].append(v)
            self._preds[v].append(u)
        self._topo: tuple[int, ...] = self._topological_order()
        self._order_index = {bid: k for k, bid in enumerate(self._topo)}
        self._fire: dict[int, Interval] | None = None
        # Reachability is memoized per dag as one bitset per barrier (bit k
        # set iff the barrier at topological index k is a descendant).  The
        # dag is an immutable snapshot -- the schedule rebuilds it, keyed by
        # revision, whenever it mutates -- so the memo never goes stale.
        self._desc_bits: list[int] | None = None
        self._desc_sets: dict[int, frozenset[int]] = {}
        # Lazily built edge tables for the numpy path kernels
        # (repro.kernels.pathvec); never survives an evolved copy.
        self._kern_cache = None

    # -- basic structure ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._barriers)

    def __contains__(self, barrier_id: int) -> bool:
        return barrier_id in self._barriers

    @property
    def barrier_ids(self) -> tuple[int, ...]:
        """All barrier ids in topological order (initial barrier first)."""
        return self._topo

    def barrier(self, barrier_id: int) -> Barrier:
        return self._barriers[barrier_id]

    def barriers(self) -> Iterator[Barrier]:
        for bid in self._topo:
            yield self._barriers[bid]

    def succs(self, barrier_id: int) -> tuple[int, ...]:
        return tuple(self._succs[barrier_id])

    def preds(self, barrier_id: int) -> tuple[int, ...]:
        return tuple(self._preds[barrier_id])

    def weight(self, u: int, v: int) -> Interval:
        return self._weight[(u, v)]

    def edges(self) -> Iterator[BarrierEdge]:
        for (u, v), w in self._weight.items():
            yield BarrierEdge(u, v, w)

    def _topological_order(self) -> tuple[int, ...]:
        in_deg = {bid: len(self._preds[bid]) for bid in self._barriers}
        frontier = sorted((bid for bid, d in in_deg.items() if d == 0), reverse=True)
        order: list[int] = []
        while frontier:
            bid = frontier.pop()
            order.append(bid)
            for s in self._succs[bid]:
                in_deg[s] -= 1
                if in_deg[s] == 0:
                    frontier.append(s)
        if len(order) != len(self._barriers):
            raise ValueError("barrier graph contains a cycle: <_b is not a partial order")
        if order and order[0] != self.initial.id and len(order) > 1:
            # The initial barrier has no predecessors and must come first for
            # the fire-time propagation; reorder deterministically.
            order.remove(self.initial.id)
            order.insert(0, self.initial.id)
        return tuple(order)

    # -- incremental evolution --------------------------------------------------

    def evolved_insert(
        self,
        new_barrier: Barrier,
        edge_edits: Mapping[tuple[int, int], Interval | None],
    ) -> "BarrierDag":
        """The dag after inserting ``new_barrier`` into the schedule.

        ``edge_edits`` maps ``(u, v)`` barrier-id pairs to the edge's new
        *raw* region weight (``barrier_latency`` not yet folded in), or to
        ``None`` to delete the edge.  Every *added* edge is incident to the
        new barrier (an insertion splits each stream's ``u -> v`` region
        into ``u -> b`` and ``b -> v``); deletions are the split-away
        pairs.  Equivalent to a scratch rebuild, but the work is bounded
        by the insertion's downstream cone.
        """
        with span("dag.evolved_insert", barrier=new_barrier.id):
            return self._evolved_insert(new_barrier, edge_edits)

    def _evolved_insert(
        self,
        new_barrier: Barrier,
        edge_edits: Mapping[tuple[int, int], Interval | None],
    ) -> "BarrierDag":
        new = object.__new__(BarrierDag)
        new.barrier_latency = self.barrier_latency
        new.initial = self.initial
        new._barriers = {**self._barriers, new_barrier.id: new_barrier}
        new._weight, new._succs, new._preds = self._edited_adjacency(
            edge_edits, add_nodes=(new_barrier.id,), drop_node=None
        )
        # Topological splice: the new node goes right after its last
        # predecessor when every successor already sits at or past that
        # slot (edge deletions only relax the old order, and all added
        # edges are incident to the new node).  Any valid topological
        # order is semantically equivalent -- consumers rely only on
        # "predecessors sort before successors".
        oi = self._order_index
        pos = 1 + max((oi[p] for p in new._preds[new_barrier.id]), default=0)
        spliced = all(oi[s] >= pos for s in new._succs[new_barrier.id])
        if spliced:
            new._topo = self._topo[:pos] + (new_barrier.id,) + self._topo[pos:]
        else:
            new._topo = new._topological_order()
        new._order_index = {bid: k for k, bid in enumerate(new._topo)}
        new._fire = self._refire(new, edge_edits, extra=(new_barrier.id,))
        new._desc_sets = {}
        new._kern_cache = None
        if spliced and self._desc_bits is not None:
            new._desc_bits = self._spliced_desc_bits(new, pos, new_barrier.id)
        else:
            new._desc_bits = None
        return new

    def evolved_replace(
        self,
        old_id: int,
        survivor: Barrier,
        edge_edits: Mapping[tuple[int, int], Interval | None],
    ) -> "BarrierDag":
        """The dag after a merge fused barrier ``old_id`` into ``survivor``.

        ``survivor`` is already a node of this dag; ``edge_edits`` delete
        every edge incident to ``old_id`` and reroute/reweigh the
        survivor's edges (raw region weights, as in
        :meth:`evolved_insert`).
        """
        with span("dag.evolved_replace", old=old_id, survivor=survivor.id):
            return self._evolved_replace(old_id, survivor, edge_edits)

    def _evolved_replace(
        self,
        old_id: int,
        survivor: Barrier,
        edge_edits: Mapping[tuple[int, int], Interval | None],
    ) -> "BarrierDag":
        new = object.__new__(BarrierDag)
        new.barrier_latency = self.barrier_latency
        new.initial = self.initial
        barriers = dict(self._barriers)
        del barriers[old_id]
        barriers[survivor.id] = survivor
        new._barriers = barriers
        new._weight, new._succs, new._preds = self._edited_adjacency(
            edge_edits, add_nodes=(), drop_node=old_id
        )
        # Dropping a node keeps the old order valid unless some rerouted
        # edge now points backwards in it.
        pruned = tuple(bid for bid in self._topo if bid != old_id)
        index = {bid: k for k, bid in enumerate(pruned)}
        if all(
            index[u] < index[v]
            for (u, v), w in edge_edits.items()
            if w is not None and (u, v) not in self._weight
        ):
            new._topo = pruned
            new._order_index = index
        else:
            new._topo = new._topological_order()
            new._order_index = {bid: k for k, bid in enumerate(new._topo)}
        new._fire = self._refire(
            new, edge_edits, extra=(survivor.id,), dropped=(old_id,)
        )
        new._desc_sets = {}
        new._desc_bits = None  # merges reroute reachability; recompute lazily
        new._kern_cache = None
        return new

    def _edited_adjacency(
        self,
        edge_edits: Mapping[tuple[int, int], Interval | None],
        add_nodes: tuple[int, ...],
        drop_node: int | None,
    ) -> tuple[
        dict[tuple[int, int], Interval], dict[int, list[int]], dict[int, list[int]]
    ]:
        """Copy-on-write weight/adjacency maps with ``edge_edits`` applied
        (only the adjacency lists of touched nodes are copied)."""
        weight = dict(self._weight)
        succs = dict(self._succs)
        preds = dict(self._preds)
        owned: set[int] = set(add_nodes)
        for bid in add_nodes:
            succs[bid] = []
            preds[bid] = []

        def own(bid: int) -> None:
            if bid not in owned:
                owned.add(bid)
                succs[bid] = list(succs[bid])
                preds[bid] = list(preds[bid])

        lat = self.barrier_latency
        for (u, v), w in edge_edits.items():
            if w is None:
                del weight[(u, v)]
                own(u)
                own(v)
                succs[u].remove(v)
                preds[v].remove(u)
            else:
                weight[(u, v)] = w + lat if lat else w
                if (u, v) not in self._weight:
                    own(u)
                    own(v)
                    succs[u].append(v)
                    preds[v].append(u)
        if drop_node is not None:
            if succs[drop_node] or preds[drop_node]:
                raise ValueError(
                    f"barrier {drop_node} still has edges; cannot drop it"
                )
            del succs[drop_node]
            del preds[drop_node]
        return weight, succs, preds

    def _refire(
        self,
        new: "BarrierDag",
        edge_edits: Mapping[tuple[int, int], Interval | None],
        extra: tuple[int, ...] = (),
        dropped: tuple[int, ...] = (),
    ) -> dict[int, Interval] | None:
        """Re-propagate memoized fire times through the affected cone.

        Seeds a min-heap (keyed by topological index) with every node
        whose in-edges changed; pops in topological order, so each node's
        predecessors are final when it is recomputed and each node is
        processed at most once.  Unchanged values stop the propagation --
        the exact "downstream cone" bound.  ``None`` if this dag never
        materialized fire times (the evolved dag stays lazy too).
        """
        if self._fire is None:
            return None
        fire = dict(self._fire)
        for bid in dropped:
            fire.pop(bid, None)
        oi = new._order_index
        pending: set[int] = set()
        heap: list[tuple[int, int]] = []

        def push(bid: int) -> None:
            if bid in oi and bid not in pending:
                pending.add(bid)
                heapq.heappush(heap, (oi[bid], bid))

        for bid in extra:
            push(bid)
        for (_, v) in edge_edits:
            push(v)
        cone = 0
        while heap:
            _, v = heapq.heappop(heap)
            cone += 1
            pending.discard(v)
            acc = ZERO
            for u in new._preds[v]:
                acc = acc.join(fire[u] + new._weight[(u, v)])
            if fire.get(v) != acc:
                fire[v] = acc
                for s in new._succs[v]:
                    push(s)
        reg = current_registry()
        if reg is not None:
            reg.observe("views.refire_cone", cone)
        return fire

    def _spliced_desc_bits(
        self, new: "BarrierDag", pos: int, new_id: int
    ) -> list[int]:
        """Patch memoized descendant bitsets for a topological splice at
        ``pos``: shift bit positions ``>= pos`` up by one, give the new
        node the union of its successors' closures, and OR that gain into
        every (transitive) ancestor.  Exact because every added edge is
        incident to the new node, so no other reachability changes."""
        oi = new._order_index
        if kernels.use_numpy("splice", len(self._desc_bits)):
            from repro.kernels import bitset

            with kernels.timed("splice", "numpy"):
                result = bitset.spliced_desc_bits(
                    self._desc_bits,
                    pos,
                    [oi[s] for s in new._succs[new_id]],
                    [oi[p] for p in new._preds[new_id]],
                )
            if kernels.checking():
                kernels.verify(
                    "splice",
                    result,
                    self._spliced_desc_bits_python(new, pos, new_id),
                )
            return result
        with kernels.timed("splice", "python"):
            return self._spliced_desc_bits_python(new, pos, new_id)

    def _spliced_desc_bits_python(
        self, new: "BarrierDag", pos: int, new_id: int
    ) -> list[int]:
        low = (1 << pos) - 1
        bits = [((w >> pos) << (pos + 1)) | (w & low) for w in self._desc_bits]
        bits.insert(pos, 0)
        oi = new._order_index
        acc = 0
        for s in new._succs[new_id]:
            si = oi[s]
            acc |= bits[si] | (1 << si)
        bits[pos] = acc
        pred_mask = 0
        for p in new._preds[new_id]:
            pred_mask |= 1 << oi[p]
        gain = acc | (1 << pos)
        for i, w in enumerate(bits):
            if i != pos and ((w & pred_mask) or ((1 << i) & pred_mask)):
                bits[i] = w | gain
        return bits

    # -- reachability -----------------------------------------------------------

    @property
    def order_index(self) -> Mapping[int, int]:
        """Barrier id -> topological index (the bit position of the
        reachability bitsets)."""
        return self._order_index

    def _descendant_bits(self) -> list[int]:
        """Per-barrier descendant bitsets, indexed by topological order.

        One reverse-topological sweep of word-parallel ORs: O(V * E / 64)
        instead of the per-query DFS the path enumeration used to pay.
        """
        if self._desc_bits is None:
            if kernels.use_numpy("descbits", len(self._topo)):
                from repro.kernels import bitset

                with kernels.timed("descbits", "numpy"):
                    succ_idx = [
                        [self._order_index[s] for s in self._succs[bid]]
                        for bid in self._topo
                    ]
                    bits = bitset.descendant_bits(succ_idx)
                if kernels.checking():
                    kernels.verify(
                        "descbits", bits, self._descendant_bits_python()
                    )
            else:
                with kernels.timed("descbits", "python"):
                    bits = self._descendant_bits_python()
            self._desc_bits = bits
        return self._desc_bits

    def _descendant_bits_python(self) -> list[int]:
        bits = [0] * len(self._topo)
        for idx in range(len(self._topo) - 1, -1, -1):
            acc = 0
            for s in self._succs[self._topo[idx]]:
                si = self._order_index[s]
                acc |= bits[si] | (1 << si)
            bits[idx] = acc
        return bits

    def descendants(self, barrier_id: int) -> frozenset[int]:
        """All barriers ordered after ``barrier_id`` (excluding itself)."""
        cached = self._desc_sets.get(barrier_id)
        if cached is None:
            word = self._descendant_bits()[self._order_index[barrier_id]]
            cached = frozenset(
                bid for k, bid in enumerate(self._topo) if (word >> k) & 1
            )
            self._desc_sets[barrier_id] = cached
        return cached

    def has_path(self, u: int, v: int) -> bool:
        """True iff ``u == v`` or ``u <_b v`` (a chain of barriers orders them).

        This is the *PathFind* procedure of the conservative insertion
        algorithm, step [1].  O(1) per query after the memoized bitset
        sweep."""
        if u == v:
            return True
        word = self._descendant_bits()[self._order_index[u]]
        return (word >> self._order_index[v]) & 1 == 1

    def ordered(self, u: int, v: int) -> bool:
        """True iff the two barriers are comparable under ``<_b``."""
        return self.has_path(u, v) or self.has_path(v, u)

    # -- timing ---------------------------------------------------------------------

    def fire_times(self) -> dict[int, Interval]:
        """``[min,max]`` fire time of every barrier relative to the initial
        barrier's release (time 0).

        ``fire(v) = join over in-edges (u,v) of fire(u) + weight(u,v)`` --
        the join implements "a barrier fires when its last participant
        arrives" for both bounds at once.
        """
        if self._fire is None:
            fire: dict[int, Interval] = {}
            for bid in self._topo:
                acc = ZERO
                for u in self._preds[bid]:
                    acc = acc.join(fire[u] + self._weight[(u, bid)])
                fire[bid] = acc
            self._fire = fire
        return dict(self._fire)

    def longest_path_max(self, u: int, v: int) -> int | None:
        """``l(psi_max(u, v))``: the longest ``u -> v`` path length assuming
        maximum execution times for all regions; ``None`` if no path.
        ``u == v`` gives 0."""
        return self._longest(u, v, use_max=True)

    def longest_path_min(self, u: int, v: int) -> int | None:
        """``l(psi_min(u, v))``: longest path under minimum region times.

        Note this is still a *longest* path: the earliest ``v`` can fire
        after ``u`` is governed by the slowest chain of arrivals even when
        every region takes its minimum time (figure 13)."""
        return self._longest(u, v, use_max=False)

    def _longest(self, u: int, v: int, use_max: bool) -> int | None:
        if u == v:
            return 0
        if not self.has_path(u, v):
            return None
        if kernels.use_numpy("paths", len(self._topo)):
            from repro.kernels import pathvec

            with kernels.timed("paths", "numpy"):
                result = pathvec.longest(self, u, v, use_max)
            if kernels.checking():
                kernels.verify(
                    "paths", result, self._longest_python(u, v, use_max)
                )
            return result
        with kernels.timed("paths", "python"):
            return self._longest_python(u, v, use_max)

    def _longest_python(self, u: int, v: int, use_max: bool) -> int | None:
        start = self._order_index[u]
        end = self._order_index[v]
        best: dict[int, int] = {u: 0}
        for bid in self._topo[start:end + 1]:
            if bid not in best:
                continue
            base = best[bid]
            for s in self._succs[bid]:
                if self._order_index[s] > end and s != v:
                    continue
                w = self._weight[(bid, s)]
                cand = base + (w.hi if use_max else w.lo)
                if cand > best.get(s, -1):
                    best[s] = cand
        return best.get(v)

    # -- interoperability -----------------------------------------------------------

    def to_networkx(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for bid in self._topo:
            graph.add_node(bid, barrier=self._barriers[bid])
        for (u, v), w in self._weight.items():
            graph.add_edge(u, v, weight=w)
        return graph

    def render(self) -> str:
        """Debug listing: each barrier with its successors and weights."""
        fire = self.fire_times()
        lines = []
        for bid in self._topo:
            b = self._barriers[bid]
            outs = ", ".join(
                f"b{s}{self._weight[(bid, s)]}" for s in sorted(self._succs[bid])
            )
            lines.append(
                f"b{bid:<3} fire={fire[bid]!s:<10} PEs={sorted(b.participants)} -> {outs or '-'}"
            )
        return "\n".join(lines)
