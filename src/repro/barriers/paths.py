"""Path analyses for the "optimal" barrier-insertion algorithm (section 4.4.2).

The conservative algorithm can insert a needless barrier when the longest
max-time path to the producer and the longest min-time path to the
consumer *overlap* (figure 13): the overlapping edges cannot
simultaneously take their maximum time on one path and their minimum on
the other.  The optimal algorithm therefore examines the k longest
max-paths to the producer in decreasing length order, and for each
recomputes the consumer's min-path with the overlapping edges forced to
their maximum time.

The walk almost always stops after a handful of paths -- as soon as one
path satisfies the plain timing condition, every shorter path does too --
so the ``psi^k_max`` sequence is produced *lazily* by
:func:`iter_longest_max_paths`, a best-first search that yields paths in
exact decreasing-length order without materializing (or sorting) the
full, potentially exponential path set.  :func:`k_longest_max_paths`
keeps the old materialized interface on top of it.

A hard cap (:data:`MAX_PATHS`) still bounds pathological walks that
genuinely visit many paths.  **Contract:** the generators yield up to
:data:`MAX_PATHS` paths normally and raise :class:`PathExplosionError`
*lazily, mid-iteration*, on the attempt to produce path
``MAX_PATHS + 1`` -- by then up to :data:`MAX_PATHS` paths have already
been yielded and consumed.  Callers that need the complete path set must
therefore treat any yielded prefix as void when the error arrives;
callers that decide early (the optimal check) simply stop iterating and
never trip the cap.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, Iterator, Sequence

from repro import kernels
from repro.barriers.dag import BarrierDag
from repro.obs.spans import event

__all__ = [
    "MAX_PATHS",
    "PathExplosionError",
    "all_paths",
    "iter_longest_max_paths",
    "k_longest_max_paths",
    "longest_min_path_with_forced_max",
]

#: Maximum number of paths produced before giving up.
MAX_PATHS = 20_000


class PathExplosionError(RuntimeError):
    """Raised when a barrier dag has too many ``u -> v`` paths to walk.

    Raised *after* :data:`MAX_PATHS` paths have been yielded (see the
    module docstring for the mid-iteration contract).
    """


def all_paths(dag: BarrierDag, u: int, v: int) -> Iterator[tuple[int, ...]]:
    """Yield every path from ``u`` to ``v`` as a tuple of barrier ids.

    ``u == v`` yields the trivial single-node path.  Paths in a dag are
    automatically simple.  Raises :class:`PathExplosionError` lazily on
    the attempt to yield path :data:`MAX_PATHS` ``+ 1`` -- i.e. *after*
    :data:`MAX_PATHS` paths were already yielded; consumers needing the
    complete set must discard the partial prefix on error.
    """
    if u == v:
        yield (u,)
        return
    if not dag.has_path(u, v):
        return

    produced = 0
    stack: list[int] = [u]

    def dfs(node: int) -> Iterator[tuple[int, ...]]:
        nonlocal produced
        if node == v:
            produced += 1
            if produced > MAX_PATHS:
                event("paths.explosion", u=u, v=v, produced=MAX_PATHS)
                raise PathExplosionError(
                    f"more than {MAX_PATHS} paths between barriers {u} and {v}"
                )
            yield tuple(stack)
            return
        for s in dag.succs(node):
            if s == v or dag.has_path(s, v):
                stack.append(s)
                yield from dfs(s)
                stack.pop()

    yield from dfs(u)


def _path_edges(path: Sequence[int]) -> tuple[tuple[int, int], ...]:
    return tuple(zip(path, path[1:]))


def path_length(dag: BarrierDag, path: Sequence[int], use_max: bool) -> int:
    total = 0
    for u, v in _path_edges(path):
        w = dag.weight(u, v)
        total += w.hi if use_max else w.lo
    return total


def _completion_bounds(dag: BarrierDag, u: int, v: int) -> dict[int, int]:
    """Longest max-time path length from each node to ``v``, for every
    node on some ``u -> v`` path.  One reverse-topological sweep."""
    if kernels.use_numpy("paths", len(dag)):
        from repro.kernels import pathvec

        with kernels.timed("paths", "numpy"):
            result = pathvec.completion_bounds(dag, u, v)
        if kernels.checking():
            kernels.verify(
                "paths.bounds", result, _completion_bounds_python(dag, u, v)
            )
        return result
    with kernels.timed("paths", "python"):
        return _completion_bounds_python(dag, u, v)


def _completion_bounds_python(dag: BarrierDag, u: int, v: int) -> dict[int, int]:
    bound: dict[int, int] = {v: 0}
    order = dag.barrier_ids
    index = dag.order_index
    start, end = index[u], index[v]
    for bid in reversed(order[start:end]):
        if bid != u and not dag.has_path(u, bid):
            continue
        best = None
        for s in dag.succs(bid):
            tail = bound.get(s)
            if tail is None:
                continue
            cand = dag.weight(bid, s).hi + tail
            if best is None or cand > best:
                best = cand
        if best is not None:
            bound[bid] = best
    return bound


def iter_longest_max_paths(
    dag: BarrierDag, u: int, v: int
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Lazily yield every ``u -> v`` path as ``(max_length, path)`` in
    decreasing max-length order, ties broken by path contents.

    This realizes the sequence ``psi_max(u,v), psi^2_max(u,v), ...`` of
    section 4.4.2 without enumerating the whole path set first: a
    best-first search over path prefixes, ranked by the prefix length
    plus the *exact* longest completion to ``v`` (an admissible,
    consistent bound computed by one reverse-topological sweep), pops
    complete paths in exactly the order the old enumerate-and-sort
    produced -- ``sorted(key=(-length, path))`` -- so consumers that stop
    after the first decisive path do sublinear work in the path count.

    Raises :class:`PathExplosionError` under the same lazy
    :data:`MAX_PATHS` contract as :func:`all_paths`.
    """
    if u == v:
        yield 0, (u,)
        return
    if not dag.has_path(u, v):
        return

    bound = _completion_bounds(dag, u, v)
    produced = 0
    # Heap entries: (-(length_so_far + best_completion), path, length_so_far).
    # Equal-priority entries tie-break on the path tuple, matching the old
    # sort key; with the exact completion bound this yields total order
    # identical to sorting all complete paths.
    heap: list[tuple[int, tuple[int, ...], int]] = [(-bound[u], (u,), 0)]
    while heap:
        neg_f, path, length = heappop(heap)
        node = path[-1]
        if node == v:
            produced += 1
            if produced > MAX_PATHS:
                event("paths.explosion", u=u, v=v, produced=MAX_PATHS)
                raise PathExplosionError(
                    f"more than {MAX_PATHS} paths between barriers {u} and {v}"
                )
            yield length, path
            continue
        for s in dag.succs(node):
            tail = bound.get(s)
            if tail is None:
                continue
            step = length + dag.weight(node, s).hi
            heappush(heap, (-(step + tail), path + (s,), step))


def k_longest_max_paths(
    dag: BarrierDag, u: int, v: int
) -> list[tuple[int, tuple[int, ...]]]:
    """All ``u -> v`` paths as ``(max_length, path)`` sorted by length desc.

    Materialized convenience wrapper over :func:`iter_longest_max_paths`;
    ties are broken by path contents for determinism, as before.
    """
    return list(iter_longest_max_paths(dag, u, v))


def longest_min_path_with_forced_max(
    dag: BarrierDag,
    u: int,
    w: int,
    forced_edges: Iterable[tuple[int, int]],
) -> int | None:
    """``l(psi*_min(u, w))``: longest ``u -> w`` path assuming minimum
    region times, *except* that edges in ``forced_edges`` (those lying on
    the producer path currently under examination) take their maximum time.

    Returns ``None`` when no path exists.
    """
    if u == w:
        return 0
    if not dag.has_path(u, w):
        return None
    forced = set(forced_edges)
    if kernels.use_numpy("paths", len(dag)):
        from repro.kernels import pathvec

        with kernels.timed("paths", "numpy"):
            result = pathvec.longest_min_forced(dag, u, w, forced)
        if kernels.checking():
            kernels.verify(
                "paths.forced",
                result,
                _longest_min_forced_python(dag, u, w, forced),
            )
        return result
    with kernels.timed("paths", "python"):
        return _longest_min_forced_python(dag, u, w, forced)


def _longest_min_forced_python(
    dag: BarrierDag, u: int, w: int, forced: set[tuple[int, int]]
) -> int | None:
    order = dag.barrier_ids
    index = dag.order_index
    end = index[w]
    best: dict[int, int] = {u: 0}
    for bid in order[index[u]:end + 1]:
        if bid not in best:
            continue
        base = best[bid]
        for s in dag.succs(bid):
            if index[s] > end:
                continue
            weight = dag.weight(bid, s)
            length = weight.hi if (bid, s) in forced else weight.lo
            cand = base + length
            if cand > best.get(s, -1):
                best[s] = cand
    return best.get(w)
