"""Path analyses for the "optimal" barrier-insertion algorithm (section 4.4.2).

The conservative algorithm can insert a needless barrier when the longest
max-time path to the producer and the longest min-time path to the
consumer *overlap* (figure 13): the overlapping edges cannot
simultaneously take their maximum time on one path and their minimum on
the other.  The optimal algorithm therefore examines the k longest
max-paths to the producer in decreasing length order, and for each
recomputes the consumer's min-path with the overlapping edges forced to
their maximum time.

Barrier dags are small (a few dozen barriers), so the k longest paths are
obtained by enumerating all ``u -> v`` paths and sorting.  A hard cap
(:data:`MAX_PATHS`) guards against pathological blowup; callers fall back
to the conservative answer when it is hit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.barriers.dag import BarrierDag

__all__ = [
    "MAX_PATHS",
    "PathExplosionError",
    "all_paths",
    "k_longest_max_paths",
    "longest_min_path_with_forced_max",
]

#: Maximum number of paths enumerated before giving up.
MAX_PATHS = 20_000


class PathExplosionError(RuntimeError):
    """Raised when a barrier dag has too many ``u -> v`` paths to enumerate."""


def all_paths(dag: BarrierDag, u: int, v: int) -> Iterator[tuple[int, ...]]:
    """Yield every path from ``u`` to ``v`` as a tuple of barrier ids.

    ``u == v`` yields the trivial single-node path.  Paths in a dag are
    automatically simple.  Raises :class:`PathExplosionError` past
    :data:`MAX_PATHS`.
    """
    if u == v:
        yield (u,)
        return
    if not dag.has_path(u, v):
        return

    produced = 0
    stack: list[int] = [u]

    def dfs(node: int) -> Iterator[tuple[int, ...]]:
        nonlocal produced
        if node == v:
            produced += 1
            if produced > MAX_PATHS:
                raise PathExplosionError(
                    f"more than {MAX_PATHS} paths between barriers {u} and {v}"
                )
            yield tuple(stack)
            return
        for s in dag.succs(node):
            if s == v or dag.has_path(s, v):
                stack.append(s)
                yield from dfs(s)
                stack.pop()

    yield from dfs(u)


def _path_edges(path: Sequence[int]) -> tuple[tuple[int, int], ...]:
    return tuple(zip(path, path[1:]))


def path_length(dag: BarrierDag, path: Sequence[int], use_max: bool) -> int:
    total = 0
    for u, v in _path_edges(path):
        w = dag.weight(u, v)
        total += w.hi if use_max else w.lo
    return total


def k_longest_max_paths(
    dag: BarrierDag, u: int, v: int
) -> list[tuple[int, tuple[int, ...]]]:
    """All ``u -> v`` paths as ``(max_length, path)`` sorted by length desc.

    This realizes the sequence ``psi_max(u,v), psi^2_max(u,v), ...`` of
    section 4.4.2.  Ties are broken by path contents for determinism.
    """
    scored = [
        (path_length(dag, p, use_max=True), p) for p in all_paths(dag, u, v)
    ]
    scored.sort(key=lambda item: (-item[0], item[1]))
    return scored


def longest_min_path_with_forced_max(
    dag: BarrierDag,
    u: int,
    w: int,
    forced_edges: Iterable[tuple[int, int]],
) -> int | None:
    """``l(psi*_min(u, w))``: longest ``u -> w`` path assuming minimum
    region times, *except* that edges in ``forced_edges`` (those lying on
    the producer path currently under examination) take their maximum time.

    Returns ``None`` when no path exists.
    """
    if u == w:
        return 0
    if not dag.has_path(u, w):
        return None
    forced = set(forced_edges)
    order = dag.barrier_ids
    index = {bid: k for k, bid in enumerate(order)}
    end = index[w]
    best: dict[int, int] = {u: 0}
    for bid in order[index[u]:end + 1]:
        if bid not in best:
            continue
        base = best[bid]
        for s in dag.succs(bid):
            if index[s] > end:
                continue
            weight = dag.weight(bid, s)
            length = weight.hi if (bid, s) in forced else weight.lo
            cand = base + length
            if cand > best.get(s, -1):
                best[s] = cand
    return best.get(w)
