"""Barrier bit masks (paper section 3.2, figure 11).

"Each barrier is represented by a bit mask indicating which processors
participate in that barrier; these bit masks are enqueued into a FIFO
queue in the sequence in which they will be executed. ... When the set of
processors waiting for a barrier becomes a subset of the waiting
processors in the top barrier mask, the top barrier executes and is
removed from the queue."

:class:`BarrierMask` is the word-level model of that hardware: an
``n_pes``-bit mask with the subset test the SBM queue controller
performs.  The simulators in :mod:`repro.machine` operate on these masks
rather than on scheduler objects, keeping the "hardware" layer faithful
to the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["BarrierMask"]


@dataclass(frozen=True, slots=True)
class BarrierMask:
    """An immutable bit mask over ``n_pes`` processors."""

    bits: int
    n_pes: int

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if self.bits < 0 or self.bits >= (1 << self.n_pes):
            raise ValueError(f"mask {self.bits:#x} out of range for {self.n_pes} PEs")

    @staticmethod
    def from_pes(pes: Iterable[int], n_pes: int) -> "BarrierMask":
        bits = 0
        for pe in pes:
            if not 0 <= pe < n_pes:
                raise ValueError(f"PE index {pe} out of range [0, {n_pes})")
            bits |= 1 << pe
        return BarrierMask(bits, n_pes)

    @staticmethod
    def empty(n_pes: int) -> "BarrierMask":
        return BarrierMask(0, n_pes)

    @staticmethod
    def full(n_pes: int) -> "BarrierMask":
        return BarrierMask((1 << n_pes) - 1, n_pes)

    # -- the hardware operations -------------------------------------------

    def is_subset_of(self, other: "BarrierMask") -> bool:
        """The firing test: all of our processors are within ``other``."""
        return (self.bits & ~other.bits) == 0

    def covers(self, other: "BarrierMask") -> bool:
        return other.is_subset_of(self)

    def with_wait(self, pe: int) -> "BarrierMask":
        """A new mask with ``pe``'s WAIT line asserted."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE index {pe} out of range")
        return BarrierMask(self.bits | (1 << pe), self.n_pes)

    def release(self, fired: "BarrierMask") -> "BarrierMask":
        """Clear the WAIT lines of the processors released by ``fired``."""
        return BarrierMask(self.bits & ~fired.bits, self.n_pes)

    # -- conveniences ---------------------------------------------------------

    def __contains__(self, pe: int) -> bool:
        return 0 <= pe < self.n_pes and bool(self.bits >> pe & 1)

    def __iter__(self) -> Iterator[int]:
        for pe in range(self.n_pes):
            if self.bits >> pe & 1:
                yield pe

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __str__(self) -> str:
        return format(self.bits, f"0{self.n_pes}b")[::-1]  # PE0 leftmost
