"""Barrier bit masks (paper section 3.2, figure 11).

"Each barrier is represented by a bit mask indicating which processors
participate in that barrier; these bit masks are enqueued into a FIFO
queue in the sequence in which they will be executed. ... When the set of
processors waiting for a barrier becomes a subset of the waiting
processors in the top barrier mask, the top barrier executes and is
removed from the queue."

:class:`BarrierMask` is the word-level model of that hardware: an
``n_pes``-bit mask with the subset test the SBM queue controller
performs.  The simulators in :mod:`repro.machine` operate on these masks
rather than on scheduler objects, keeping the "hardware" layer faithful
to the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["BarrierMask", "BarrierTree"]


@dataclass(frozen=True, slots=True)
class BarrierMask:
    """An immutable bit mask over ``n_pes`` processors."""

    bits: int
    n_pes: int

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if self.bits < 0 or self.bits >= (1 << self.n_pes):
            raise ValueError(f"mask {self.bits:#x} out of range for {self.n_pes} PEs")

    @staticmethod
    def from_pes(pes: Iterable[int], n_pes: int) -> "BarrierMask":
        bits = 0
        for pe in pes:
            if not 0 <= pe < n_pes:
                raise ValueError(f"PE index {pe} out of range [0, {n_pes})")
            bits |= 1 << pe
        return BarrierMask(bits, n_pes)

    @staticmethod
    def empty(n_pes: int) -> "BarrierMask":
        return BarrierMask(0, n_pes)

    @staticmethod
    def full(n_pes: int) -> "BarrierMask":
        return BarrierMask((1 << n_pes) - 1, n_pes)

    # -- the hardware operations -------------------------------------------

    def is_subset_of(self, other: "BarrierMask") -> bool:
        """The firing test: all of our processors are within ``other``."""
        return (self.bits & ~other.bits) == 0

    def covers(self, other: "BarrierMask") -> bool:
        return other.is_subset_of(self)

    def with_wait(self, pe: int) -> "BarrierMask":
        """A new mask with ``pe``'s WAIT line asserted."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE index {pe} out of range")
        return BarrierMask(self.bits | (1 << pe), self.n_pes)

    def release(self, fired: "BarrierMask") -> "BarrierMask":
        """Clear the WAIT lines of the processors released by ``fired``."""
        return BarrierMask(self.bits & ~fired.bits, self.n_pes)

    # -- conveniences ---------------------------------------------------------

    def __contains__(self, pe: int) -> bool:
        return 0 <= pe < self.n_pes and bool(self.bits >> pe & 1)

    def __iter__(self) -> Iterator[int]:
        # Set-bit iteration: O(popcount), not O(n_pes).  At 1024 PEs the
        # engine iterates masks constantly and most barriers are narrow.
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __str__(self) -> str:
        return format(self.bits, f"0{self.n_pes}b")[::-1]  # PE0 leftmost


class BarrierTree:
    """Hierarchical (radix-64) barrier arrival aggregation.

    A flat SBM queue controller answers "has every participant of the
    top barrier arrived?" by comparing an ``n_pes``-bit arrival set
    against the barrier mask -- an O(n_pes)-bit operation per check
    that turns quadratic at machine widths like 1024 PEs.  Real
    wide-barrier hardware aggregates arrivals through a tree of AND
    gates instead; this class is that tree in software.

    Per registered barrier, the PE bits are sliced into 64-bit words
    (level 0); each level's *complete* words raise one summary bit on
    the level above, recursively, until a single word remains.  An
    ``arrive`` touches O(log64 n_pes) words, and ``ready`` is a single
    top-word comparison -- O(1) regardless of machine width.

    The tree tracks *per-barrier* arrival sets keyed by barrier id, so
    a controller can aggregate arrivals for queued barriers while the
    hardware FIFO order still decides what fires.  ``release`` drops
    the barrier's state once it has fired.
    """

    def __init__(self, n_pes: int) -> None:
        if n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        self.n_pes = n_pes
        levels = 1
        width = (n_pes + 63) // 64
        while width > 1:
            levels += 1
            width = (width + 63) // 64
        self._levels = levels
        #: per level: barrier id -> {word index -> need bits}
        self._need: list[dict[int, dict[int, int]]] = [
            {} for _ in range(levels)
        ]
        #: per level: barrier id -> {word index -> arrived/summary bits}
        self._got: list[dict[int, dict[int, int]]] = [{} for _ in range(levels)]

    def __contains__(self, barrier_id: int) -> bool:
        return barrier_id in self._need[0]

    def register(self, barrier_id: int, mask: BarrierMask) -> None:
        """Install a barrier's participant mask (idempotent re-register
        resets its arrivals)."""
        if mask.n_pes != self.n_pes:
            raise ValueError(
                f"mask is {mask.n_pes} PEs wide, tree is {self.n_pes}"
            )
        need: dict[int, int] = {}
        bits = mask.bits
        word = 0
        while bits:
            chunk = bits & 0xFFFFFFFFFFFFFFFF
            if chunk:
                need[word] = chunk
            bits >>= 64
            word += 1
        self._need[0][barrier_id] = need
        self._got[0][barrier_id] = {}
        for level in range(1, self._levels):
            up: dict[int, int] = {}
            for w in self._need[level - 1][barrier_id]:
                up[w >> 6] = up.get(w >> 6, 0) | (1 << (w & 63))
            self._need[level][barrier_id] = up
            self._got[level][barrier_id] = {}

    def arrive(self, barrier_id: int, pe: int) -> None:
        """Record ``pe``'s arrival; propagate complete-word summary bits
        up the tree.  O(log64 n_pes)."""
        need = self._need[0].get(barrier_id)
        if need is None:
            raise ValueError(f"barrier {barrier_id} is not registered")
        w, b = pe >> 6, pe & 63
        if not (need.get(w, 0) >> b) & 1:
            raise ValueError(
                f"PE {pe} does not participate in barrier {barrier_id}"
            )
        for level in range(self._levels):
            got = self._got[level][barrier_id]
            prev = got.get(w, 0)
            cur = prev | (1 << b)
            if cur == prev:
                return  # duplicate arrival: nothing new to propagate
            got[w] = cur
            if cur != self._need[level][barrier_id][w]:
                return  # word incomplete: no summary bit to raise yet
            w, b = w >> 6, w & 63

    def ready(self, barrier_id: int) -> bool:
        """True when every participant has arrived: one top-word compare."""
        top = self._levels - 1
        need = self._need[top].get(barrier_id)
        if need is None:
            raise ValueError(f"barrier {barrier_id} is not registered")
        got = self._got[top][barrier_id]
        return all(got.get(w, 0) == bits for w, bits in need.items())

    def missing(self, barrier_id: int) -> "BarrierMask":
        """Participants that have not arrived yet, as a mask."""
        need = self._need[0].get(barrier_id)
        if need is None:
            raise ValueError(f"barrier {barrier_id} is not registered")
        got = self._got[0][barrier_id]
        bits = 0
        for w, want in need.items():
            bits |= (want & ~got.get(w, 0)) << (w * 64)
        return BarrierMask(bits, self.n_pes)

    def release(self, barrier_id: int) -> None:
        """Drop the fired barrier's tree state."""
        for level in range(self._levels):
            self._need[level].pop(barrier_id, None)
            self._got[level].pop(barrier_id, None)
