"""Dominator tree over the barrier dag (paper section 4.4).

"A barrier x *dominates* barrier y, written x dom y, if every path from
the initial node of the barrier dag to y goes through x.  With this
definition, the initial barrier dominates all other barriers in the dag
and every barrier dominates itself."

The conservative insertion algorithm needs the *nearest common dominating
barrier* ``CommonDom(g, i)`` of ``LastBar(g)`` and ``LastBar(i)``: the
last synchronization point shared by the producer's and consumer's
processors, from which relative timing can be propagated.  That is the
nearest common ancestor of the two barriers in the dominator tree.

We use the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"): immediate dominators are computed by intersecting
predecessor dominators in reverse postorder until a fixpoint.  Barrier
dags are small, so this is effectively linear in practice.
"""

from __future__ import annotations

from typing import Mapping

from repro.barriers.dag import BarrierDag

__all__ = ["DominatorTree"]


class DominatorTree:
    """Immediate-dominator tree of a :class:`BarrierDag`."""

    def __init__(self, dag: BarrierDag) -> None:
        self._dag = dag
        self._idom: dict[int, int] = _compute_idoms(dag)
        self._depth: dict[int, int] = {}
        root = dag.initial.id
        self._depth[root] = 0
        # Nodes come out of barrier_ids topologically sorted, and an idom
        # always precedes its node topologically, so one sweep sets depths.
        for bid in dag.barrier_ids:
            if bid == root:
                continue
            self._depth[bid] = self._depth[self._idom[bid]] + 1

    @property
    def root(self) -> int:
        return self._dag.initial.id

    def idom(self, barrier_id: int) -> int | None:
        """Immediate dominator, or ``None`` for the initial barrier."""
        if barrier_id == self.root:
            return None
        return self._idom[barrier_id]

    def depth(self, barrier_id: int) -> int:
        return self._depth[barrier_id]

    def dominates(self, x: int, y: int) -> bool:
        """True iff ``x dom y`` (every barrier dominates itself)."""
        while self._depth[y] > self._depth[x]:
            y = self._idom[y]
        return x == y

    def nearest_common_dominator(self, x: int, y: int) -> int:
        """``CommonDom``: nearest common ancestor in the dominator tree."""
        while x != y:
            if self._depth[x] >= self._depth[y]:
                x = self._idom[x]
            else:
                y = self._idom[y]
        return x

    def as_mapping(self) -> Mapping[int, int | None]:
        """``barrier id -> immediate dominator id`` (root maps to None)."""
        out: dict[int, int | None] = {self.root: None}
        out.update(self._idom)
        return out


def _compute_idoms(dag: BarrierDag) -> dict[int, int]:
    """Cooper-Harvey-Kennedy iterative dominator computation."""
    # barrier_ids is a topological order, which is a reverse postorder of
    # an acyclic graph for the purposes of the CHK fixpoint iteration.
    order = dag.barrier_ids
    index = {bid: k for k, bid in enumerate(order)}
    root = dag.initial.id
    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in order:
            if bid == root:
                continue
            preds = [p for p in dag.preds(bid) if p in idom]
            if not preds:
                raise ValueError(
                    f"barrier {bid} is unreachable from the initial barrier"
                )
            new = preds[0]
            for p in preds[1:]:
                new = intersect(new, p)
            if idom.get(bid) != new:
                idom[bid] = new
                changed = True

    idom.pop(root)
    return idom
