"""Dominator tree over the barrier dag (paper section 4.4).

"A barrier x *dominates* barrier y, written x dom y, if every path from
the initial node of the barrier dag to y goes through x.  With this
definition, the initial barrier dominates all other barriers in the dag
and every barrier dominates itself."

The conservative insertion algorithm needs the *nearest common dominating
barrier* ``CommonDom(g, i)`` of ``LastBar(g)`` and ``LastBar(i)``: the
last synchronization point shared by the producer's and consumer's
processors, from which relative timing can be propagated.  That is the
nearest common ancestor of the two barriers in the dominator tree.

Immediate dominators are computed with the Cooper-Harvey-Kennedy
*intersect* over the predecessors of each node.  Because the barrier dag
is acyclic and nodes are processed in topological order, every
predecessor's dominator chain is already final when a node is reached,
so a **single pass** computes the exact dominator tree -- no fixpoint
iteration is needed (the classic CHK loop exists for cyclic CFGs).

The same property powers the *incremental* rebuild
(:meth:`DominatorTree.evolved`) used by the scheduler: a barrier
insertion or merge can only change the dominators of barriers
topologically **after** the first affected node (dominator chains of
earlier nodes never traverse the changed region), so idoms before that
point are copied from the previous tree and the one-pass recompute is
restricted to the downstream cone.  For a freshly inserted barrier this
degenerates to the textbook rule: its idom is the nearest common
dominator of its predecessors.

Query complexity: ``dominates`` is O(1) via Euler-tour intervals of the
dominator tree; ``nearest_common_dominator`` is O(log depth) via binary
lifting (the lifting table is built lazily on the first NCA query).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro import kernels
from repro.barriers.dag import BarrierDag
from repro.obs.spans import span

__all__ = ["DominatorTree"]


class DominatorTree:
    """Immediate-dominator tree of a :class:`BarrierDag`."""

    def __init__(self, dag: BarrierDag, _idom: dict[int, int] | None = None) -> None:
        self._dag = dag
        self._idom: dict[int, int] = _compute_idoms(dag) if _idom is None else _idom
        if kernels.use_numpy("domin", len(dag)):
            from repro.kernels import domin

            with kernels.timed("domin", "numpy"):
                depth, tin, tout = domin.tree_views(dag, self._idom)
            if kernels.checking():
                kernels.verify(
                    "domin", (depth, tin, tout), self._tree_views_python()
                )
        else:
            with kernels.timed("domin", "python"):
                depth, tin, tout = self._tree_views_python()
        self._depth = depth
        self._tin = tin
        self._tout = tout
        #: Binary-lifting ancestor table, built lazily on the first NCA query.
        self._up: list[dict[int, int]] | None = None

    def _tree_views_python(
        self,
    ) -> tuple[dict[int, int], dict[int, int], dict[int, int]]:
        dag = self._dag
        root = dag.initial.id
        depth: dict[int, int] = {root: 0}
        # Nodes come out of barrier_ids topologically sorted, and an idom
        # always precedes its node topologically, so one sweep sets depths.
        children: dict[int, list[int]] = {bid: [] for bid in dag.barrier_ids}
        for bid in dag.barrier_ids:
            if bid == root:
                continue
            idom = self._idom[bid]
            depth[bid] = depth[idom] + 1
            children[idom].append(bid)
        # Euler-tour intervals over the dominator tree: x dominates y iff
        # y's interval nests inside x's.  O(1) per query after this O(B)
        # iterative DFS (children visited in topological order).
        tin: dict[int, int] = {}
        tout: dict[int, int] = {}
        clock = 0
        stack: list[tuple[int, bool]] = [(root, False)]
        while stack:
            node, closing = stack.pop()
            if closing:
                tout[node] = clock
                continue
            tin[node] = clock
            clock += 1
            stack.append((node, True))
            for child in reversed(children[node]):
                stack.append((child, False))
        return depth, tin, tout

    @classmethod
    def evolved(
        cls, dag: BarrierDag, previous: "DominatorTree", affected: Iterable[int]
    ) -> "DominatorTree":
        """Incremental rebuild after a structural dag update.

        ``affected`` are the barrier ids (present in ``dag``) whose
        predecessor sets changed -- the freshly inserted barrier, or a
        merge survivor plus the targets of its rewired edges.  Dominators
        of barriers topologically before the first affected node are
        reused from ``previous``; only the downstream cone is recomputed.
        """
        with span("dom.evolved"):
            index = dag.order_index
            start = min(
                (index[bid] for bid in affected if bid in index), default=0
            )
            order = dag.barrier_ids
            seed = {}
            prev_idom = previous._idom
            for bid in order[:start]:
                idom = prev_idom.get(bid)
                if idom is not None:
                    seed[bid] = idom
            return cls(dag, _idom=_compute_idoms(dag, seed=seed, start=start))

    @property
    def root(self) -> int:
        return self._dag.initial.id

    def idom(self, barrier_id: int) -> int | None:
        """Immediate dominator, or ``None`` for the initial barrier."""
        if barrier_id == self.root:
            return None
        return self._idom[barrier_id]

    def depth(self, barrier_id: int) -> int:
        return self._depth[barrier_id]

    def dominates(self, x: int, y: int) -> bool:
        """True iff ``x dom y`` (every barrier dominates itself)."""
        return self._tin[x] <= self._tin[y] and self._tout[y] <= self._tout[x]

    def _lift(self) -> list[dict[int, int]]:
        """``up[k][v]``: the ``2**k``-th ancestor of ``v`` (clamped at the
        root).  Built once per tree, on the first NCA query."""
        if self._up is None:
            root = self.root
            level0 = {bid: (root if bid == root else self._idom[bid])
                      for bid in self._depth}
            up = [level0]
            max_depth = max(self._depth.values(), default=0)
            while (1 << len(up)) <= max_depth:
                prev = up[-1]
                up.append({bid: prev[prev[bid]] for bid in prev})
            self._up = up
        return self._up

    def nearest_common_dominator(self, x: int, y: int) -> int:
        """``CommonDom``: nearest common ancestor in the dominator tree."""
        if self.dominates(x, y):
            return x
        if self.dominates(y, x):
            return y
        # Lift x to its deepest ancestor that still does NOT dominate y;
        # that ancestor's idom is the NCA.  O(log depth).
        up = self._lift()
        for level in reversed(up):
            anc = level[x]
            if not self.dominates(anc, y):
                x = anc
        return self._idom[x]

    def as_mapping(self) -> Mapping[int, int | None]:
        """``barrier id -> immediate dominator id`` (root maps to None)."""
        out: dict[int, int | None] = {self.root: None}
        out.update(self._idom)
        return out


def _compute_idoms(
    dag: BarrierDag, seed: dict[int, int] | None = None, start: int = 0
) -> dict[int, int]:
    """One-pass Cooper-Harvey-Kennedy dominators over an acyclic dag.

    ``barrier_ids`` is a topological order, so every predecessor of a
    node -- and every node on a predecessor's dominator chain -- is
    processed before the node itself.  One pass in that order therefore
    computes the exact dominator tree: ``idom(v)`` is the nearest common
    ancestor of ``preds(v)`` in the (already final) tree above ``v``.

    ``seed``/``start`` implement the incremental rebuild: idoms for
    nodes before topological index ``start`` are taken from ``seed``
    verbatim and only ``order[start:]`` is recomputed.
    """
    order = dag.barrier_ids
    index = dag.order_index
    root = dag.initial.id
    idom: dict[int, int] = {root: root}
    if seed:
        idom.update(seed)

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    for bid in order[start:]:
        if bid == root:
            continue
        preds = dag.preds(bid)
        if not preds:
            raise ValueError(
                f"barrier {bid} is unreachable from the initial barrier"
            )
        new = preds[0]
        for p in preds[1:]:
            new = intersect(new, p)
        idom[bid] = new

    idom.pop(root)
    return idom
