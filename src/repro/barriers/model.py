"""The :class:`Barrier` object shared by the scheduler and the simulators.

A barrier is identified by a small integer id and spans a set of
processors.  Semantics (section 3.1): no participating processor proceeds
past the barrier until all participants have arrived, and when the barrier
*fires* all participants resume **simultaneously** -- that exact-synchrony
release is what distinguishes a barrier MIMD from machines with ordinary
barriers and what re-zeroes the compiler's timing uncertainty.

Barriers are mutable only through :meth:`absorb` (the SBM merging step of
section 4.4.3); identity, not value, is what matters, so they hash by id.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["Barrier"]


class Barrier:
    """A synchronization barrier across a set of processor indices."""

    __slots__ = ("id", "participants", "is_initial", "merged_from")

    def __init__(
        self,
        barrier_id: int,
        participants: Iterable[int],
        is_initial: bool = False,
    ) -> None:
        self.id = barrier_id
        self.participants: set[int] = set(participants)
        if not self.participants:
            raise ValueError("a barrier must span at least one processor")
        self.is_initial = is_initial
        #: ids of barriers merged into this one (provenance for statistics).
        self.merged_from: list[int] = []

    def absorb(self, other: "Barrier") -> None:
        """Merge ``other`` into this barrier (participant sets must be
        disjoint: unordered barriers never share a processor)."""
        if other is self:
            raise ValueError("cannot merge a barrier with itself")
        overlap = self.participants & other.participants
        if overlap:
            raise ValueError(
                f"merging barriers {self.id} and {other.id} that share "
                f"processors {sorted(overlap)}: they must be dag-ordered"
            )
        self.participants |= other.participants
        self.merged_from.append(other.id)
        self.merged_from.extend(other.merged_from)

    def spans(self, pe: int) -> bool:
        return pe in self.participants

    @property
    def width(self) -> int:
        return len(self.participants)

    def __repr__(self) -> str:
        tag = "b0" if self.is_initial else f"b{self.id}"
        pes = ",".join(str(p) for p in sorted(self.participants))
        return f"<{tag} PEs={{{pes}}}>"

    def __hash__(self) -> int:
        return hash(("barrier", self.id))

    def __eq__(self, other: object) -> bool:
        return self is other
