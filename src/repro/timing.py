"""Integer interval arithmetic for ``[min, max]`` execution times.

Every quantity the barrier-MIMD scheduler reasons about -- instruction
latencies, code-region lengths, barrier fire times, node heights -- is an
integer interval ``[lo, hi]`` meaning "this event takes/occurs at between
``lo`` and ``hi`` time units, inclusive".  The paper (section 4) calls these
the *minimum* and *maximum* execution times; tracking both is what lets the
compiler prove ``consumer.start_min >= producer.finish_max`` and thereby
discharge a synchronization statically.

The operations implemented here mirror exactly what the scheduling and
barrier-insertion algorithms need:

``a + b``
    Sequential composition: both bounds add.
``a | b`` (:meth:`Interval.join`)
    Barrier semantics / path maxima: a barrier fires when the *last*
    participant arrives, so both bounds take the max.
``a.hull(b)``
    Convex hull (min of mins, max of maxes) -- used when merging barriers.
``a.definitely_before(b)``
    ``a.hi <= b.lo``: the static-scheduling test of figure 4.
``a.overlaps(b)``
    Used by the SBM barrier-merging rule of section 4.4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Interval", "ZERO", "interval_sum", "interval_max"]


@dataclass(frozen=True, slots=True, order=False)
class Interval:
    """A closed integer interval ``[lo, hi]`` with ``0 <= lo <= hi``.

    Instances are immutable and hashable so they can be used as dict keys
    and memoization-cache entries in the path analyses.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")
        if self.lo < 0:
            raise ValueError(f"negative time: lo={self.lo}")

    # -- constructors -----------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        """The degenerate interval ``[value, value]`` (fixed-time event)."""
        return Interval(value, value)

    @staticmethod
    def of(lo: int, hi: int | None = None) -> "Interval":
        """``Interval.of(3)`` == ``[3,3]``; ``Interval.of(1, 4)`` == ``[1,4]``."""
        return Interval(lo, lo if hi is None else hi)

    # -- basic queries ----------------------------------------------------

    @property
    def width(self) -> int:
        """The timing *fuzziness* ``hi - lo``.

        A barrier resets the fuzziness between processors to zero; as
        variable-time instructions execute the width grows again.
        """
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, t: int) -> bool:
        return self.lo <= t <= self.hi

    def __iter__(self) -> Iterator[int]:
        yield self.lo
        yield self.hi

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "Interval | int") -> "Interval":
        if isinstance(other, int):
            return Interval(self.lo + other, self.hi + other)
        return Interval(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def join(self, other: "Interval") -> "Interval":
        """Barrier join: fire time when *both* events must have happened.

        ``join`` takes the maximum of each bound independently.  This is the
        rule of figure 13: the minimum time of a region between two barriers
        is the *maximum* of the minimum times over all participating
        processors, because no processor proceeds until all have arrived.
        """
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def __or__(self, other: "Interval") -> "Interval":
        return self.join(other)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (used when merging barriers)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- ordering tests used by the scheduler ------------------------------

    def definitely_before(self, other: "Interval") -> bool:
        """True iff this event is over before the other can begin.

        This is the static-synchronization test of section 3 (figure 4):
        no runtime synchronization is needed between a producer finishing in
        ``self`` and a consumer starting in ``other`` iff
        ``self.hi <= other.lo``.
        """
        return self.hi <= other.lo

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one instant."""
        return self.lo <= other.hi and other.lo <= self.hi

    def scale(self, factor: float) -> "Interval":
        """Widen/narrow the interval about its minimum (timing ablation E12).

        The minimum stays fixed while the *variation* ``hi - lo`` is
        multiplied by ``factor`` (rounded to an int, floor at 0).
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Interval(self.lo, self.lo + max(0, round(self.width * factor)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo},{self.hi}]"


ZERO = Interval(0, 0)


def interval_sum(items: Iterable[Interval]) -> Interval:
    """Sum a sequence of intervals (sequential execution of a code region)."""
    total = ZERO
    for item in items:
        total = total + item
    return total


def interval_max(items: Iterable[Interval], default: Interval = ZERO) -> Interval:
    """Component-wise maximum (barrier join) over a sequence of intervals."""
    result: Interval | None = None
    for item in items:
        result = item if result is None else result.join(item)
    return default if result is None else result
