"""Schedule quality reports.

:func:`analyze_schedule` condenses a finished
:class:`~repro.core.scheduler.ScheduleResult` into the numbers an
architect would ask about beyond the paper's three fractions:

* **barrier statistics** -- how many barriers, how wide (the SBM merging
  discussion in section 4.4.3 is all about barrier width), how their
  fire windows are spread over the schedule;
* **processor utilization** -- worst-case busy time per processor over
  the worst-case makespan, plus the load-balance spread the step [2]
  random tie-breaking is meant to help;
* **resolution breakdown** -- the per-kind edge counts with the
  secondary-effect share (figures 7/8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheduler import ScheduleResult
from repro.metrics.fractions import SyncFractions, fractions_of
from repro.timing import Interval

__all__ = ["BarrierStats", "UtilizationStats", "ScheduleReport", "analyze_schedule"]


@dataclass(frozen=True)
class BarrierStats:
    """Shape of the schedule's barrier population (initial excluded)."""

    count: int
    mean_width: float
    max_width: int
    widths: tuple[int, ...]
    fire_windows: tuple[Interval, ...]
    merged_count: int  # barriers that absorbed at least one other

    @property
    def merge_share(self) -> float:
        return self.merged_count / self.count if self.count else 0.0


@dataclass(frozen=True)
class UtilizationStats:
    """Worst-case processor occupancy."""

    per_pe_busy: tuple[int, ...]  # sum of max latencies per processor
    makespan: Interval
    processors_used: int

    @property
    def utilization(self) -> float:
        """Busy time over capacity, counting only processors in use."""
        if not self.processors_used or self.makespan.hi == 0:
            return 0.0
        return sum(self.per_pe_busy) / (self.processors_used * self.makespan.hi)

    @property
    def imbalance(self) -> float:
        """Max busy / mean busy over used processors (1.0 = perfect)."""
        used = [b for b in self.per_pe_busy if b > 0]
        if not used:
            return 0.0
        return max(used) / (sum(used) / len(used))


@dataclass(frozen=True)
class ScheduleReport:
    fractions: SyncFractions
    barriers: BarrierStats
    utilization: UtilizationStats
    secondary_share: float  # of all non-serialized resolutions
    repairs: int

    def render(self) -> str:
        b = self.barriers
        u = self.utilization
        windows = " ".join(str(w) for w in b.fire_windows[:8])
        if len(b.fire_windows) > 8:
            windows += " ..."
        return "\n".join(
            [
                "schedule report",
                f"  {self.fractions.render()}",
                f"  barriers: {b.count} (mean width {b.mean_width:.1f}, "
                f"max {b.max_width}, {b.merge_share:.0%} merged)",
                f"  fire windows: {windows or '(none)'}",
                f"  processors used: {u.processors_used}, "
                f"worst-case utilization {u.utilization:.0%}, "
                f"imbalance {u.imbalance:.2f}",
                f"  secondary resolutions: {self.secondary_share:.0%} "
                f"of cross-PE discharges; repairs: {self.repairs}",
            ]
        )


def analyze_schedule(result: ScheduleResult) -> ScheduleReport:
    """Build the full quality report for one schedule."""
    schedule = result.schedule
    fire = schedule.fire_times()

    barrier_list = schedule.barriers()
    widths = tuple(b.width for b in barrier_list)
    barriers = BarrierStats(
        count=len(barrier_list),
        mean_width=float(np.mean(widths)) if widths else 0.0,
        max_width=max(widths, default=0),
        widths=widths,
        fire_windows=tuple(fire[b.id] for b in barrier_list),
        merged_count=sum(1 for b in barrier_list if b.merged_from),
    )

    busy = tuple(
        sum(schedule.dag.latency(n).hi for n in schedule.instructions_on(pe))
        for pe in range(schedule.n_pes)
    )
    utilization = UtilizationStats(
        per_pe_busy=busy,
        makespan=schedule.makespan(),
        processors_used=schedule.used_processors(),
    )

    cross = (
        result.counts.path_edges
        + result.counts.timing_edges
        + result.counts.barrier_edges
    )
    secondary_share = (
        result.counts.secondary_resolutions / cross if cross else 0.0
    )
    return ScheduleReport(
        fractions=fractions_of(result),
        barriers=barriers,
        utilization=utilization,
        secondary_share=secondary_share,
        repairs=result.counts.repairs,
    )
