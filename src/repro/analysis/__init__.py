"""Schedule quality analysis and reporting."""

from repro.analysis.report import (
    BarrierStats,
    ScheduleReport,
    UtilizationStats,
    analyze_schedule,
)

__all__ = ["BarrierStats", "UtilizationStats", "ScheduleReport", "analyze_schedule"]
