"""The instruction DAG ``G(N, A)`` (paper sections 2.2 and 4.1).

Nodes are instructions; a directed edge ``(i, j)`` records the
producer/consumer precedence "j consumes the value produced by i".  Each
edge is one *implied synchronization* -- the unit in which all of the
paper's synchronization fractions are expressed (section 3.1).

Following section 4.1, the DAG is given unique *dummy* entry and exit
nodes with zero execution time, so that every instruction lies on a path
``entry -> ... -> exit``; the dummies and their edges are bookkeeping only
and are excluded from the implied-synchronization count.

The class is deliberately generic: nodes can carry any payload (they carry
:class:`~repro.ir.tuples.IRTuple` objects when built by
:meth:`InstructionDAG.from_program`, but examples and tests also build
DAGs directly from latency tables), and a :func:`to_networkx` view is
provided for interoperability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

from repro.timing import Interval, ZERO
from repro.ir.ops import TimingModel, DEFAULT_TIMING
from repro.ir.tuples import IRTuple, TupleProgram

__all__ = ["NodeId", "ENTRY", "EXIT", "CycleError", "InstructionDAG"]

NodeId = Hashable

#: Dummy source node (zero time), added automatically.
ENTRY: NodeId = "__entry__"
#: Dummy sink node (zero time), added automatically.
EXIT: NodeId = "__exit__"


class CycleError(ValueError):
    """The supplied edge set contains a cycle (not a DAG)."""


@dataclass(frozen=True)
class InstructionDAG:
    """An immutable weighted DAG of instructions with dummy entry/exit.

    Parameters
    ----------
    latencies:
        ``node -> Interval`` execution-time table for the *real* nodes.
    edges:
        Producer/consumer pairs over real nodes.
    payload:
        Optional ``node -> object`` table (tuples, labels, ...).
    """

    _latency: dict[NodeId, Interval]
    _succs: dict[NodeId, tuple[NodeId, ...]]
    _preds: dict[NodeId, tuple[NodeId, ...]]
    _topo: tuple[NodeId, ...]
    _payload: dict[NodeId, object]

    # -- construction -------------------------------------------------------

    @staticmethod
    def build(
        latencies: Mapping[NodeId, Interval],
        edges: Iterable[tuple[NodeId, NodeId]],
        payload: Mapping[NodeId, object] | None = None,
    ) -> "InstructionDAG":
        if ENTRY in latencies or EXIT in latencies:
            raise ValueError("ENTRY/EXIT are reserved node ids")
        latency: dict[NodeId, Interval] = {ENTRY: ZERO, EXIT: ZERO}
        latency.update(latencies)

        succs: dict[NodeId, list[NodeId]] = {n: [] for n in latency}
        preds: dict[NodeId, list[NodeId]] = {n: [] for n in latency}
        seen_edges: set[tuple[NodeId, NodeId]] = set()
        for u, v in edges:
            if u not in latencies or v not in latencies:
                raise ValueError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise CycleError(f"self-loop on {u!r}")
            if (u, v) in seen_edges:
                continue  # duplicate operand (e.g. Add 4,4): one precedence edge
            seen_edges.add((u, v))
            succs[u].append(v)
            preds[v].append(u)

        # Dummy wiring: entry feeds every source, every sink feeds exit.
        for node in latencies:
            if not preds[node]:
                succs[ENTRY].append(node)
                preds[node].append(ENTRY)
            if not succs[node]:
                succs[node].append(EXIT)
                preds[EXIT].append(node)
        if not latencies:  # empty program: entry -> exit
            succs[ENTRY].append(EXIT)
            preds[EXIT].append(ENTRY)

        topo = _topological_order(latency, succs, preds)
        return InstructionDAG(
            _latency=latency,
            _succs={n: tuple(s) for n, s in succs.items()},
            _preds={n: tuple(p) for n, p in preds.items()},
            _topo=topo,
            _payload=dict(payload or {}),
        )

    @staticmethod
    def from_program(
        program: TupleProgram, timing: TimingModel = DEFAULT_TIMING
    ) -> "InstructionDAG":
        """Build the DAG of an (ideally optimized) tuple program.

        Edges are exactly the value dependences: one edge per distinct
        ``Ref`` operand.  There are no memory-ordering edges: within a
        block no Load follows a Store of the same variable (the code
        generator forwards assigned values), and dead earlier stores are
        assumed removed by DCE, matching the paper's pipeline.
        """
        latencies = {tup.id: timing[tup.opcode] for tup in program}
        edge_list: list[tuple[NodeId, NodeId]] = []
        for tup in program:
            for ref in tup.refs:
                edge_list.append((ref, tup.id))
        payload = {tup.id: tup for tup in program}
        return InstructionDAG.build(latencies, edge_list, payload)

    # -- basic queries --------------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All nodes including the dummies, in topological order."""
        return self._topo

    @property
    def real_nodes(self) -> tuple[NodeId, ...]:
        """Instruction nodes (no dummies), in topological order."""
        # Dummies are matched by value, not identity: a dag that crossed
        # a process boundary (pickle) carries non-interned sentinels.
        return tuple(n for n in self._topo if n != ENTRY and n != EXIT)

    def __len__(self) -> int:
        return len(self._topo) - 2

    def __contains__(self, node: NodeId) -> bool:
        return node in self._latency

    def latency(self, node: NodeId) -> Interval:
        return self._latency[node]

    def payload(self, node: NodeId) -> object | None:
        return self._payload.get(node)

    def tuple_of(self, node: NodeId) -> IRTuple:
        obj = self._payload.get(node)
        if not isinstance(obj, IRTuple):
            raise KeyError(f"node {node!r} carries no IRTuple payload")
        return obj

    def succs(self, node: NodeId) -> tuple[NodeId, ...]:
        return self._succs[node]

    def preds(self, node: NodeId) -> tuple[NodeId, ...]:
        return self._preds[node]

    def real_preds(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(p for p in self._preds[node] if p != ENTRY)

    def real_succs(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(s for s in self._succs[node] if s != EXIT)

    def real_edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Producer/consumer edges between instruction nodes only."""
        for u in self._topo:
            if u == ENTRY:
                continue
            for v in self._succs[u]:
                if v != EXIT:
                    yield (u, v)

    @property
    def implied_synchronizations(self) -> int:
        """Edge count between real nodes: the paper's *Total Implied
        Synchronizations* (section 3.1), denominator of every fraction."""
        return sum(1 for _ in self.real_edges())

    # -- timing analyses --------------------------------------------------------

    def finish_levels(self) -> dict[NodeId, Interval]:
        """Earliest ``[min,max]`` *finish* time of each node on infinitely
        many processors (the two rightmost columns of figure 1).

        ``level(n) = join over preds p of level(p), plus latency(n)``.
        """
        levels: dict[NodeId, Interval] = {}
        for node in self._topo:
            ready = ZERO
            for p in self._preds[node]:
                ready = ready.join(levels[p])
            levels[node] = ready + self._latency[node]
        return levels

    def critical_path(self) -> Interval:
        """``t_cr`` of section 4.1 as an interval: the longest entry->exit
        path under minimum and under maximum execution times.  Its max
        component is a lower bound on any schedule's worst-case makespan."""
        return self.finish_levels()[EXIT]

    def parallelism_width(self) -> float:
        """Total maximum work divided by the max critical path: a coarse
        measure of how many processors the block can keep busy (the paper
        ties this to the number of variables, section 5.2)."""
        total = sum(self._latency[n].hi for n in self.real_nodes)
        cp = self.critical_path().hi
        return total / cp if cp else 0.0

    # -- interoperability ----------------------------------------------------------

    def to_networkx(self, include_dummies: bool = False) -> "nx.DiGraph":
        graph = nx.DiGraph()
        nodes = self._topo if include_dummies else self.real_nodes
        for node in nodes:
            graph.add_node(node, latency=self._latency[node], payload=self._payload.get(node))
        edge_iter = (
            ((u, v) for u in self._topo for v in self._succs[u])
            if include_dummies
            else self.real_edges()
        )
        graph.add_edges_from(edge_iter)
        return graph

    def render(self) -> str:
        """Small text rendering for debugging: one line per real node."""
        lines = []
        for node in self.real_nodes:
            preds = ",".join(str(p) for p in self.real_preds(node)) or "-"
            obj = self._payload.get(node)
            desc = obj.render() if isinstance(obj, IRTuple) else str(node)
            lines.append(f"{node!s:>6} {self._latency[node]!s:>9}  <- {preds:<12} {desc}")
        return "\n".join(lines)


def _topological_order(
    latency: Mapping[NodeId, Interval],
    succs: Mapping[NodeId, list[NodeId]],
    preds: Mapping[NodeId, list[NodeId]],
) -> tuple[NodeId, ...]:
    """Kahn's algorithm; raises :class:`CycleError` if not a DAG."""
    in_deg = {n: len(preds[n]) for n in latency}
    frontier = [n for n, d in in_deg.items() if d == 0]
    order: list[NodeId] = []
    while frontier:
        node = frontier.pop()
        order.append(node)
        for s in succs[node]:
            in_deg[s] -= 1
            if in_deg[s] == 0:
                frontier.append(s)
    if len(order) != len(latency):
        raise CycleError("instruction graph contains a cycle")
    return tuple(order)
