"""Naive code generation from the AST to the tuple IR.

Following section 2.2 of the paper: "the first reference to a variable
causes a load for that variable to be generated, and a store is generated
when a variable is assigned a value."  Within the block, the value of a
variable after its first Load or most recent assignment lives in a tuple
(a virtual register), so subsequent reads reference that tuple directly --
no redundant Loads are ever emitted, and no Load follows a Store of the
same variable.

Code generation is deliberately *naive* beyond that rule: common
subexpressions are re-emitted and constants are not folded.  Cleaning that
up is the optimizer's job (:mod:`repro.ir.optimizer`), mirroring the
paper's pipeline in which the random generator's output is run through
standard local optimizations so that the benchmark "does not contain
'redundant' parallelism that might skew the results".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Expr, Var
from repro.ir.ops import Opcode
from repro.ir.tuples import Imm, IRTuple, Operand, Ref, TupleProgram

__all__ = ["CodeGenerator", "generate_tuples"]


@dataclass
class CodeGenerator:
    """Stateful tuple emitter for one basic block.

    The generator keeps the paper's incremental tuple numbering: every
    emitted tuple gets the next id, including tuples that a later optimizer
    pass will delete (which is how figure 1 ends up with gaps).
    """

    _tuples: list[IRTuple] = field(default_factory=list)
    _env: dict[str, Operand] = field(default_factory=dict)
    _next_id: int = 0

    def _emit(self, opcode: Opcode, operands: tuple[Operand, ...] = (), var: str | None = None) -> Ref:
        tup = IRTuple(self._next_id, opcode, operands, var)
        self._next_id += 1
        self._tuples.append(tup)
        return Ref(tup.id)

    # -- expression lowering -------------------------------------------------

    def _lower_expr(self, expr: Expr) -> Operand:
        if isinstance(expr, Const):
            return Imm(expr.value)
        if isinstance(expr, Var):
            value = self._env.get(expr.name)
            if value is None:
                # First reference in the block: load from memory.
                value = self._emit(Opcode.LOAD, var=expr.name)
                self._env[expr.name] = value
            return value
        if isinstance(expr, BinOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            return self._emit(expr.op, (left, right))
        raise TypeError(f"unknown expression node {expr!r}")

    # -- statement lowering ----------------------------------------------------

    def lower_statement(self, stmt: Assign) -> None:
        value = self._lower_expr(stmt.expr)
        self._emit(Opcode.STORE, (value,), var=stmt.target)
        # Later reads of the target see the assigned value, not a Load.
        self._env[stmt.target] = value

    def finish(self) -> TupleProgram:
        return TupleProgram(list(self._tuples))


def generate_tuples(block: BasicBlock) -> TupleProgram:
    """Lower a whole basic block to an (unoptimized) tuple program."""
    gen = CodeGenerator()
    for stmt in block:
        gen.lower_statement(stmt)
    return gen.finish()
