"""Compiler substrate: mini language, tuple IR, optimizer, instruction DAG.

This package implements the front half of the paper's toolchain
(section 2): a tiny straight-line language of assignment statements is
parsed (:mod:`repro.ir.parser`), lowered to numbered three-address tuples
(:mod:`repro.ir.codegen`), cleaned up by standard local optimizations
(:mod:`repro.ir.optimizer`), and finally turned into the weighted
instruction DAG (:mod:`repro.ir.dag`) consumed by the scheduler in
:mod:`repro.core`.
"""

from repro.ir.ops import (
    ALU_OPCODES,
    DEFAULT_TIMING,
    OP_FREQUENCIES,
    Opcode,
    TimingModel,
)
from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Expr, Var, apply_op
from repro.ir.parser import ParseError, parse_block, parse_expr
from repro.ir.tuples import Imm, IRTuple, Operand, Ref, TupleProgram
from repro.ir.codegen import generate_tuples
from repro.ir.optimizer import optimize
from repro.ir.interp import interpret
from repro.ir.dag import ENTRY, EXIT, CycleError, InstructionDAG

__all__ = [
    "ALU_OPCODES",
    "DEFAULT_TIMING",
    "OP_FREQUENCIES",
    "Opcode",
    "TimingModel",
    "Assign",
    "BasicBlock",
    "BinOp",
    "Const",
    "Expr",
    "Var",
    "apply_op",
    "ParseError",
    "parse_block",
    "parse_expr",
    "Imm",
    "IRTuple",
    "Operand",
    "Ref",
    "TupleProgram",
    "generate_tuples",
    "optimize",
    "interpret",
    "ENTRY",
    "EXIT",
    "CycleError",
    "InstructionDAG",
    "compile_block",
    "compile_source",
]


def compile_block(
    block: BasicBlock,
    timing: TimingModel = DEFAULT_TIMING,
    run_optimizer: bool = True,
) -> InstructionDAG:
    """One-call front end: AST block -> optimized tuples -> instruction DAG."""
    program = generate_tuples(block)
    if run_optimizer:
        program = optimize(program)
    return InstructionDAG.from_program(program, timing)


def compile_source(
    source: str,
    timing: TimingModel = DEFAULT_TIMING,
    run_optimizer: bool = True,
) -> InstructionDAG:
    """Compile mini-language source text straight to an instruction DAG."""
    return compile_block(parse_block(source), timing, run_optimizer)
