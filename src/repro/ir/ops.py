"""The benchmark instruction set of Table 1.

Nine opcodes, four of which (:data:`Opcode.LOAD`, :data:`Opcode.MUL`,
:data:`Opcode.DIV`, :data:`Opcode.MOD`) have *variable* execution time.
The default latencies and the ALU-operation selection frequencies come
straight from Table 1 of the paper (which in turn follows the XPL
instruction-mix study of Alexander & Wortman, 1975).

A :class:`TimingModel` maps opcodes to :class:`~repro.core.timing.Interval`
latencies and is a first-class parameter of the whole pipeline, because
section 5 of the paper varies "the timing assigned to each instruction"
as an architecture parameter (the timing-variation ablation, experiment
E12 in DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.timing import Interval

__all__ = [
    "Opcode",
    "ALU_OPCODES",
    "VARIABLE_TIME_OPCODES",
    "OP_FREQUENCIES",
    "OP_SYMBOLS",
    "SYMBOL_OPS",
    "COMMUTATIVE_OPCODES",
    "TimingModel",
    "DEFAULT_TIMING",
]


class Opcode(enum.Enum):
    """The nine instructions of the synthetic-benchmark instruction set."""

    LOAD = "Load"
    STORE = "Store"
    ADD = "Add"
    SUB = "Sub"
    AND = "And"
    OR = "Or"
    MUL = "Mul"
    DIV = "Div"
    MOD = "Mod"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_alu(self) -> bool:
        """True for the seven register-to-register arithmetic/logic ops."""
        return self not in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)


#: ALU opcodes that may appear on the right-hand side of a generated
#: assignment statement, in Table 1 order.
ALU_OPCODES: tuple[Opcode, ...] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
)

#: Execution frequencies of Table 1 (percent).  Load/Store have no entry:
#: they are generated on demand by the code generator (first read of a
#: variable -> Load; assignment -> Store).
OP_FREQUENCIES: Mapping[Opcode, float] = {
    Opcode.ADD: 45.8,
    Opcode.SUB: 33.9,
    Opcode.AND: 8.8,
    Opcode.OR: 5.2,
    Opcode.MUL: 2.9,
    Opcode.DIV: 2.2,
    Opcode.MOD: 1.2,
}

#: Concrete-syntax operator symbols for the mini language.
OP_SYMBOLS: Mapping[Opcode, str] = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.MUL: "*",
    Opcode.DIV: "/",
    Opcode.MOD: "%",
}

#: Inverse of :data:`OP_SYMBOLS`, used by the parser.
SYMBOL_OPS: Mapping[str, Opcode] = {sym: op for op, sym in OP_SYMBOLS.items()}

#: Opcodes whose operand order is semantically irrelevant.  CSE normalizes
#: operand order for these so that ``a+b`` and ``b+a`` share one tuple.
COMMUTATIVE_OPCODES = frozenset({Opcode.ADD, Opcode.AND, Opcode.OR, Opcode.MUL})

#: Table 1 latency intervals (time units).
_TABLE_1: Mapping[Opcode, Interval] = {
    Opcode.LOAD: Interval(1, 4),
    Opcode.STORE: Interval(1, 1),
    Opcode.ADD: Interval(1, 1),
    Opcode.SUB: Interval(1, 1),
    Opcode.AND: Interval(1, 1),
    Opcode.OR: Interval(1, 1),
    Opcode.MUL: Interval(16, 24),
    Opcode.DIV: Interval(24, 32),
    Opcode.MOD: Interval(24, 32),
}

#: Opcodes with ``min != max`` under the default (Table 1) timing model.
VARIABLE_TIME_OPCODES = frozenset(
    op for op, iv in _TABLE_1.items() if not iv.is_point
)


@dataclass(frozen=True, slots=True)
class TimingModel:
    """Maps every opcode to its ``[min, max]`` latency interval.

    The model is immutable; derive variants with :meth:`scaled` (widen all
    variable-time latencies, experiment E12) or :meth:`override`.
    """

    latencies: Mapping[Opcode, Interval] = field(default_factory=lambda: dict(_TABLE_1))
    name: str = "table1"

    def __post_init__(self) -> None:
        missing = [op for op in Opcode if op not in self.latencies]
        if missing:
            raise ValueError(f"timing model {self.name!r} missing opcodes: {missing}")

    def __getitem__(self, op: Opcode) -> Interval:
        return self.latencies[op]

    def min_time(self, op: Opcode) -> int:
        return self.latencies[op].lo

    def max_time(self, op: Opcode) -> int:
        return self.latencies[op].hi

    def variable_opcodes(self) -> frozenset[Opcode]:
        """Opcodes with non-degenerate latency under *this* model."""
        return frozenset(op for op, iv in self.latencies.items() if not iv.is_point)

    def scaled(self, factor: float, name: str | None = None) -> "TimingModel":
        """A model whose timing *variation* is multiplied by ``factor``.

        Minimum latencies are preserved; only ``max - min`` scales.  Used by
        the section 5.4 experiment showing the barrier fraction is fairly
        insensitive to instruction timing variation.
        """
        return TimingModel(
            {op: iv.scale(factor) for op, iv in self.latencies.items()},
            name=name or f"{self.name}*{factor:g}",
        )

    def override(self, name: str | None = None, **changes: Interval) -> "TimingModel":
        """A model with some opcode latencies replaced.

        Keys are lowercase opcode names, e.g.
        ``DEFAULT_TIMING.override(load=Interval(1, 8))``.
        """
        table = dict(self.latencies)
        for key, iv in changes.items():
            table[Opcode[key.upper()]] = iv
        return TimingModel(table, name=name or f"{self.name}+override")

    def fixed_at_max(self, name: str | None = None) -> "TimingModel":
        """Collapse every latency to its maximum (the VLIW model, section 6).

        The paper's VLIW comparison assumes "all instructions required their
        maximum time to execute" because a lock-step machine must always
        budget for the worst case.
        """
        return TimingModel(
            {op: Interval.point(iv.hi) for op, iv in self.latencies.items()},
            name=name or f"{self.name}@max",
        )


#: The Table 1 timing model used throughout the paper's experiments.
DEFAULT_TIMING = TimingModel()
