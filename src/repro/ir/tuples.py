"""Three-address *tuple* intermediate representation.

The paper's code generator emits numbered tuples (figure 1): ``Load i``,
``Add 0,1``, ``Store b,2`` and so on.  Each tuple is assigned a number
incrementally as it is generated; the optimizer then deletes tuples, so a
finished program typically has gaps in its numbering -- exactly as in
figure 1 of the paper.

Operands are either references to earlier tuples (:class:`Ref`) or
immediate integer constants (:class:`Imm`).  There is no "load immediate"
instruction in the Table 1 instruction set, so constants ride along as
immediates inside the consuming instruction.

Tuple kinds and their operand shapes:

========  =======================  =========================================
opcode    operands                 meaning
========  =======================  =========================================
LOAD      ``()``                   read variable ``var`` from memory
STORE     ``(src,)``               write operand ``src`` to variable ``var``
ALU ops   ``(left, right)``        binary operation on two operands
========  =======================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.ir.ops import Opcode

__all__ = ["Ref", "Imm", "Operand", "IRTuple", "TupleProgram"]


@dataclass(frozen=True, slots=True)
class Ref:
    """A use of the value produced by an earlier tuple."""

    id: int

    def __str__(self) -> str:
        return str(self.id)


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate integer constant operand."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


Operand = Ref | Imm


@dataclass(frozen=True, slots=True)
class IRTuple:
    """One numbered three-address instruction.

    ``var`` is the referenced memory variable for LOAD/STORE and ``None``
    for ALU tuples.
    """

    id: int
    opcode: Opcode
    operands: tuple[Operand, ...] = ()
    var: str | None = None

    def __post_init__(self) -> None:
        if self.opcode is Opcode.LOAD:
            if self.operands or self.var is None:
                raise ValueError(f"tuple {self.id}: Load takes no operands and a var")
        elif self.opcode is Opcode.STORE:
            if len(self.operands) != 1 or self.var is None:
                raise ValueError(f"tuple {self.id}: Store takes one operand and a var")
        else:
            if len(self.operands) != 2 or self.var is not None:
                raise ValueError(
                    f"tuple {self.id}: {self.opcode} takes two operands and no var"
                )

    @property
    def refs(self) -> tuple[int, ...]:
        """Ids of tuples whose values this tuple consumes."""
        return tuple(op.id for op in self.operands if isinstance(op, Ref))

    def with_operands(self, operands: tuple[Operand, ...]) -> "IRTuple":
        return IRTuple(self.id, self.opcode, operands, self.var)

    def render(self) -> str:
        """Figure 1 style rendering, e.g. ``Add 0,1`` or ``Store b,2``."""
        if self.opcode is Opcode.LOAD:
            return f"Load {self.var}"
        if self.opcode is Opcode.STORE:
            return f"Store {self.var},{self.operands[0]}"
        args = ",".join(str(op) for op in self.operands)
        return f"{self.opcode} {args}"

    def __str__(self) -> str:
        return f"{self.id}: {self.render()}"


@dataclass(slots=True)
class TupleProgram:
    """An ordered sequence of tuples with (possibly gappy) numbering.

    Invariants, enforced by :meth:`validate`:

    * tuple ids are unique and appear in increasing order;
    * every :class:`Ref` points to an *earlier* tuple in the program
      (straight-line SSA: each tuple's value is defined exactly once).
    """

    tuples: list[IRTuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[IRTuple]:
        return iter(self.tuples)

    def __getitem__(self, tuple_id: int) -> IRTuple:
        """Look up a tuple *by id* (not by position)."""
        tup = self.by_id().get(tuple_id)
        if tup is None:
            raise KeyError(f"no tuple with id {tuple_id}")
        return tup

    def by_id(self) -> dict[int, IRTuple]:
        return {t.id: t for t in self.tuples}

    # -- integrity ----------------------------------------------------------

    def validate(self) -> None:
        seen: set[int] = set()
        last = -1
        for tup in self.tuples:
            if tup.id in seen:
                raise ValueError(f"duplicate tuple id {tup.id}")
            if tup.id <= last:
                raise ValueError(f"tuple ids not increasing at {tup.id}")
            for ref in tup.refs:
                if ref not in seen:
                    raise ValueError(f"tuple {tup.id} references undefined tuple {ref}")
            seen.add(tup.id)
            last = tup.id

    # -- queries used by the optimizer and DAG builder ----------------------

    def use_counts(self) -> dict[int, int]:
        """Number of Ref operands consuming each tuple's value."""
        counts = {t.id: 0 for t in self.tuples}
        for tup in self.tuples:
            for ref in tup.refs:
                counts[ref] += 1
        return counts

    def stores(self) -> list[IRTuple]:
        return [t for t in self.tuples if t.opcode is Opcode.STORE]

    def loads(self) -> list[IRTuple]:
        return [t for t in self.tuples if t.opcode is Opcode.LOAD]

    def final_stores(self) -> dict[str, IRTuple]:
        """The last Store to each variable: the block's observable effect."""
        result: dict[str, IRTuple] = {}
        for tup in self.tuples:
            if tup.opcode is Opcode.STORE:
                result[tup.var] = tup  # later stores overwrite earlier ones
        return result

    def opcode_histogram(self) -> dict[Opcode, int]:
        hist: dict[Opcode, int] = {}
        for tup in self.tuples:
            hist[tup.opcode] = hist.get(tup.opcode, 0) + 1
        return hist

    # -- transformation helpers ----------------------------------------------

    def filter_replace(
        self,
        keep: Iterable[int],
        replacements: Mapping[int, Operand] | None = None,
    ) -> "TupleProgram":
        """Drop tuples not in ``keep`` and rewrite operands via ``replacements``.

        ``replacements`` maps a *removed* tuple id to the operand that now
        supplies its value (another tuple's :class:`Ref` or an :class:`Imm`).
        Replacement chains (a -> b -> c) are followed to their final target.
        This is the single primitive every optimizer pass is built on.
        """
        keep_set = set(keep)
        subst = dict(replacements or {})

        def resolve(op: Operand) -> Operand:
            hops = 0
            while isinstance(op, Ref) and op.id in subst:
                op = subst[op.id]
                hops += 1
                if hops > len(subst) + 1:
                    raise ValueError("cyclic replacement chain")
            return op

        out: list[IRTuple] = []
        for tup in self.tuples:
            if tup.id not in keep_set:
                continue
            new_ops = tuple(resolve(op) for op in tup.operands)
            out.append(tup if new_ops == tup.operands else tup.with_operands(new_ops))
        return TupleProgram(out)

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Multi-line listing in the style of figure 1."""
        width = max((len(str(t.id)) for t in self.tuples), default=1)
        return "\n".join(f"{t.id:>{width}}  {t.render()}" for t in self.tuples)
