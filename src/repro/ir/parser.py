"""Tokenizer and recursive-descent parser for the mini language.

The concrete grammar (``//`` comments and blank lines are ignored)::

    block     ::= statement*
    statement ::= IDENT '=' expr ';'?
    expr      ::= term  (('+' | '-' | '|') term)*
    term      ::= factor (('*' | '/' | '%' | '&') factor)*
    factor    ::= IDENT | INT | '(' expr ')'

``*``, ``/``, ``%`` and ``&`` bind tighter than ``+``, ``-`` and ``|``;
operators of equal precedence associate left.  The parser produces the
:class:`~repro.ir.ast.BasicBlock` AST; ``parse_block(block.source())`` is
the identity (round-trip property, tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ir.ast import Assign, BasicBlock, BinOp, Const, Expr, Var
from repro.ir.ops import Opcode

__all__ = ["ParseError", "Token", "tokenize", "parse_block", "parse_expr"]

_TERM_OPS = {"*": Opcode.MUL, "/": Opcode.DIV, "%": Opcode.MOD, "&": Opcode.AND}
_EXPR_OPS = {"+": Opcode.ADD, "-": Opcode.SUB, "|": Opcode.OR}
_PUNCT = set("=();") | set(_TERM_OPS) | set(_EXPR_OPS)


class ParseError(ValueError):
    """Raised on any lexical or syntactic error, with line/column info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident" | "int" | "punct" | "eof"
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("//", 1)[0]
        col = 0
        n = len(line)
        while col < n:
            ch = line[col]
            if ch.isspace():
                col += 1
                continue
            start = col
            if ch.isalpha() or ch == "_":
                while col < n and (line[col].isalnum() or line[col] == "_"):
                    col += 1
                tokens.append(Token("ident", line[start:col], line_no, start + 1))
            elif ch.isdigit():
                while col < n and line[col].isdigit():
                    col += 1
                if col < n and (line[col].isalpha() or line[col] == "_"):
                    raise ParseError(
                        f"malformed number {line[start:col + 1]!r}", line_no, start + 1
                    )
                tokens.append(Token("int", line[start:col], line_no, start + 1))
            elif ch in _PUNCT:
                col += 1
                tokens.append(Token("punct", ch, line_no, start + 1))
            else:
                raise ParseError(f"unexpected character {ch!r}", line_no, start + 1)
    last_line = source.count("\n") + 1
    tokens.append(Token("eof", "", last_line, 1))
    return tokens


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._current
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(message, tok.line, tok.column)

    def _accept_punct(self, text: str) -> bool:
        tok = self._current
        if tok.kind == "punct" and tok.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            raise self._error(f"expected {text!r}, found {self._current.text!r}")

    # -- grammar productions ----------------------------------------------

    def block(self) -> BasicBlock:
        statements: list[Assign] = []
        while self._current.kind != "eof":
            statements.append(self.statement())
        return BasicBlock(tuple(statements))

    def statement(self) -> Assign:
        tok = self._current
        if tok.kind != "ident":
            raise self._error(f"expected variable name, found {tok.text!r}")
        self._advance()
        self._expect_punct("=")
        expr = self.expr()
        self._accept_punct(";")  # terminator optional
        return Assign(tok.text, expr)

    def expr(self) -> Expr:
        node = self.term()
        while self._current.kind == "punct" and self._current.text in _EXPR_OPS:
            op = _EXPR_OPS[self._advance().text]
            node = BinOp(op, node, self.term())
        return node

    def term(self) -> Expr:
        node = self.factor()
        while self._current.kind == "punct" and self._current.text in _TERM_OPS:
            op = _TERM_OPS[self._advance().text]
            node = BinOp(op, node, self.factor())
        return node

    def factor(self) -> Expr:
        tok = self._current
        if tok.kind == "ident":
            self._advance()
            return Var(tok.text)
        if tok.kind == "int":
            self._advance()
            return Const(int(tok.text))
        if self._accept_punct("("):
            node = self.expr()
            self._expect_punct(")")
            return node
        raise self._error(f"expected operand, found {tok.text!r}")


def parse_block(source: str) -> BasicBlock:
    """Parse a whole basic block (a sequence of assignment statements)."""
    parser = _Parser(tokenize(source))
    return parser.block()


def parse_expr(source: str) -> Expr:
    """Parse a single expression (no assignment); must consume all input."""
    parser = _Parser(tokenize(source))
    node = parser.expr()
    if parser._current.kind != "eof":
        raise parser._error(f"trailing input {parser._current.text!r}")
    return node


def _iter_statements(source: str) -> Iterator[Assign]:  # pragma: no cover
    """Convenience generator used by the CLI to stream large inputs."""
    yield from parse_block(source)
