"""Constant folding: evaluate ALU tuples whose operands are all immediates.

A folded tuple is removed from the program and every use of its value is
rewritten to the computed :class:`~repro.ir.tuples.Imm`.  Folding uses the
same total integer semantics as the interpreter
(:func:`repro.ir.ast.apply_op`, with ``x / 0 == x % 0 == 0``), so it is
always sound -- including for division by a constant zero.

One forward sweep suffices: operands only reference earlier tuples, and the
substitution map is consulted while sweeping, so chains of constants
(``#2 + #3`` feeding ``#5 * #4``) collapse in a single pass.
"""

from __future__ import annotations

from repro.ir.ast import apply_op
from repro.ir.ops import Opcode
from repro.ir.tuples import Imm, Operand, Ref, TupleProgram

__all__ = ["fold_constants"]


def fold_constants(program: TupleProgram) -> TupleProgram:
    """Return ``program`` with every all-immediate ALU tuple folded away."""
    replacements: dict[int, Operand] = {}
    keep: list[int] = []

    for tup in program:
        if tup.opcode in (Opcode.LOAD, Opcode.STORE):
            keep.append(tup.id)
            continue
        resolved = [
            replacements.get(op.id, op) if isinstance(op, Ref) else op
            for op in tup.operands
        ]
        if all(isinstance(op, Imm) for op in resolved):
            left, right = resolved
            replacements[tup.id] = Imm(apply_op(tup.opcode, left.value, right.value))
        else:
            keep.append(tup.id)

    if not replacements:
        return program
    return program.filter_replace(keep, replacements)
