"""Standard local optimizations for the tuple IR (paper section 2.2).

The synthetic-benchmark pipeline runs the randomly generated code through
"standard local optimizations, including common subexpression elimination,
constant folding and value propagation, and dead code elimination" so that
the benchmarks "do not contain 'redundant' parallelism that might skew the
results".

Each pass is a pure function ``TupleProgram -> TupleProgram``.  The
default :func:`optimize` pipeline runs exactly the paper's passes --
constant folding, CSE, and DCE -- to a fixpoint.  (Value propagation is
performed implicitly by the code generator, which tracks the current
tuple holding each variable's value; there are therefore no copy tuples
to propagate.)  An algebraic-simplification pass is provided as an
extension (``EXTENDED_PASSES``) but kept out of the default pipeline;
see :mod:`repro.ir.optimizer.pipeline` for why.

Every pass is semantics-preserving with respect to the reference
interpreter (:mod:`repro.ir.interp`); this is enforced by property-based
tests over random programs.
"""

from repro.ir.optimizer.constfold import fold_constants
from repro.ir.optimizer.algebraic import simplify_algebraic
from repro.ir.optimizer.cse import eliminate_common_subexpressions
from repro.ir.optimizer.dce import eliminate_dead_code
from repro.ir.optimizer.pipeline import (
    DEFAULT_PASSES,
    EXTENDED_PASSES,
    OptimizationPipeline,
    optimize,
)

__all__ = [
    "fold_constants",
    "simplify_algebraic",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "DEFAULT_PASSES",
    "EXTENDED_PASSES",
    "OptimizationPipeline",
    "optimize",
]
