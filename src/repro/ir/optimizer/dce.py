"""Dead-code elimination, including dead stores.

The observable effect of a basic block is the *final* value stored to each
variable (there is no load-after-store within a block, so intermediate
stores are invisible).  DCE therefore:

1. keeps only the last Store to each variable (earlier stores to the same
   variable are dead at block exit);
2. walks backwards from the surviving stores marking every transitively
   referenced tuple live;
3. drops everything else (unused Loads and ALU tuples have no side effects
   in this machine model).
"""

from __future__ import annotations

from repro.ir.tuples import TupleProgram

__all__ = ["eliminate_dead_code"]


def eliminate_dead_code(program: TupleProgram) -> TupleProgram:
    """Return ``program`` restricted to code that affects block-exit memory."""
    final_store_ids = {tup.id for tup in program.final_stores().values()}
    by_id = program.by_id()

    live: set[int] = set()
    worklist = sorted(final_store_ids, reverse=True)
    while worklist:
        tid = worklist.pop()
        if tid in live:
            continue
        live.add(tid)
        worklist.extend(by_id[tid].refs)

    if len(live) == len(program):
        return program
    return program.filter_replace(live)
