"""Optimization pipeline: run passes to a fixpoint.

The standard pipeline mirrors section 2.2 of the paper exactly: constant
folding, value propagation (implicit in code generation), CSE, and DCE.
Passes are repeated until the program stops changing, which is guaranteed
to terminate because every pass either leaves the program alone or
strictly removes tuples.

Algebraic simplification (``x - x -> 0`` and friends) is available as
:data:`EXTENDED_PASSES` but deliberately *not* part of the default: it is
an extension beyond the paper's pass list, and on narrow benchmarks (two
or three variables) it drives both variables into a constant absorbing
state, folding the whole block away and leaving nothing to schedule --
which the paper's 2-variable experiments clearly did not experience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.ir.tuples import TupleProgram
from repro.ir.optimizer.algebraic import simplify_algebraic
from repro.ir.optimizer.constfold import fold_constants
from repro.ir.optimizer.cse import eliminate_common_subexpressions
from repro.ir.optimizer.dce import eliminate_dead_code

__all__ = ["OptimizationPipeline", "optimize", "DEFAULT_PASSES", "EXTENDED_PASSES"]

Pass = Callable[[TupleProgram], TupleProgram]

#: The paper's pass list (section 2.2).
DEFAULT_PASSES: tuple[Pass, ...] = (
    fold_constants,
    eliminate_common_subexpressions,
    eliminate_dead_code,
)

#: Extension: the default passes plus algebraic simplification.
EXTENDED_PASSES: tuple[Pass, ...] = (
    fold_constants,
    simplify_algebraic,
    eliminate_common_subexpressions,
    eliminate_dead_code,
)


@dataclass
class OptimizationPipeline:
    """A configurable sequence of passes iterated to a fixpoint.

    ``max_rounds`` is a safety valve; a correctly written pass set always
    reaches the fixpoint long before it (each round must delete at least
    one tuple to continue).
    """

    passes: Sequence[Pass] = DEFAULT_PASSES
    max_rounds: int = 100
    rounds_run: int = field(default=0, init=False)

    def run(self, program: TupleProgram) -> TupleProgram:
        self.rounds_run = 0
        for _ in range(self.max_rounds):
            before = len(program)
            before_tuples = program.tuples
            for pass_fn in self.passes:
                program = pass_fn(program)
            self.rounds_run += 1
            if len(program) == before and program.tuples == before_tuples:
                return program
        raise RuntimeError(
            f"optimizer failed to reach a fixpoint in {self.max_rounds} rounds"
        )


def optimize(program: TupleProgram) -> TupleProgram:
    """Run the default pipeline (fold, simplify, CSE, DCE) to a fixpoint."""
    return OptimizationPipeline().run(program)
