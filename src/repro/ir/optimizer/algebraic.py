"""Algebraic simplification of ALU tuples.

Rewrites operations whose result is determined by an identity of integer
arithmetic, removing the tuple and substituting the surviving operand (or a
constant).  All rules are valid under the interpreter's total semantics
(floor division, ``x / 0 == x % 0 == 0``):

======================  =============
pattern                 result
======================  =============
``x + 0``, ``0 + x``    ``x``
``x - 0``               ``x``
``x - x``               ``0``
``x * 1``, ``1 * x``    ``x``
``x * 0``, ``0 * x``    ``0``
``x / 1``               ``x``
``x / 0``               ``0``
``x % 1``               ``0``
``x % 0``               ``0``
``x & x``, ``x | x``    ``x``
``x & 0``, ``0 & x``    ``0``
``x | 0``, ``0 | x``    ``x``
======================  =============

Note ``0 - x`` and ``0 / x`` are *not* simplified (``0 - x`` is not ``x``,
and while ``0 / x == 0`` for ``x != 0`` it also equals 0 for ``x == 0``,
so ``0 / x -> 0`` *is* actually valid -- but ``0 % x -> 0`` likewise; both
are included for completeness).
"""

from __future__ import annotations

from repro.ir.ops import Opcode
from repro.ir.tuples import Imm, Operand, Ref, TupleProgram

__all__ = ["simplify_algebraic"]


def _is_const(op: Operand, value: int) -> bool:
    return isinstance(op, Imm) and op.value == value


def _simplify(opcode: Opcode, left: Operand, right: Operand) -> Operand | None:
    """Return the replacement operand if the tuple simplifies, else None."""
    if opcode is Opcode.ADD:
        if _is_const(left, 0):
            return right
        if _is_const(right, 0):
            return left
    elif opcode is Opcode.SUB:
        if _is_const(right, 0):
            return left
        if left == right:
            return Imm(0)
    elif opcode is Opcode.MUL:
        if _is_const(left, 1):
            return right
        if _is_const(right, 1):
            return left
        if _is_const(left, 0) or _is_const(right, 0):
            return Imm(0)
    elif opcode is Opcode.DIV:
        if _is_const(right, 1):
            return left
        if _is_const(right, 0) or _is_const(left, 0):
            return Imm(0)  # total semantics: x / 0 == 0; 0 / x == 0 even at x==0
    elif opcode is Opcode.MOD:
        if _is_const(right, 1) or _is_const(right, 0) or _is_const(left, 0):
            return Imm(0)
        if left == right:
            return Imm(0)  # x % x == 0, also at x == 0 by totality
    elif opcode is Opcode.AND:
        if left == right:
            return left
        if _is_const(left, 0) or _is_const(right, 0):
            return Imm(0)
    elif opcode is Opcode.OR:
        if left == right:
            return left
        if _is_const(left, 0):
            return right
        if _is_const(right, 0):
            return left
    return None


def simplify_algebraic(program: TupleProgram) -> TupleProgram:
    """Return ``program`` with identity-determined ALU tuples removed."""
    replacements: dict[int, Operand] = {}
    keep: list[int] = []

    for tup in program:
        if tup.opcode in (Opcode.LOAD, Opcode.STORE):
            keep.append(tup.id)
            continue
        left, right = (
            replacements.get(op.id, op) if isinstance(op, Ref) else op
            for op in tup.operands
        )
        replacement = _simplify(tup.opcode, left, right)
        if replacement is None:
            keep.append(tup.id)
        else:
            replacements[tup.id] = replacement

    if not replacements:
        return program
    return program.filter_replace(keep, replacements)
