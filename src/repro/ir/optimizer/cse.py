"""Local common-subexpression elimination.

Two ALU tuples compute the same value if they have the same opcode and the
same (substitution-resolved) operands; for commutative opcodes
(:data:`repro.ir.ops.COMMUTATIVE_OPCODES`) operand order is normalized
before comparison, so ``a + b`` and ``b + a`` share one tuple.  Loads are
also value-numbered by variable name: the code generator never emits a
duplicate Load, but CSE still covers them so the pass is robust to
hand-written tuple programs.

Within a basic block there is no intervening store that could invalidate a
Load (reads after an assignment use the assigned tuple, not memory), so
this purely local value numbering is sound.
"""

from __future__ import annotations

from typing import Hashable

from repro.ir.ops import COMMUTATIVE_OPCODES, Opcode
from repro.ir.tuples import Operand, Ref, TupleProgram

__all__ = ["eliminate_common_subexpressions"]


def _value_key(opcode: Opcode, operands: tuple[Operand, ...], var: str | None) -> Hashable:
    if opcode is Opcode.LOAD:
        return (opcode, var)
    key_ops: tuple[Operand, ...] = operands
    if opcode in COMMUTATIVE_OPCODES:
        key_ops = tuple(sorted(operands, key=repr))
    return (opcode, key_ops)


def eliminate_common_subexpressions(program: TupleProgram) -> TupleProgram:
    """Return ``program`` with later duplicate computations removed."""
    replacements: dict[int, Operand] = {}
    keep: list[int] = []
    seen: dict[Hashable, Ref] = {}

    for tup in program:
        if tup.opcode is Opcode.STORE:
            keep.append(tup.id)  # stores have side effects; never merged here
            continue
        resolved = tuple(
            replacements.get(op.id, op) if isinstance(op, Ref) else op
            for op in tup.operands
        )
        key = _value_key(tup.opcode, resolved, tup.var)
        prior = seen.get(key)
        if prior is None:
            seen[key] = Ref(tup.id)
            keep.append(tup.id)
        else:
            replacements[tup.id] = prior

    if not replacements:
        return program
    return program.filter_replace(keep, replacements)
