"""Reference interpreter for tuple programs.

Executes a :class:`~repro.ir.tuples.TupleProgram` sequentially against an
initial memory (a mapping from variable names to ints) and returns the
final memory.  Semantics match :func:`repro.ir.ast.apply_op` exactly, so

``interpret(generate_tuples(block), env) == block.execute(env)``

and the same holds after any optimizer pass -- both properties are
enforced by the test suite and give end-to-end confidence that the code
the scheduler receives really computes what the source block says.
"""

from __future__ import annotations

from typing import Mapping

from repro.ir.ast import apply_op
from repro.ir.ops import Opcode
from repro.ir.tuples import Imm, Operand, Ref, TupleProgram

__all__ = ["interpret", "UndefinedVariableError"]


class UndefinedVariableError(KeyError):
    """A Load referenced a variable absent from the initial memory."""


def interpret(program: TupleProgram, memory: Mapping[str, int]) -> dict[str, int]:
    """Execute ``program``; return the final value of every stored variable.

    ``memory`` provides the initial contents of every variable the program
    Loads.  Only variables written by a Store appear in the result, making
    the return value directly comparable with
    :meth:`repro.ir.ast.BasicBlock.execute`.
    """
    values: dict[int, int] = {}
    mem = dict(memory)
    stored: dict[str, int] = {}

    def operand_value(op: Operand) -> int:
        if isinstance(op, Imm):
            return op.value
        return values[op.id]

    for tup in program:
        if tup.opcode is Opcode.LOAD:
            assert tup.var is not None
            if tup.var not in mem:
                raise UndefinedVariableError(tup.var)
            values[tup.id] = mem[tup.var]
        elif tup.opcode is Opcode.STORE:
            assert tup.var is not None
            value = operand_value(tup.operands[0])
            mem[tup.var] = value
            stored[tup.var] = value
        else:
            left, right = (operand_value(op) for op in tup.operands)
            values[tup.id] = apply_op(tup.opcode, left, right)

    return stored
