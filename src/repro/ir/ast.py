"""Abstract syntax for the synthetic-benchmark mini language.

The paper's compiler front end accepts "a simple language consisting of
basic blocks of code with no control flow constructs" (section 2): a basic
block is a straight-line sequence of assignment statements whose right-hand
sides are expressions over variables, integer constants, and the seven ALU
operators of Table 1.

Grammar (see :mod:`repro.ir.parser` for the concrete parser)::

    block     ::= statement*
    statement ::= IDENT '=' expr ';'?
    expr      ::= term (('+' | '-' | '|') term)*
    term      ::= factor (('*' | '/' | '%' | '&') factor)*
    factor    ::= IDENT | INT | '(' expr ')'

Expression evaluation semantics (shared with the tuple interpreter, see
:mod:`repro.ir.interp`): all values are Python ints, ``&``/``|`` are bitwise,
``/`` and ``%`` are floor division/modulo with the total-function convention
``x / 0 == 0`` and ``x % 0 == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, MutableMapping

from repro.ir.ops import OP_SYMBOLS, Opcode

__all__ = [
    "Expr",
    "Var",
    "Const",
    "BinOp",
    "Assign",
    "BasicBlock",
    "apply_op",
]


def apply_op(op: Opcode, left: int, right: int) -> int:
    """Reference integer semantics for the seven ALU operations.

    Division and modulo are made total (``x / 0 == x % 0 == 0``) so that
    randomly generated programs always have defined behaviour; the constant
    folder and the tuple interpreter use this same function, which is what
    makes "optimized program == original program" a testable property.
    """
    if op is Opcode.ADD:
        return left + right
    if op is Opcode.SUB:
        return left - right
    if op is Opcode.AND:
        return left & right
    if op is Opcode.OR:
        return left | right
    if op is Opcode.MUL:
        return left * right
    if op is Opcode.DIV:
        return 0 if right == 0 else left // right
    if op is Opcode.MOD:
        return 0 if right == 0 else left % right
    raise ValueError(f"{op} is not an ALU opcode")


class Expr:
    """Base class for expressions (``Var``, ``Const``, ``BinOp``)."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def variables(self) -> Iterator[str]:
        """Yield every variable name referenced (with repetition)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A reference to a named scalar variable."""

    name: str

    def evaluate(self, env: Mapping[str, int]) -> int:
        return env[self.name]

    def variables(self) -> Iterator[str]:
        yield self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def variables(self) -> Iterator[str]:
        return iter(())

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """A binary ALU operation ``left op right``."""

    op: Opcode
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if not self.op.is_alu:
            raise ValueError(f"{self.op} cannot appear in an expression")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return apply_op(self.op, self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> Iterator[str]:
        yield from self.left.variables()
        yield from self.right.variables()

    def __str__(self) -> str:
        def paren(e: Expr) -> str:
            return f"({e})" if isinstance(e, BinOp) else str(e)

        return f"{paren(self.left)} {OP_SYMBOLS[self.op]} {paren(self.right)}"


@dataclass(frozen=True, slots=True)
class Assign:
    """An assignment statement ``target = expr``."""

    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr};"


@dataclass(frozen=True, slots=True)
class BasicBlock:
    """A straight-line sequence of assignments: the unit of scheduling.

    The block has a single entry, no embedded control structure, and its
    observable effect is the final value of every variable it assigns
    (stores to memory); that is exactly what :meth:`execute` returns and
    what the optimizer must preserve.
    """

    statements: tuple[Assign, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "statements", tuple(self.statements))

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Assign]:
        return iter(self.statements)

    def source(self) -> str:
        """Concrete-syntax rendering, re-parseable by :mod:`repro.ir.parser`."""
        return "\n".join(str(stmt) for stmt in self.statements)

    def live_in_variables(self) -> tuple[str, ...]:
        """Variables read before they are first assigned (these need Loads)."""
        assigned: set[str] = set()
        upward: list[str] = []
        seen: set[str] = set()
        for stmt in self.statements:
            for name in stmt.expr.variables():
                if name not in assigned and name not in seen:
                    seen.add(name)
                    upward.append(name)
            assigned.add(stmt.target)
        return tuple(upward)

    def assigned_variables(self) -> tuple[str, ...]:
        """Variables written by the block, in first-assignment order."""
        out: list[str] = []
        seen: set[str] = set()
        for stmt in self.statements:
            if stmt.target not in seen:
                seen.add(stmt.target)
                out.append(stmt.target)
        return tuple(out)

    def execute(self, env: Mapping[str, int]) -> dict[str, int]:
        """Run the block on ``env``; return final values of assigned variables.

        ``env`` must bind every live-in variable.  This is the *reference
        semantics* against which code generation and every optimizer pass
        are verified.
        """
        state: MutableMapping[str, int] = dict(env)
        for stmt in self.statements:
            state[stmt.target] = stmt.expr.evaluate(state)
        return {name: state[name] for name in self.assigned_variables()}
