"""Continuous profiling and resource accounting for the pipeline.

The metrics registry (:mod:`repro.obs.metrics`) counts *how often* each
kernel backend ran; this module records *how long* and *how much
memory*.  A :class:`Profiler` accumulates four resource families:

* **kernel timings** -- per ``<kernel>.<backend>`` wall/CPU summaries,
  recorded at the :func:`repro.kernels.timed` dispatch boundary, so a
  perf report can say "``paths.python`` cost 4.1s over 120k calls" and
  the compiled-extension roadmap item has data to pick targets;
* **memory** -- peak RSS (:func:`rss_bytes`, from ``ru_maxrss``),
  per-stage RSS growth sampled by :func:`repro.perf.timers.stage`, and
  explicit byte accounts for the big allocations (shm arena blocks,
  padded batch tensors, the vectorized generator's drawn arrays);
* **GC pauses** -- count, total pause time, and objects collected,
  captured by :func:`track_gc` via ``gc.callbacks`` inside
  :func:`repro.perf.gctune.batched_gc`;
* **folded stacks** -- :func:`folded_stacks` collapses an active span
  tracer's tree into Brendan Gregg's folded-stack text (one
  ``frame;frame count`` line per unique stack, counts in integer
  microseconds of *self* time), importable by speedscope and
  ``flamegraph.pl`` alike; ``--profile FILE`` on the CLI writes it.

The lifecycle mirrors the registry exactly: a subscriber installs a
profiler with :func:`collect_profile` for a dynamic extent
(innermost-wins nesting); instrumentation points consult
:func:`current_profiler`, which is ``None`` without a subscriber or
under ``REPRO_OBS_DISABLE=1``; and profilers collected in worker
processes ship back as :meth:`Profiler.as_dict` payloads folded into
the parent with :func:`add_to_current`.  Every merge is associative
and commutative (sums, or max for peaks), so parent totals do not
depend on worker completion order.  Profiling is observation only:
``results_digest`` is bit-identical with a profiler installed or not.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.obs.spans import DISABLED, SpanTracer

__all__ = [
    "KernelStat",
    "Profiler",
    "add_to_current",
    "collect_profile",
    "current_profiler",
    "folded_stacks",
    "rss_bytes",
    "track_gc",
    "write_folded",
]


def rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    so the accounting is platform-independent.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


@dataclass(slots=True)
class KernelStat:
    """Streaming wall/CPU summary of one ``<kernel>.<backend>`` pair."""

    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    max_s: float = 0.0

    def observe(self, wall_s: float, cpu_s: float) -> None:
        self.count += 1
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        if wall_s > self.max_s:
            self.max_s = wall_s

    def merge_from(self, other: "KernelStat") -> None:
        self.count += other.count
        self.wall_s += other.wall_s
        self.cpu_s += other.cpu_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    @property
    def mean_s(self) -> float:
        return self.wall_s / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "KernelStat":
        return cls(
            count=int(data.get("count", 0)),
            wall_s=float(data.get("wall_s", 0.0)),
            cpu_s=float(data.get("cpu_s", 0.0)),
            max_s=float(data.get("max_s", 0.0)),
        )


class Profiler:
    """Resource accounts for one dynamic extent.

    All fields merge associatively and commutatively (:meth:`merge_from`
    sums, except ``peak_rss`` which max-merges), so worker profiles can
    be folded into a parent in any completion order.
    """

    def __init__(self) -> None:
        #: ``<kernel>.<backend>`` -> timing summary.
        self.kernels: dict[str, KernelStat] = {}
        #: Stage name -> summed positive peak-RSS growth (bytes) across
        #: that stage's blocks.  ``ru_maxrss`` is a high-water mark, so
        #: a stage is only charged when it pushed the peak higher.
        self.stage_rss: dict[str, int] = {}
        #: Named byte accounts (``shm.arena``, ``batch.tensors``,
        #: ``genvec.drawn``) -- explicit footprints of the allocations
        #: RSS deltas attribute poorly.
        self.bytes: dict[str, int] = {}
        #: Max peak RSS observed across this extent and merged workers.
        self.peak_rss: int = 0
        self.gc_pauses: int = 0
        self.gc_pause_s: float = 0.0
        self.gc_collected: int = 0

    # -- recording ---------------------------------------------------------

    def record_kernel(self, key: str, wall_s: float, cpu_s: float) -> None:
        stat = self.kernels.get(key)
        if stat is None:
            stat = self.kernels[key] = KernelStat()
        stat.observe(wall_s, cpu_s)

    def record_stage_rss(self, stage: str, delta: int) -> None:
        if delta > 0:
            self.stage_rss[stage] = self.stage_rss.get(stage, 0) + delta

    def add_bytes(self, key: str, n: int) -> None:
        self.bytes[key] = self.bytes.get(key, 0) + int(n)

    def record_gc_pause(self, pause_s: float, collected: int) -> None:
        self.gc_pauses += 1
        self.gc_pause_s += pause_s
        self.gc_collected += collected

    def sample_rss(self) -> int:
        """Fold the current peak RSS into the account; returns it."""
        peak = rss_bytes()
        if peak > self.peak_rss:
            self.peak_rss = peak
        return peak

    # -- merging -----------------------------------------------------------

    def merge_from(self, other: "Profiler | Mapping") -> None:
        """Fold another profiler (or its :meth:`as_dict` form) into this
        one.  Associative and commutative."""
        if isinstance(other, Mapping):
            other = Profiler.from_dict(other)
        for key, stat in other.kernels.items():
            mine = self.kernels.get(key)
            if mine is None:
                mine = self.kernels[key] = KernelStat()
            mine.merge_from(stat)
        for stage, delta in other.stage_rss.items():
            self.stage_rss[stage] = self.stage_rss.get(stage, 0) + delta
        for key, n in other.bytes.items():
            self.bytes[key] = self.bytes.get(key, 0) + n
        if other.peak_rss > self.peak_rss:
            self.peak_rss = other.peak_rss
        self.gc_pauses += other.gc_pauses
        self.gc_pause_s += other.gc_pause_s
        self.gc_collected += other.gc_collected

    def as_dict(self) -> dict:
        return {
            "kernels": {
                key: stat.as_dict()
                for key, stat in sorted(self.kernels.items())
            },
            "stage_rss": dict(sorted(self.stage_rss.items())),
            "bytes": dict(sorted(self.bytes.items())),
            "peak_rss": self.peak_rss,
            "gc": {
                "pauses": self.gc_pauses,
                "pause_s": self.gc_pause_s,
                "collected": self.gc_collected,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Profiler":
        prof = cls()
        for key, stat in data.get("kernels", {}).items():
            prof.kernels[key] = KernelStat.from_dict(stat)
        for stage, delta in data.get("stage_rss", {}).items():
            prof.stage_rss[stage] = int(delta)
        for key, n in data.get("bytes", {}).items():
            prof.bytes[key] = int(n)
        prof.peak_rss = int(data.get("peak_rss", 0))
        gc_block = data.get("gc", {})
        prof.gc_pauses = int(gc_block.get("pauses", 0))
        prof.gc_pause_s = float(gc_block.get("pause_s", 0.0))
        prof.gc_collected = int(gc_block.get("collected", 0))
        return prof

    # -- reporting ---------------------------------------------------------

    def render(self, top: int = 8) -> str:
        """Human summary: headline, top kernels by wall time, memory."""
        lines = [
            f"profile: peak rss {_fmt_bytes(self.peak_rss)}, "
            f"gc {self.gc_pauses} pauses {self.gc_pause_s:.3f}s "
            f"({self.gc_collected} collected)"
        ]
        ranked = sorted(
            self.kernels.items(), key=lambda kv: kv[1].wall_s, reverse=True
        )
        for key, stat in ranked[:top]:
            lines.append(
                f"  kernel {key:<18} {stat.count:>8} calls  "
                f"wall {stat.wall_s:.3f}s  cpu {stat.cpu_s:.3f}s  "
                f"max {stat.max_s * 1e3:.3f}ms"
            )
        if self.stage_rss:
            growth = "  ".join(
                f"{stage} +{_fmt_bytes(delta)}"
                for stage, delta in sorted(self.stage_rss.items())
            )
            lines.append(f"  rss growth: {growth}")
        if self.bytes:
            accounts = "  ".join(
                f"{key} {_fmt_bytes(n)}"
                for key, n in sorted(self.bytes.items())
            )
            lines.append(f"  bytes: {accounts}")
        return "\n".join(lines)


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


_profiler: ContextVar[Profiler | None] = ContextVar(
    "repro_obs_profiler", default=None
)


def current_profiler() -> Profiler | None:
    """The active profiler, or ``None`` (always ``None`` when
    ``REPRO_OBS_DISABLE=1``)."""
    if DISABLED:
        return None
    return _profiler.get()


@contextmanager
def collect_profile() -> Iterator[Profiler]:
    """Install a fresh profiler for the dynamic extent of the block
    (innermost-wins nesting, like ``collect_metrics``)."""
    prof = Profiler()
    token = _profiler.set(prof)
    try:
        yield prof
    finally:
        if not DISABLED:
            prof.sample_rss()  # close the extent's peak-RSS account
        _profiler.reset(token)


def add_to_current(data: "Profiler | Mapping") -> None:
    """Fold a shipped profile into the active one, if any.

    The parallel corpus drivers call this in the parent with each worker
    chunk's profile dict, exactly like ``metrics.add_to_current``.
    """
    prof = current_profiler()
    if prof is not None:
        prof.merge_from(data)


@contextmanager
def track_gc() -> Iterator[None]:
    """Record cyclic-collector pauses into the active profiler.

    Registers a ``gc.callbacks`` hook for the extent; each collection's
    start/stop pair contributes one pause.  No-op without a profiler.
    """
    prof = current_profiler()
    if prof is None:
        yield
        return
    start = [0.0]

    def hook(phase: str, info: Mapping) -> None:
        if phase == "start":
            start[0] = time.perf_counter()
        else:
            prof.record_gc_pause(
                time.perf_counter() - start[0], int(info.get("collected", 0))
            )

    gc.callbacks.append(hook)
    try:
        yield
    finally:
        gc.callbacks.remove(hook)


# -- folded stacks ---------------------------------------------------------


def folded_stacks(tracer: SpanTracer) -> list[str]:
    """Collapse a span tree into folded-stack lines.

    One line per unique root-to-leaf name path, ``frame;frame count``,
    where the count is the path's **self time** in integer microseconds
    (a span's duration minus its children's) -- the format
    ``flamegraph.pl`` and speedscope import directly.  Spans adopted
    from worker processes are prefixed ``worker:<pid>`` so parent and
    worker time stay distinguishable in the flame graph.
    """
    children_dur: dict[int, float] = {}
    for s in tracer.spans:
        if s.parent is not None:
            children_dur[s.parent] = children_dur.get(s.parent, 0.0) + s.dur_us
    by_id = {s.id: s for s in tracer.spans}
    totals: dict[str, float] = {}
    for s in tracer.spans:
        self_us = s.dur_us - children_dur.get(s.id, 0.0)
        if self_us <= 0.0:
            continue
        names = [s.name]
        parent = s.parent
        while parent is not None:
            p = by_id.get(parent)
            if p is None:  # pragma: no cover - defensive against truncation
                break
            names.append(p.name)
            parent = p.parent
        names.reverse()
        if s.pid != tracer.pid:
            names.insert(0, f"worker:{s.pid}")
        stack = ";".join(names)
        totals[stack] = totals.get(stack, 0.0) + self_us
    return [
        f"{stack} {max(1, round(us))}" for stack, us in sorted(totals.items())
    ]


def write_folded(tracer: SpanTracer, path: str | Path) -> Path:
    """Write :func:`folded_stacks` to ``path`` (one stack per line)."""
    path = Path(path)
    lines = folded_stacks(tracer)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
