"""Hierarchical span tracing for the evaluation pipeline.

A *span* is a named, timed region of execution with a parent: the five
pipeline stages (generate / schedule / insert / merge / simulate) open
spans through :func:`repro.perf.timers.stage`, and the hot inner
operations (``BarrierDag.evolved_insert``, ``DominatorTree.evolved``,
the k-longest-path walk, merge worklist rounds) open spans of their own
inside them, so a collected trace is a tree that shows *where inside a
stage* the time went.  Point-in-time occurrences that have no duration
-- an engine barrier release, a sweep-cache hit -- are recorded as
*instant events*.

Like the stage timers, tracing is **opt-in and zero-cost when off**: a
subscriber installs a :class:`SpanTracer` with :func:`collect_trace`,
and every :func:`span` block encountered while it is active records
into it.  With no subscriber a :func:`span` block costs one
context-variable lookup and the pipeline's results are bit-identical
either way (tracing is observation only; it never touches the RNG or
any decision).  ``REPRO_OBS_DISABLE=1`` hard-disables every recording
entry point regardless of subscribers -- the kill switch the CI
overhead guard measures against.

Timestamps are microseconds relative to the tracer's epoch
(``time.perf_counter()`` at installation); each tracer also records a
wall-clock anchor so spans collected in worker processes of the
parallel corpus driver can be rebased onto the parent's timeline (see
:meth:`SpanTracer.adopt`).  Export to JSONL or Chrome Trace Event
Format lives in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = [
    "Span",
    "TraceEvent",
    "SpanTracer",
    "collect_trace",
    "current_tracer",
    "span",
    "event",
]

#: Hard kill switch: with ``REPRO_OBS_DISABLE=1`` every recording entry
#: point returns immediately, subscribers or not.  Read once at import.
DISABLED = os.environ.get("REPRO_OBS_DISABLE", "") not in ("", "0")


@dataclass(slots=True)
class Span:
    """One completed timed region."""

    id: int
    parent: int | None  # id of the enclosing span, None at the root
    depth: int  # nesting depth (0 = root)
    name: str
    ts_us: float  # start, microseconds since the tracer's epoch
    dur_us: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": "span",
            "id": self.id,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


@dataclass(slots=True)
class TraceEvent:
    """One instant (zero-duration) occurrence."""

    name: str
    ts_us: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": "event",
            "name": self.name,
            "ts_us": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


class SpanTracer:
    """Collects spans and instant events for one dynamic extent.

    Not thread-safe: the pipeline is single-threaded per process, and
    worker processes of the parallel driver collect into their own
    tracer which is shipped back and :meth:`adopt`-ed by the parent.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.epoch = time.perf_counter()
        #: Wall-clock anchor of ``epoch``; lets a parent rebase spans
        #: collected in a worker process onto its own timeline.
        self.wall_epoch = time.time()
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._stack: list[tuple[int, str, float, dict]] = []
        self._next_id = 0

    # -- recording ---------------------------------------------------------

    def open(self, name: str, args: dict | None = None) -> int:
        """Open a span; returns its id (pass back to :meth:`close`)."""
        sid = self._next_id
        self._next_id += 1
        self._stack.append((sid, name, time.perf_counter(), args or {}))
        return sid

    def close(self, sid: int) -> None:
        """Close the innermost open span (must be ``sid``)."""
        now = time.perf_counter()
        top, name, start, args = self._stack.pop()
        if top != sid:  # pragma: no cover - instrumentation bug guard
            raise AssertionError(
                f"span close out of order: closing {sid}, innermost is {top}"
            )
        parent = self._stack[-1][0] if self._stack else None
        self.spans.append(
            Span(
                id=sid,
                parent=parent,
                depth=len(self._stack),
                name=name,
                ts_us=(start - self.epoch) * 1e6,
                dur_us=(now - start) * 1e6,
                pid=self.pid,
                tid=self.tid,
                args=args,
            )
        )

    def instant(self, name: str, args: dict | None = None) -> None:
        self.events.append(
            TraceEvent(
                name=name,
                ts_us=(time.perf_counter() - self.epoch) * 1e6,
                pid=self.pid,
                tid=self.tid,
                args=args or {},
            )
        )

    # -- structure queries -------------------------------------------------

    def children(self) -> dict[int | None, list[Span]]:
        """Parent-id -> child spans (key ``None`` holds the roots)."""
        tree: dict[int | None, list[Span]] = {}
        for s in self.spans:
            tree.setdefault(s.parent, []).append(s)
        return tree

    def named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    # -- worker shipping ---------------------------------------------------

    def export_state(self) -> dict:
        """Picklable snapshot shipped from a worker process to the parent."""
        return {
            "wall_epoch": self.wall_epoch,
            "spans": [s.as_dict() for s in self.spans],
            "events": [e.as_dict() for e in self.events],
        }

    def adopt(self, state: Mapping) -> None:
        """Merge a worker tracer's :meth:`export_state` into this one.

        Worker timestamps are rebased via the wall-clock anchors and
        span ids are shifted into a fresh block so parent links stay
        intact without colliding with this tracer's own ids.
        """
        offset_us = (state["wall_epoch"] - self.wall_epoch) * 1e6
        base = self._next_id
        top = -1
        for rec in state["spans"]:
            top = max(top, rec["id"])
            parent = rec["parent"]
            self.spans.append(
                Span(
                    id=base + rec["id"],
                    parent=None if parent is None else base + parent,
                    depth=rec["depth"],
                    name=rec["name"],
                    ts_us=rec["ts_us"] + offset_us,
                    dur_us=rec["dur_us"],
                    pid=rec["pid"],
                    tid=rec["tid"],
                    args=dict(rec["args"]),
                )
            )
        for rec in state["events"]:
            self.events.append(
                TraceEvent(
                    name=rec["name"],
                    ts_us=rec["ts_us"] + offset_us,
                    pid=rec["pid"],
                    tid=rec["tid"],
                    args=dict(rec["args"]),
                )
            )
        self._next_id = base + top + 1


_tracer: ContextVar[SpanTracer | None] = ContextVar("repro_obs_tracer", default=None)


def current_tracer() -> SpanTracer | None:
    """The active tracer, or ``None`` (always ``None`` when hard-disabled)."""
    if DISABLED:
        return None
    return _tracer.get()


@contextmanager
def collect_trace() -> Iterator[SpanTracer]:
    """Install a fresh tracer for the dynamic extent of the block.

    Tracers nest innermost-wins, mirroring
    :func:`repro.perf.timers.collect_timings`.
    """
    tracer = SpanTracer()
    token = _tracer.set(tracer)
    try:
        yield tracer
    finally:
        _tracer.reset(token)


@contextmanager
def span(name: str, **args) -> Iterator[None]:
    """Record the block as a span under the active tracer (no-op without
    one)."""
    tracer = current_tracer()
    if tracer is None:
        yield
        return
    sid = tracer.open(name, args)
    try:
        yield
    finally:
        tracer.close(sid)


def event(name: str, **args) -> None:
    """Record an instant event under the active tracer (no-op without one)."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.instant(name, args)
