"""Differential observability: run records and run-to-run diffing.

A :class:`RunRecord` is the versioned JSON artifact of one scheduling
(optionally simulated) run: the resolved configuration, every node's
processor assignment, the list order, the barrier population with merge
provenance, the SBM queue order and static fire windows, the
``results_digest``, and -- when collected -- the decision provenance,
execution trace summary, runtime analysis and metrics.  Records are
written by ``repro-sbm schedule/simulate --record FILE`` and are stable
across processes and commits, so two of them can be compared from
different configs, algorithm variants (conservative vs optimal, merge
on/off) or checkouts.

:func:`diff_runs` localizes the **first divergence** between two
records by walking the pipeline's layers in causal order::

    assignment -> ordering -> barrier set -> fire times / queue -> metrics

The first layer that differs names the earliest point where the two
runs stopped being the same computation; everything downstream is a
consequence.  When the diverging layer is the barrier set, the recorded
provenance is consulted so the report *names the decision* (e.g. the
merge that fused two barriers in one run but not the other, or the
forcing producer/consumer edge of a barrier only one run inserted).

Imports machine/core types, so -- like :mod:`repro.obs.explain` -- this
module lives outside the stdlib-only ``repro.obs`` package root.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__
from repro.core.scheduler import ScheduleResult
from repro.io import result_summary
from repro.machine.program import MachineProgram
from repro.machine.trace import ExecutionTrace
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.runtime import TraceAnalysis
from repro.perf.parallel import results_digest

__all__ = [
    "RUN_RECORD_FORMAT",
    "RunDivergence",
    "RunDiff",
    "run_record",
    "write_run_record",
    "load_run_record",
    "diff_runs",
]

RUN_RECORD_FORMAT = "repro.run-record.v1"

#: Layer order of :func:`diff_runs` -- causal pipeline order.
DIFF_LAYERS = ("assignment", "ordering", "barriers", "fire", "metrics")


def run_record(
    result: ScheduleResult,
    *,
    provenance: ProvenanceRecorder | None = None,
    trace: ExecutionTrace | None = None,
    analysis: TraceAnalysis | None = None,
    metrics=None,
    label: str = "",
) -> dict:
    """Build the versioned record of one run (JSON-shaped dict)."""
    schedule = result.schedule
    hybrid = None
    if result.hybrid is not None:
        hybrid = {
            "budget": result.hybrid.budget,
            "n_timing": result.hybrid.n_timing,
            "n_proven": result.hybrid.n_proven,
            "demotions": [
                {
                    "producer": str(d.producer),
                    "consumer": str(d.consumer),
                    "kind": d.kind,
                    "slack": d.slack,
                    "epsilon_edge": d.epsilon_edge,
                }
                for d in result.hybrid.demotions
            ],
        }
    program = MachineProgram.from_schedule(schedule)
    fire = schedule.fire_times()
    barriers = []
    for barrier in schedule.barriers(include_initial=True):
        barriers.append(
            {
                "id": barrier.id,
                "initial": barrier.is_initial,
                "participants": sorted(barrier.participants),
                "merged_from": sorted(barrier.merged_from),
                "fire_window": [fire[barrier.id].lo, fire[barrier.id].hi],
            }
        )
    barriers.sort(key=lambda b: b["id"])
    record = {
        "format": RUN_RECORD_FORMAT,
        "version": __version__,
        "python": platform.python_version(),
        "created_unix": time.time(),
        "label": label,
        "config": dataclasses.asdict(result.config),
        "merging_enabled": result.config.merging_enabled,
        "summary": result_summary(result),
        "results_digest": results_digest([result]),
        "assignment": {
            str(node): schedule.processor_of(node)
            for node in result.list_order
        },
        "order": [str(node) for node in result.list_order],
        "barriers": barriers,
        "hybrid": hybrid,
        "queue": list(program.barrier_order),
        "provenance": provenance.as_dict() if provenance is not None else None,
        "trace": None,
        "analysis": analysis.as_dict() if analysis is not None else None,
        "metrics": metrics.as_dict() if metrics is not None else None,
    }
    if trace is not None:
        record["trace"] = {
            "machine": trace.machine,
            "makespan": trace.makespan,
            "barrier_fire": {
                str(bid): t for bid, t in sorted(trace.barrier_fire.items())
            },
            "pe_finish": list(trace.pe_finish),
            "guard_waits": len(trace.guard_waits),
            "guard_saves": trace.guard_saves,
        }
    return record


def write_run_record(record: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    return path


def load_run_record(path: str | Path) -> dict:
    """Read and version-check a run record."""
    data = json.loads(Path(path).read_text())
    fmt = data.get("format")
    if fmt != RUN_RECORD_FORMAT:
        raise ValueError(
            f"{path}: unsupported run-record format {fmt!r}; "
            f"expected {RUN_RECORD_FORMAT!r}"
        )
    return data


@dataclass(frozen=True)
class RunDivergence:
    """The first layer where two runs stopped agreeing."""

    layer: str  # one of DIFF_LAYERS
    subject: str  # e.g. "node 12", "b5", "index 3", "engine.barrier_releases"
    a: object
    b: object
    #: Provenance-backed explanations, when the records carried any.
    notes: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "layer": self.layer,
            "subject": self.subject,
            "a": self.a,
            "b": self.b,
            "notes": list(self.notes),
        }


@dataclass(frozen=True)
class RunDiff:
    """Everything ``repro-sbm diff`` reports."""

    label_a: str
    label_b: str
    config_changes: dict[str, tuple]
    divergence: RunDivergence | None
    #: Context lines that are informative but not the first divergence
    #: (digest comparison, downstream metric deltas, ...).
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def as_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "config_changes": {
                k: [a, b] for k, (a, b) in sorted(self.config_changes.items())
            },
            "identical": self.identical,
            "divergence": (
                None if self.divergence is None else self.divergence.as_dict()
            ),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"diff {self.label_a or 'A'} vs {self.label_b or 'B'}"]
        if self.config_changes:
            lines.append("config differences:")
            for key, (a, b) in sorted(self.config_changes.items()):
                lines.append(f"  {key}: {a!r} -> {b!r}")
        else:
            lines.append("config differences: none")
        if self.divergence is None:
            lines.append("runs are equivalent (no divergence in any layer)")
        else:
            d = self.divergence
            lines.append(
                f"first divergence: layer '{d.layer}' at {d.subject}: "
                f"A={d.a!r} B={d.b!r}"
            )
            for note in d.notes:
                lines.append(f"  {note}")
        for note in self.notes:
            lines.append(note)
        return "\n".join(lines)


def _barrier_notes(record: dict, bid: int, side: str) -> list[str]:
    """Provenance-backed explanations for one barrier id in one record."""
    notes: list[str] = []
    prov = record.get("provenance") or {}
    for m in prov.get("merges", ()):
        if m.get("accepted") and bid in (m.get("survivor"), m.get("other")):
            notes.append(
                f"{side}: merge ({m.get('trigger')}): b{m.get('other')} "
                f"absorbed into b{m.get('survivor')} ({m.get('reason')})"
            )
    for d in prov.get("barriers", ()):
        if d.get("barrier_id") == bid:
            notes.append(
                f"{side}: b{bid} forced by {d.get('producer')} -> "
                f"{d.get('consumer')} (slack {d.get('slack')}, "
                f"dom b{d.get('dominator')})"
            )
    for entry in record.get("barriers", ()):
        if entry["id"] == bid and entry["merged_from"]:
            merged = ", ".join(f"b{v}" for v in entry["merged_from"])
            notes.append(f"{side}: b{bid} absorbed {merged}")
    return notes


def _merge_divergence_notes(a: dict, b: dict) -> list[str]:
    """Name the merge decisions only one of the runs took.

    Merging happens *during* insertion, so a merge taken in only one run
    can surface as an assignment- or ordering-layer divergence long
    before the barrier sets are compared; these notes name the decision
    regardless of which layer diverged first.
    """

    def accepted(record: dict) -> list[tuple]:
        prov = record.get("provenance") or {}
        return [
            (m.get("survivor"), m.get("other"), m.get("trigger"), m.get("reason"))
            for m in prov.get("merges", ())
            if m.get("accepted")
        ]

    ma, mb = accepted(a), accepted(b)
    if ma == mb:
        return []
    notes = []
    for side, only in (("A", [m for m in ma if m not in mb]),
                       ("B", [m for m in mb if m not in ma])):
        for survivor, other, trigger, reason in only[:3]:
            notes.append(
                f"merge only in {side}: b{other} absorbed into "
                f"b{survivor} ({trigger}: {reason})"
            )
        if len(only) > 3:
            notes.append(f"... and {len(only) - 3} more merges only in {side}")
    return notes


def _hybrid_notes(a: dict, b: dict) -> list[str]:
    """Name the demotion decisions only one of the runs took.

    Hybrid demotion never moves nodes or barriers (the static skeleton
    is untouched), so a demotion difference is *context* rather than a
    pipeline-layer divergence: the runs compute the same schedule but
    trust different edges at runtime.
    """
    ha, hb = a.get("hybrid"), b.get("hybrid")
    if ha is None and hb is None:
        return []
    if (ha is None) != (hb is None):
        side = "A" if ha is not None else "B"
        h = ha or hb
        return [
            f"hybrid only in {side}: {len(h.get('demotions', ()))} timing "
            f"edge(s) demoted to data guards (budget {h.get('budget')})"
        ]

    def edges(h: dict) -> set[tuple]:
        return {(d["producer"], d["consumer"]) for d in h.get("demotions", ())}

    ea, eb = edges(ha), edges(hb)
    if ea == eb:
        return []
    notes = []
    for side, only in (("A", sorted(ea - eb)), ("B", sorted(eb - ea))):
        for producer, consumer in only[:3]:
            notes.append(f"demoted only in {side}: {producer} -> {consumer}")
        if len(only) > 3:
            notes.append(f"... and {len(only) - 3} more demotions only in {side}")
    return notes


def _diff_assignment(a: dict, b: dict) -> RunDivergence | None:
    order = a["order"] if len(a["order"]) >= len(b["order"]) else b["order"]
    asg_a, asg_b = a["assignment"], b["assignment"]
    for node in order:
        pa, pb = asg_a.get(node), asg_b.get(node)
        if pa != pb:
            return RunDivergence("assignment", f"node {node}", pa, pb)
    return None


def _diff_ordering(a: dict, b: dict) -> RunDivergence | None:
    oa, ob = a["order"], b["order"]
    for i, (na, nb) in enumerate(zip(oa, ob)):
        if na != nb:
            return RunDivergence("ordering", f"index {i}", na, nb)
    if len(oa) != len(ob):
        i = min(len(oa), len(ob))
        return RunDivergence(
            "ordering",
            f"index {i}",
            oa[i] if i < len(oa) else None,
            ob[i] if i < len(ob) else None,
        )
    return None


def _diff_barriers(a: dict, b: dict) -> RunDivergence | None:
    by_id_a = {e["id"]: e for e in a["barriers"]}
    by_id_b = {e["id"]: e for e in b["barriers"]}
    for bid in sorted(set(by_id_a) | set(by_id_b)):
        ea, eb = by_id_a.get(bid), by_id_b.get(bid)
        if ea is None or eb is None:
            present, absent = ("A", "B") if eb is None else ("B", "A")
            notes = _barrier_notes(a, bid, "A") + _barrier_notes(b, bid, "B")
            notes.append(f"b{bid} exists only in {present}, not in {absent}")
            return RunDivergence(
                "barriers",
                f"b{bid}",
                None if ea is None else ea["participants"],
                None if eb is None else eb["participants"],
                tuple(notes),
            )
        for key in ("participants", "merged_from"):
            if ea[key] != eb[key]:
                notes = _barrier_notes(a, bid, "A") + _barrier_notes(b, bid, "B")
                return RunDivergence(
                    "barriers", f"b{bid}.{key}", ea[key], eb[key], tuple(notes)
                )
    return None


def _diff_fire(a: dict, b: dict) -> RunDivergence | None:
    by_id_a = {e["id"]: e for e in a["barriers"]}
    by_id_b = {e["id"]: e for e in b["barriers"]}
    for bid in sorted(by_id_a):
        if by_id_a[bid]["fire_window"] != by_id_b[bid]["fire_window"]:
            return RunDivergence(
                "fire",
                f"b{bid}.fire_window",
                by_id_a[bid]["fire_window"],
                by_id_b[bid]["fire_window"],
            )
    if a["queue"] != b["queue"]:
        for i, (qa, qb) in enumerate(zip(a["queue"], b["queue"])):
            if qa != qb:
                return RunDivergence("fire", f"queue[{i}]", f"b{qa}", f"b{qb}")
    ta, tb = a.get("trace"), b.get("trace")
    if ta and tb:
        for bid in sorted(ta["barrier_fire"], key=int):
            fa = ta["barrier_fire"].get(bid)
            fb = tb["barrier_fire"].get(bid)
            if fa != fb:
                return RunDivergence("fire", f"b{bid}@run", fa, fb)
        if ta["makespan"] != tb["makespan"]:
            return RunDivergence(
                "fire", "makespan@run", ta["makespan"], tb["makespan"]
            )
    return None


def _diff_metrics(a: dict, b: dict) -> RunDivergence | None:
    ma = (a.get("metrics") or {}).get("counters", {})
    mb = (b.get("metrics") or {}).get("counters", {})
    for name in sorted(set(ma) | set(mb)):
        if ma.get(name, 0) != mb.get(name, 0):
            return RunDivergence(
                "metrics", name, ma.get(name, 0), mb.get(name, 0)
            )
    return None


def diff_runs(a: dict, b: dict) -> RunDiff:
    """Localize the first divergence between two run records.

    Layers are compared in causal pipeline order (:data:`DIFF_LAYERS`);
    the first differing layer is reported with provenance-backed notes,
    and later layers are not searched (they are downstream effects).
    """
    config_changes = {}
    ca, cb = a.get("config", {}), b.get("config", {})
    for key in sorted(set(ca) | set(cb)):
        if ca.get(key) != cb.get(key):
            config_changes[key] = (ca.get(key), cb.get(key))
    if a.get("merging_enabled") != b.get("merging_enabled"):
        config_changes["merging_enabled"] = (
            a.get("merging_enabled"),
            b.get("merging_enabled"),
        )

    checks = {
        "assignment": _diff_assignment,
        "ordering": _diff_ordering,
        "barriers": _diff_barriers,
        "fire": _diff_fire,
        "metrics": _diff_metrics,
    }
    divergence = None
    for layer in DIFF_LAYERS:
        divergence = checks[layer](a, b)
        if divergence is not None:
            break

    notes = []
    if divergence is not None:
        notes.extend(_merge_divergence_notes(a, b))
    notes.extend(_hybrid_notes(a, b))
    if a.get("results_digest") == b.get("results_digest"):
        notes.append(f"results_digest: identical ({a.get('results_digest', '')[:16]}...)")
    else:
        notes.append(
            f"results_digest: A {a.get('results_digest', '')[:16]}... != "
            f"B {b.get('results_digest', '')[:16]}..."
        )
    return RunDiff(
        label_a=a.get("label", ""),
        label_b=b.get("label", ""),
        config_changes=config_changes,
        divergence=divergence,
        notes=tuple(notes),
    )
