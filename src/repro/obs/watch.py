"""Perf-trajectory watchdog: flag regressions across BENCH series.

``repro-sbm perf`` appends one entry per run to a trajectory file
(``benchmarks/data/BENCH_trajectory.jsonl``, one JSON object per line;
see :func:`repro.perf.report.trajectory_entry`).  This module reads the
series and compares the **latest** entry against the statistics of the
prior ones:

* **wall-clock series** (``wall_s``, per-stage times) are flagged when
  the latest value exceeds ``factor x median(prior)`` plus an absolute
  noise floor -- the same 2x-with-floor discipline the CI perf gates
  already use, but applied to the whole series instead of one pinned
  baseline, so a slow drift across many commits is caught even when no
  single step trips a 2x gate.  Only prior entries that ran the *same
  workload* (``preset`` / ``count``) enter the baseline median: a
  ``scale1024`` sweep is legitimately an order of magnitude slower
  than a quick default-preset run, and mixing them would flag every
  heavy entry (or mask a real regression in a light one);
* **deterministic series** (sync fractions, mean makespans) are exact
  functions of the workload.  When the latest entry ran the same
  workload as a prior one (same ``count`` / ``master_seed``) and their
  ``results_digest`` matches, those numbers must match bit for bit --
  any difference is a determinism violation and is flagged hard.  When
  the digest changed, the values legitimately moved with the behaviour
  change; the watchdog reports the drift as a note instead of a
  failure.  Entries from a different workload size are never compared
  (the digest only covers the simulated subset, which saturates at
  ``SIMULATED_CASES``, so two digest-equal runs can still sweep
  different corpus sizes).

:func:`watch_trajectory` returns a :class:`WatchReport` whose
:meth:`~WatchReport.render_markdown` is the artifact CI uploads;
``repro-sbm watch`` exits non-zero when anything was flagged.
Everything here is stdlib-only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

__all__ = [
    "ExplainReport",
    "RegressionCause",
    "WatchConfig",
    "SeriesVerdict",
    "WatchReport",
    "explain_regression",
    "load_trajectory",
    "watch_trajectory",
]

#: Wall-time series: (name, extractor, absolute noise floor in seconds).
_WALL_FLOOR = 1.5
_STAGE_FLOOR = 0.5
_STAGE_NAMES = ("generate", "schedule", "insert", "merge", "simulate")


@dataclass(frozen=True)
class WatchConfig:
    """Thresholds of the watchdog (defaults mirror the CI perf gates)."""

    #: Latest wall/stage time may be at most ``factor x median(prior)``.
    factor: float = 2.0
    #: Absolute floors so sub-second workloads cannot flag on noise.
    wall_floor_s: float = _WALL_FLOOR
    stage_floor_s: float = _STAGE_FLOOR
    #: Minimum prior entries before time series are judged at all.
    min_history: int = 1


@dataclass(frozen=True)
class SeriesVerdict:
    """One watched series: baseline statistics vs the latest value."""

    name: str
    kind: str  # "time" | "deterministic"
    n_prior: int
    baseline: float | None  # median of prior entries (time series)
    latest: float | None
    limit: float | None  # flag threshold (time series)
    flagged: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "n_prior": self.n_prior,
            "baseline": self.baseline,
            "latest": self.latest,
            "limit": self.limit,
            "flagged": self.flagged,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class WatchReport:
    """The watchdog's verdicts over one trajectory series."""

    entries: int
    verdicts: tuple[SeriesVerdict, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def flagged(self) -> tuple[SeriesVerdict, ...]:
        return tuple(v for v in self.verdicts if v.flagged)

    @property
    def ok(self) -> bool:
        return not self.flagged

    def as_dict(self) -> dict:
        return {
            "entries": self.entries,
            "ok": self.ok,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.flagged)} series FLAGGED"
        lines = [f"perf-trajectory watchdog: {self.entries} entries, {status}"]
        for v in self.verdicts:
            mark = "FLAG" if v.flagged else "ok"
            base = "-" if v.baseline is None else f"{v.baseline:.3f}"
            latest = "-" if v.latest is None else f"{v.latest:.3f}"
            lines.append(
                f"  [{mark}] {v.name}: latest {latest} baseline {base}"
                + (f" ({v.detail})" if v.detail else "")
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The CI artifact: a self-contained markdown report."""
        status = (
            "**OK** — no regression flagged"
            if self.ok
            else f"**REGRESSION** — {len(self.flagged)} series flagged"
        )
        lines = [
            "# Perf-trajectory watchdog",
            "",
            f"{self.entries} trajectory entries analyzed. {status}.",
            "",
            "| series | kind | prior | baseline | latest | limit | status |",
            "|---|---|---|---|---|---|---|",
        ]
        for v in self.verdicts:
            fmt = lambda x: "—" if x is None else f"{x:.3f}"
            lines.append(
                f"| `{v.name}` | {v.kind} | {v.n_prior} | {fmt(v.baseline)} "
                f"| {fmt(v.latest)} | {fmt(v.limit)} | "
                f"{'⚠️ flagged' if v.flagged else 'ok'} |"
            )
        if self.notes:
            lines.append("")
            lines.append("## Notes")
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        for v in self.flagged:
            if v.detail:
                lines.append("")
                lines.append(f"- **{v.name}**: {v.detail}")
        lines.append("")
        return "\n".join(lines)


def load_trajectory(path: str | Path) -> list[dict]:
    """Read a trajectory series (one JSON object per non-empty line)."""
    path = Path(path)
    if not path.exists():
        return []
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: bad trajectory line: {exc}")
    return entries


def _time_series(entries: list[dict]) -> dict[str, list[float | None]]:
    series: dict[str, list[float | None]] = {"wall_s": []}
    for name in _STAGE_NAMES:
        series[f"stages.{name}"] = []
    for e in entries:
        series["wall_s"].append(e.get("wall_s"))
        stages = e.get("stages", {})
        for name in _STAGE_NAMES:
            series[f"stages.{name}"].append(stages.get(name))
    return series


def _point_series(entries: list[dict]) -> dict[str, list[float | None]]:
    """Deterministic headline numbers, one series per (axis value, field)."""
    series: dict[str, list[float | None]] = {}
    fields = ("barrier", "serialized", "static", "mean_makespan_max")
    for e in entries:
        for point in e.get("points", ()):
            for f in fields:
                name = f"points[{point.get('value')}].{f}"
                series.setdefault(name, [])
    for e in entries:
        by_value = {p.get("value"): p for p in e.get("points", ())}
        for name, values in series.items():
            value = int(name[name.index("[") + 1 : name.index("]")])
            point = by_value.get(value)
            values.append(None if point is None else point.get(name.rsplit(".", 1)[1]))
    return series


def watch_trajectory(
    entries: list[dict], config: WatchConfig | None = None
) -> WatchReport:
    """Judge the latest trajectory entry against the prior series."""
    config = config or WatchConfig()
    if len(entries) < 2:
        return WatchReport(
            entries=len(entries),
            verdicts=(),
            notes=(
                "fewer than 2 trajectory entries; nothing to compare "
                "(run `repro-sbm perf` to append one)",
            ),
        )
    prior, latest = entries[:-1], entries[-1]
    verdicts: list[SeriesVerdict] = []
    notes: list[str] = []

    # -- wall-clock series -------------------------------------------------
    time_workload = (latest.get("preset"), latest.get("count"))
    same_time_workload = [
        (e.get("preset"), e.get("count")) == time_workload for e in prior
    ]
    off_workload = len(prior) - sum(same_time_workload)
    if off_workload:
        notes.append(
            f"{off_workload} prior entr"
            f"{'y' if off_workload == 1 else 'ies'} ran a different "
            "workload (preset/count); time series were not compared "
            "against them"
        )
    for name, values in _time_series(entries).items():
        hist = [
            v
            for v, same in zip(values[:-1], same_time_workload)
            if v is not None and same
        ]
        last = values[-1]
        if last is None or len(hist) < config.min_history:
            continue
        base = median(hist)
        floor = config.wall_floor_s if name == "wall_s" else config.stage_floor_s
        limit = max(config.factor * base, base + floor)
        verdicts.append(
            SeriesVerdict(
                name=name,
                kind="time",
                n_prior=len(hist),
                baseline=base,
                latest=last,
                limit=limit,
                flagged=last > limit,
                detail=(
                    f"latest {last:.3f}s exceeds {limit:.3f}s "
                    f"({config.factor:.1f}x median of {len(hist)} prior runs)"
                    if last > limit
                    else ""
                ),
            )
        )

    # -- throughput series (higher is better; the comparison flips) -------
    rate_hist = [
        e.get("cases_per_s")
        for e, same in zip(prior, same_time_workload)
        if same and e.get("cases_per_s")
    ]
    latest_rate = latest.get("cases_per_s")
    if (
        latest_rate
        and len(rate_hist) >= config.min_history
        # Sub-second workloads are all noise; same discipline as the
        # wall floor, expressed on the rate's underlying wall time.
        and (latest.get("wall_s") or 0.0) >= config.wall_floor_s
    ):
        base = median(rate_hist)
        limit = base / config.factor
        flagged = latest_rate < limit
        verdicts.append(
            SeriesVerdict(
                name="cases_per_s",
                kind="throughput",
                n_prior=len(rate_hist),
                baseline=base,
                latest=latest_rate,
                limit=limit,
                flagged=flagged,
                detail=(
                    f"latest {latest_rate:.1f} cases/s fell below "
                    f"{limit:.1f} (median of {len(rate_hist)} prior runs "
                    f"/ {config.factor:.1f})"
                    if flagged
                    else ""
                ),
            )
        )

    # -- deterministic series ----------------------------------------------
    latest_digest = latest.get("results_digest")
    latest_workload = (latest.get("count"), latest.get("master_seed"))

    def comparable(e: dict) -> bool:
        # The digest only covers the simulated subset (saturating at
        # SIMULATED_CASES), so equal digests from different corpus
        # sizes are NOT the same workload -- count/seed must match too.
        return (
            e.get("results_digest") == latest_digest
            and (e.get("count"), e.get("master_seed")) == latest_workload
        )

    same_digest_prior = [e for e in prior if comparable(e)]
    digests = {e.get("results_digest") for e in entries}
    if len(digests) > 1:
        notes.append(
            f"{len(digests)} distinct results_digest values across the "
            "series (behaviour changed between entries; deterministic "
            "series are only compared within a digest)"
        )
    skipped_workloads = sum(
        1
        for e in prior
        if e.get("results_digest") == latest_digest and not comparable(e)
    )
    if skipped_workloads:
        notes.append(
            f"{skipped_workloads} digest-equal prior entr"
            f"{'y' if skipped_workloads == 1 else 'ies'} ran a different "
            "workload (count/master_seed); deterministic series were not "
            "compared against them"
        )
    for name, values in _point_series(entries).items():
        last = values[-1]
        if last is None:
            continue
        reference = None
        for e, v in zip(prior, values[:-1]):
            if v is not None and comparable(e):
                reference = v
        if reference is None:
            continue  # no comparable prior entry (digest/workload changed)
        drifted = abs(last - reference) > 1e-9
        verdicts.append(
            SeriesVerdict(
                name=name,
                kind="deterministic",
                n_prior=len(same_digest_prior),
                baseline=reference,
                latest=last,
                limit=None,
                flagged=drifted,
                detail=(
                    "value differs from a prior entry with the SAME "
                    "results_digest: determinism violation"
                    if drifted
                    else ""
                ),
            )
        )
    return WatchReport(
        entries=len(entries), verdicts=tuple(verdicts), notes=tuple(notes)
    )


# -- regression attribution (`repro-sbm watch --explain`) ------------------


@dataclass(frozen=True)
class RegressionCause:
    """One regressed series: where the latest entry lost its time."""

    kind: str  # "stage" | "kernel" | "gc"
    name: str
    baseline: float  # median of comparable prior entries, seconds
    latest: float
    delta: float  # latest - baseline, seconds (positive = regressed)
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "baseline": self.baseline,
            "latest": self.latest,
            "delta": self.delta,
            "note": self.note,
        }

    def render(self) -> str:
        text = (
            f"{self.kind} {self.name}: +{self.delta:.3f}s "
            f"({self.baseline:.3f}s -> {self.latest:.3f}s)"
        )
        if self.note:
            text += f"  [{self.note}]"
        return text


@dataclass(frozen=True)
class ExplainReport:
    """Top regressed stages/kernels of the latest trajectory entry."""

    workload: str
    n_prior: int
    causes: tuple[RegressionCause, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n_prior": self.n_prior,
            "causes": [c.as_dict() for c in self.causes],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [
            f"explain: latest vs median of {self.n_prior} prior runs "
            f"({self.workload})"
        ]
        for rank, cause in enumerate(self.causes, 1):
            lines.append(f"  {rank}. {cause.render()}")
        if not self.causes:
            lines.append("  nothing regressed against the baseline")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            "## Regression attribution",
            "",
            f"Latest entry vs the median of {self.n_prior} prior runs "
            f"({self.workload}).",
            "",
        ]
        if self.causes:
            lines.append("| rank | kind | series | baseline | latest | delta |")
            lines.append("|---|---|---|---|---|---|")
            for rank, c in enumerate(self.causes, 1):
                lines.append(
                    f"| {rank} | {c.kind} | `{c.name}` | {c.baseline:.3f}s "
                    f"| {c.latest:.3f}s | +{c.delta:.3f}s |"
                )
            for c in self.causes:
                if c.note:
                    lines.append("")
                    lines.append(f"- **{c.name}**: {c.note}")
        else:
            lines.append("Nothing regressed against the baseline.")
        for note in self.notes:
            lines.append("")
            lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)


def _median_series(values: list[float]) -> float | None:
    return median(values) if values else None


def explain_regression(
    entries: list[dict], top: int = 5
) -> ExplainReport:
    """Attribute the latest entry's lost time to stages and kernels.

    Compares the latest trajectory entry's per-stage wall times, its
    per-kernel profile (``profile.kernels.<key>.wall_s``), and its GC
    pause total against the medians of the prior entries that ran the
    same workload (``preset``/``count``), and ranks the positive deltas.
    The result names the top-``top`` regressed series with time deltas
    -- the "what got slower" answer a flagged
    :func:`watch_trajectory` verdict leaves open.
    """
    if not entries:
        return ExplainReport(
            workload="no entries",
            n_prior=0,
            causes=(),
            notes=("empty trajectory; nothing to explain",),
        )
    latest = entries[-1]
    workload = (latest.get("preset"), latest.get("count"))
    prior = [
        e
        for e in entries[:-1]
        if (e.get("preset"), e.get("count")) == workload
    ]
    workload_text = f"preset {workload[0]}, count {workload[1]}"
    if not prior:
        return ExplainReport(
            workload=workload_text,
            n_prior=0,
            causes=(),
            notes=(
                "no prior entries ran the same workload "
                f"({workload_text}); nothing to compare",
            ),
        )
    causes: list[RegressionCause] = []
    notes: list[str] = []

    # Stage wall times, with a compute-vs-stall note from the CPU column.
    latest_stages = latest.get("stages", {})
    latest_cpu = latest_stages.get("cpu", {})
    for name in _STAGE_NAMES:
        latest_wall = latest_stages.get(name)
        if latest_wall is None:
            continue
        base = _median_series(
            [
                e.get("stages", {}).get(name)
                for e in prior
                if e.get("stages", {}).get(name) is not None
            ]
        )
        if base is None:
            continue
        delta = latest_wall - base
        if delta <= 0:
            continue
        note = ""
        cpu_base = _median_series(
            [
                e.get("stages", {}).get("cpu", {}).get(name)
                for e in prior
                if e.get("stages", {}).get("cpu", {}).get(name) is not None
            ]
        )
        if name in latest_cpu and cpu_base is not None:
            cpu_delta = latest_cpu[name] - cpu_base
            if cpu_delta < 0.5 * delta:
                note = (
                    f"wall grew {delta:.3f}s but cpu only "
                    f"{max(cpu_delta, 0.0):.3f}s: mostly stall (gc/io), "
                    "not compute"
                )
        causes.append(
            RegressionCause(
                kind="stage",
                name=name,
                baseline=base,
                latest=latest_wall,
                delta=delta,
                note=note,
            )
        )

    # Per-kernel wall times from the trimmed resource profile.
    latest_kernels = (latest.get("profile") or {}).get("kernels", {})
    prior_profiles = [
        (e.get("profile") or {}).get("kernels", {}) for e in prior
    ]
    if latest_kernels and not any(prior_profiles):
        notes.append(
            "prior entries carry no kernel profile (recorded before "
            "profiling landed); kernel deltas were not compared"
        )
    for key, stat in latest_kernels.items():
        latest_wall = stat.get("wall_s")
        if latest_wall is None:
            continue
        hist = [
            p[key].get("wall_s")
            for p in prior_profiles
            if key in p and p[key].get("wall_s") is not None
        ]
        base = _median_series(hist)
        if base is None:
            continue
        delta = latest_wall - base
        if delta <= 0:
            continue
        note = ""
        call_hist = [
            p[key].get("count")
            for p in prior_profiles
            if key in p and p[key].get("count") is not None
        ]
        call_base = _median_series([float(c) for c in call_hist])
        calls = stat.get("count")
        if calls and call_base:
            per_call = latest_wall / calls
            per_call_base = base / call_base
            note = (
                f"calls {int(call_base)} -> {calls}, per-call "
                f"{per_call_base * 1e6:.0f}us -> {per_call * 1e6:.0f}us"
            )
        causes.append(
            RegressionCause(
                kind="kernel",
                name=key,
                baseline=base,
                latest=latest_wall,
                delta=delta,
                note=note,
            )
        )

    # GC pause total.
    latest_gc = (latest.get("profile") or {}).get("gc", {})
    gc_latest = latest_gc.get("pause_s")
    gc_base = _median_series(
        [
            (e.get("profile") or {}).get("gc", {}).get("pause_s")
            for e in prior
            if (e.get("profile") or {}).get("gc", {}).get("pause_s")
            is not None
        ]
    )
    if gc_latest is not None and gc_base is not None:
        gc_delta = gc_latest - gc_base
        if gc_delta > 0:
            causes.append(
                RegressionCause(
                    kind="gc",
                    name="gc.pause_s",
                    baseline=gc_base,
                    latest=gc_latest,
                    delta=gc_delta,
                    note=f"{latest_gc.get('pauses', 0)} pauses in the "
                    "latest entry",
                )
            )

    causes.sort(key=lambda c: c.delta, reverse=True)
    return ExplainReport(
        workload=workload_text,
        n_prior=len(prior),
        causes=tuple(causes[:top]),
        notes=tuple(notes),
    )
