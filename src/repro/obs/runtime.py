"""Runtime observability: analytics computed *from* an execution trace.

PR 4 made the compiler observable; this module makes the simulated
machine observable.  An :class:`~repro.machine.trace.ExecutionTrace`
records raw start/finish/fire instants -- :func:`analyze_trace` turns
one trace plus its :class:`~repro.machine.program.MachineProgram` into
a :class:`TraceAnalysis`:

* **per-PE breakdown** -- busy, barrier-wait and idle time per
  processor, and the executed utilization (busy / makespan) that the
  Gantt chart and ``repro-sbm simulate`` surface;
* **per-barrier runtime stats** -- each participant's arrival, its
  wait (``fire - arrival``) and the *release skew* (spread between the
  first and last arrival the release had to cover);
* **superstep imbalance** -- between consecutive barrier releases the
  machine runs a BSP-style superstep; per-superstep busy-time spread
  quantifies the load imbalance each release pays for;
* **executed critical path** -- the chain of instructions and barrier
  releases that realizes the makespan, recovered by walking causes
  backwards (an op starts when its predecessor segment ends; a barrier
  fires either when its last participant arrives -- ``dependence`` --
  or, on the SBM, when the previous queue head lets it through --
  ``queue``).  Barrier steps cross-link to PR 4's provenance so
  ``repro-sbm explain --runtime`` can answer "which forced barrier is
  on the critical path".

Analysis is **observation only**: it reads a finished trace and never
touches the engine, the RNG, or any scheduling decision, so the
``results_digest`` contract of :mod:`repro.obs` holds with analysis on,
off, and under ``--jobs`` (pinned in ``tests/obs/test_digest_parity``).
When a :class:`~repro.obs.metrics.MetricsRegistry` is active,
:func:`analyze_trace` feeds the ``engine.*`` metric family tabled in
docs/observability.md.

Like :mod:`repro.obs.explain`, this module imports machine-layer types
and therefore lives outside the stdlib-only :mod:`repro.obs` package
root; import it directly (``from repro.obs.runtime import
analyze_trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.program import BarrierRef, MachineOp, MachineProgram
from repro.machine.trace import ExecutionTrace
from repro.obs.metrics import current_registry

__all__ = [
    "Segment",
    "PEBreakdown",
    "BarrierRuntime",
    "SuperstepStat",
    "CriticalStep",
    "TraceAnalysis",
    "analyze_trace",
]


@dataclass(frozen=True, slots=True)
class Segment:
    """One contiguous slice of a processor's timeline."""

    pe: int
    kind: str  # "op" | "wait"
    start: int
    end: int
    node: object | None = None
    barrier: int | None = None

    @property
    def span(self) -> int:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class PEBreakdown:
    """Where one processor's time went, over the whole makespan."""

    pe: int
    busy: int
    barrier_wait: int
    #: Time between the PE retiring its stream and machine completion.
    tail_idle: int
    finish: int

    @property
    def total(self) -> int:
        return self.busy + self.barrier_wait + self.tail_idle

    def utilization(self, makespan: int) -> float:
        return self.busy / makespan if makespan else 0.0

    def as_dict(self) -> dict:
        return {
            "pe": self.pe,
            "busy": self.busy,
            "barrier_wait": self.barrier_wait,
            "tail_idle": self.tail_idle,
            "finish": self.finish,
        }


@dataclass(frozen=True, slots=True)
class BarrierRuntime:
    """One barrier release as the hardware experienced it."""

    barrier_id: int
    fire: int
    is_initial: bool
    #: Participant -> time it raised its WAIT line.
    arrivals: dict[int, int]
    #: Participant -> ``fire - arrival``.
    waits: dict[int, int]

    @property
    def width(self) -> int:
        return len(self.arrivals)

    @property
    def skew(self) -> int:
        """Spread between the first and last arrival (0 for width 1)."""
        if not self.arrivals:
            return 0
        times = self.arrivals.values()
        return max(times) - min(times)

    @property
    def max_wait(self) -> int:
        return max(self.waits.values(), default=0)

    @property
    def total_wait(self) -> int:
        return sum(self.waits.values())

    @property
    def last_arriver(self) -> int | None:
        """The participant that released the barrier (ties: lowest PE)."""
        if not self.arrivals:
            return None
        last = max(self.arrivals.values())
        return min(pe for pe, t in self.arrivals.items() if t == last)

    def as_dict(self) -> dict:
        return {
            "barrier_id": self.barrier_id,
            "fire": self.fire,
            "is_initial": self.is_initial,
            "arrivals": {str(pe): t for pe, t in sorted(self.arrivals.items())},
            "waits": {str(pe): w for pe, w in sorted(self.waits.items())},
            "skew": self.skew,
        }


@dataclass(frozen=True, slots=True)
class SuperstepStat:
    """One inter-release interval, BSP style."""

    index: int
    start: int
    end: int
    #: Busy time per processor clipped to [start, end).
    busy: tuple[int, ...]

    @property
    def span(self) -> int:
        return self.end - self.start

    @property
    def imbalance(self) -> int:
        """Busy-time spread across processors within the superstep."""
        return (max(self.busy) - min(self.busy)) if self.busy else 0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "busy": list(self.busy),
            "imbalance": self.imbalance,
        }


@dataclass(frozen=True, slots=True)
class CriticalStep:
    """One link of the executed critical path, in forward time order."""

    kind: str  # "op" | "barrier"
    at: int  # completion instant: op finish, or barrier fire
    pe: int | None = None
    node: object | None = None
    barrier: int | None = None
    #: How the step's start was determined: ``dependence`` (predecessor
    #: segment on the same PE / last-arriving participant), ``queue``
    #: (SBM head-of-line serialization), or ``origin`` (time 0).
    cause: str = "dependence"

    def describe(self) -> str:
        if self.kind == "barrier":
            tag = f"b{self.barrier}@{self.at}"
            return tag if self.cause != "queue" else f"{tag}[queue]"
        return f"{self.node}(PE{self.pe})@{self.at}"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "pe": self.pe,
            "node": None if self.node is None else str(self.node),
            "barrier": self.barrier,
            "cause": self.cause,
        }


@dataclass(frozen=True)
class TraceAnalysis:
    """Everything :func:`analyze_trace` derives from one execution."""

    machine: str
    makespan: int
    pes: tuple[PEBreakdown, ...]
    barriers: tuple[BarrierRuntime, ...]  # fire-time order, initial included
    supersteps: tuple[SuperstepStat, ...]
    critical_path: tuple[CriticalStep, ...]
    segments: tuple[Segment, ...] = field(repr=False, default=())

    # -- aggregates --------------------------------------------------------

    @property
    def mean_utilization(self) -> float:
        if not self.pes or not self.makespan:
            return 0.0
        return sum(p.busy for p in self.pes) / (len(self.pes) * self.makespan)

    @property
    def total_barrier_wait(self) -> int:
        return sum(b.total_wait for b in self.barriers)

    @property
    def max_release_skew(self) -> int:
        return max((b.skew for b in self.barriers), default=0)

    @property
    def mean_superstep_imbalance(self) -> float:
        if not self.supersteps:
            return 0.0
        return sum(s.imbalance for s in self.supersteps) / len(self.supersteps)

    def critical_barriers(self) -> tuple[int, ...]:
        """Barrier ids on the executed critical path, in path order."""
        return tuple(
            s.barrier for s in self.critical_path if s.kind == "barrier"
        )

    def breakdown_of(self, pe: int) -> PEBreakdown:
        return self.pes[pe]

    def barrier_runtime(self, barrier_id: int) -> BarrierRuntime | None:
        for b in self.barriers:
            if b.barrier_id == barrier_id:
                return b
        return None

    # -- serialization -----------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "machine": self.machine,
            "makespan": self.makespan,
            "mean_utilization": self.mean_utilization,
            "total_barrier_wait": self.total_barrier_wait,
            "max_release_skew": self.max_release_skew,
            "pes": [p.as_dict() for p in self.pes],
            "barriers": [b.as_dict() for b in self.barriers],
            "supersteps": [s.as_dict() for s in self.supersteps],
            "critical_path": [s.as_dict() for s in self.critical_path],
        }

    def render(self) -> str:
        lines = [
            f"runtime analysis ({self.machine}): makespan {self.makespan}, "
            f"mean utilization {self.mean_utilization:.0%}"
        ]
        for p in self.pes:
            lines.append(
                f"  PE{p.pe}: busy {p.busy} "
                f"({p.utilization(self.makespan):.0%}), "
                f"barrier-wait {p.barrier_wait}, tail idle {p.tail_idle}"
            )
        released = [b for b in self.barriers if not b.is_initial]
        if released:
            waits = [w for b in released for w in b.waits.values()]
            mean_wait = sum(waits) / len(waits) if waits else 0.0
            lines.append(
                f"  barriers: {len(released)} releases, wait mean "
                f"{mean_wait:.1f} max {max(waits, default=0)}, skew max "
                f"{self.max_release_skew}"
            )
        if self.supersteps:
            worst = max(self.supersteps, key=lambda s: s.imbalance)
            lines.append(
                f"  supersteps: {len(self.supersteps)}, imbalance mean "
                f"{self.mean_superstep_imbalance:.1f} worst {worst.imbalance}"
                f" @ t{worst.start}..{worst.end}"
            )
        if self.critical_path:
            shown = " -> ".join(s.describe() for s in self.critical_path[:8])
            more = len(self.critical_path) - 8
            if more > 0:
                shown += f" -> ... (+{more})"
            n_bar = len(self.critical_barriers())
            lines.append(
                f"  executed critical path ({len(self.critical_path)} steps, "
                f"{n_bar} barrier releases): {shown}"
            )
        return "\n".join(lines)


def _walk_segments(
    program: MachineProgram, trace: ExecutionTrace
) -> list[list[Segment]]:
    """Reconstruct each processor's timeline from the stream + trace."""
    per_pe: list[list[Segment]] = []
    for pe, stream in enumerate(program.streams):
        clock = 0
        segments: list[Segment] = []
        for item in stream:
            if isinstance(item, BarrierRef):
                fire = trace.barrier_fire.get(item.barrier_id)
                if fire is None:
                    raise ValueError(
                        f"trace records no fire time for b{item.barrier_id}; "
                        "cannot analyze a partial trace"
                    )
                segments.append(
                    Segment(pe, "wait", clock, fire, barrier=item.barrier_id)
                )
                clock = fire
            else:
                assert isinstance(item, MachineOp)
                start = trace.start[item.node]
                finish = trace.finish[item.node]
                segments.append(Segment(pe, "op", start, finish, node=item.node))
                clock = finish
        per_pe.append(segments)
    return per_pe


def _barrier_runtimes(
    program: MachineProgram,
    trace: ExecutionTrace,
    per_pe: list[list[Segment]],
) -> list[BarrierRuntime]:
    arrivals: dict[int, dict[int, int]] = {bid: {} for bid in trace.barrier_fire}
    for segments in per_pe:
        for s in segments:
            if s.kind == "wait":
                arrivals[s.barrier].setdefault(s.pe, s.start)
    out = []
    for bid, fire in sorted(trace.barrier_fire.items(), key=lambda kv: (kv[1], kv[0])):
        arr = arrivals.get(bid, {})
        out.append(
            BarrierRuntime(
                barrier_id=bid,
                fire=fire,
                is_initial=bid == program.initial_barrier_id,
                arrivals=arr,
                waits={pe: fire - t for pe, t in arr.items()},
            )
        )
    return out


def _supersteps(
    trace: ExecutionTrace, per_pe: list[list[Segment]], makespan: int
) -> list[SuperstepStat]:
    instants = sorted(set(trace.barrier_fire.values()))
    bounds = []
    for i, t in enumerate(instants):
        end = instants[i + 1] if i + 1 < len(instants) else makespan
        if end > t:
            bounds.append((t, end))
    steps = []
    for index, (start, end) in enumerate(bounds):
        busy = []
        for segments in per_pe:
            total = 0
            for s in segments:
                if s.kind != "op":
                    continue
                total += max(0, min(s.end, end) - max(s.start, start))
            busy.append(total)
        steps.append(SuperstepStat(index, start, end, tuple(busy)))
    return steps


def _critical_path(
    program: MachineProgram,
    trace: ExecutionTrace,
    per_pe: list[list[Segment]],
    barriers: list[BarrierRuntime],
) -> list[CriticalStep]:
    """Walk the realized makespan's causes backwards (module docstring).

    The walk is *stream-positional*: an op's cause is the previous item
    in its own stream (the op or barrier release it started from); a
    barrier released by an arrival (``dependence``) chains to whatever
    its last-arriving participant did just before the wait; a barrier
    released by the SBM queue (``queue``) chains to the previous queue
    head whose select-time it inherited.  Positions (not end-times) are
    chained so zero-length waits -- a PE arriving at the exact fire
    instant -- still put the release on the path.
    """
    makespan = trace.makespan
    if makespan == 0 or not any(per_pe):
        return []
    runtime: dict[int, BarrierRuntime] = {b.barrier_id: b for b in barriers}
    #: SBM head serialization: map a select-time (fire minus release
    #: latency for non-initial barriers) back to the barrier that set it.
    select_time: dict[int, int] = {}
    for b in barriers:
        base = b.fire if b.is_initial else b.fire - program.barrier_latency
        select_time.setdefault(base, b.barrier_id)
    #: (pe, barrier) -> index of that PE's wait segment in its stream.
    wait_pos: dict[tuple[int, int], int] = {}
    for pe, segments in enumerate(per_pe):
        for i, s in enumerate(segments):
            if s.kind == "wait":
                wait_pos[(pe, s.barrier)] = i

    end_pe = min(
        pe for pe, t in enumerate(trace.pe_finish) if t == makespan
    )
    steps: list[CriticalStep] = []
    seen: set[tuple[str, object]] = set()
    #: (pe, segment index) cursor; None terminates the walk at t=0.
    cursor: tuple[int, int] | None = (
        (end_pe, len(per_pe[end_pe]) - 1) if per_pe[end_pe] else None
    )
    guard = sum(len(s) for s in per_pe) + len(barriers) + 2

    while cursor is not None and guard > 0:
        guard -= 1
        pe, i = cursor
        s = per_pe[pe][i]
        if s.kind == "op":
            key = ("op", s.node)
            if key in seen:  # pragma: no cover - malformed trace guard
                break
            seen.add(key)
            steps.append(CriticalStep("op", s.end, pe=s.pe, node=s.node))
            cursor = (pe, i - 1) if i > 0 else None
        else:
            bid = s.barrier
            key = ("barrier", bid)
            if key in seen:  # pragma: no cover - malformed trace guard
                break
            seen.add(key)
            b = runtime[bid]
            base = b.fire if b.is_initial else b.fire - program.barrier_latency
            last = b.last_arriver
            if last is not None and b.arrivals[last] == base:
                steps.append(
                    CriticalStep("barrier", b.fire, barrier=bid, cause="dependence")
                )
                j = wait_pos.get((last, bid))
                cursor = (last, j - 1) if j is not None and j > 0 else None
            else:
                # The release waited on the queue, not on an arrival:
                # chain to the barrier whose select-time it inherited.
                steps.append(
                    CriticalStep("barrier", b.fire, barrier=bid, cause="queue")
                )
                prev = select_time.get(base)
                if prev is None or prev == bid:
                    cursor = None
                else:
                    plast = runtime[prev].last_arriver
                    j = (
                        wait_pos.get((plast, prev))
                        if plast is not None
                        else None
                    )
                    cursor = (plast, j) if j is not None else None
    steps.reverse()
    return steps


def _record_metrics(analysis: TraceAnalysis) -> None:
    """Feed the ``engine.*`` metric family (no-op without a registry)."""
    reg = current_registry()
    if reg is None:
        return
    reg.inc("engine.analyses")
    reg.inc("engine.supersteps", len(analysis.supersteps))
    for p in analysis.pes:
        reg.observe("engine.pe_utilization", p.utilization(analysis.makespan))
        reg.observe("engine.pe_barrier_wait", p.barrier_wait)
    for b in analysis.barriers:
        if b.is_initial:
            continue
        reg.observe("engine.release_skew", b.skew)
        for wait in b.waits.values():
            reg.observe("engine.barrier_wait", wait)
    for s in analysis.supersteps:
        reg.observe("engine.superstep_imbalance", s.imbalance)
    reg.observe("engine.critical_path_len", len(analysis.critical_path))
    reg.observe(
        "engine.critical_path_barriers", len(analysis.critical_barriers())
    )


def analyze_trace(
    program: MachineProgram, trace: ExecutionTrace
) -> TraceAnalysis:
    """Compute the full runtime analysis of one execution.

    Observation only: reads the finished trace, writes ``engine.*``
    metrics into the active registry (if any), and never perturbs the
    pipeline -- results are bit-identical with analysis on or off.
    """
    makespan = trace.makespan
    per_pe = _walk_segments(program, trace)
    pes = []
    for pe, segments in enumerate(per_pe):
        busy = sum(s.span for s in segments if s.kind == "op")
        wait = sum(s.span for s in segments if s.kind == "wait")
        finish = trace.pe_finish[pe]
        pes.append(
            PEBreakdown(
                pe=pe,
                busy=busy,
                barrier_wait=wait,
                tail_idle=makespan - finish,
                finish=finish,
            )
        )
    barriers = _barrier_runtimes(program, trace, per_pe)
    supersteps = _supersteps(trace, per_pe, makespan)
    critical = _critical_path(program, trace, per_pe, barriers)
    analysis = TraceAnalysis(
        machine=trace.machine,
        makespan=makespan,
        pes=tuple(pes),
        barriers=tuple(barriers),
        supersteps=tuple(supersteps),
        critical_path=tuple(critical),
        segments=tuple(s for segments in per_pe for s in segments),
    )
    _record_metrics(analysis)
    return analysis
