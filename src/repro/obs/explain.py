"""Build the ``repro-sbm explain`` report.

Correlates a finished :class:`~repro.core.scheduler.ScheduleResult` with
the :class:`~repro.obs.provenance.ProvenanceRecorder` that watched it
being built: every barrier in the final schedule is attributed to the
concrete fuzzy producer/consumer edge whose failed timing proof forced
it (including the edges behind barriers that were merged away into it,
via ``Barrier.merged_from``), every node's processor assignment is
tagged with the rule that chose it, and the merge verdicts are
summarized.

Lives outside the :mod:`repro.obs` package root because it imports
``repro.core`` types; the rest of ``repro.obs`` stays stdlib-only so
the pipeline can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.core.scheduler import ScheduleResult
from repro.obs.provenance import BarrierDecision, ProvenanceRecorder

__all__ = ["BarrierAttribution", "ExplainReport", "explain_result"]


@dataclass(frozen=True)
class BarrierAttribution:
    """One final barrier and the insertion decisions that produced it."""

    barrier_id: int
    participants: tuple[int, ...]
    #: The surviving barrier's own insertion decision first, then the
    #: decisions of barriers merged away into it.  Empty only for
    #: barriers inserted outside the edge resolver (repair sweep).
    decisions: tuple[BarrierDecision, ...]
    merged_ids: tuple[int, ...]

    @property
    def attributed(self) -> bool:
        return bool(self.decisions)

    def as_dict(self) -> dict:
        return {
            "barrier_id": self.barrier_id,
            "participants": list(self.participants),
            "merged_ids": list(self.merged_ids),
            "attributed": self.attributed,
            "decisions": [d.as_dict() for d in self.decisions],
        }


@dataclass(frozen=True)
class ExplainReport:
    """Everything ``repro-sbm explain`` prints."""

    result: ScheduleResult
    recorder: ProvenanceRecorder
    barriers: tuple[BarrierAttribution, ...]

    def as_dict(self) -> dict:
        rec = self.recorder
        return {
            "summary": self.result.describe(),
            "assignments": [d.as_dict() for d in rec.assignments.values()],
            "barriers": [b.as_dict() for b in self.barriers],
            "merges": [d.as_dict() for d in rec.merges],
            "demotions": [d.as_dict() for d in rec.demotions],
            "kernels": kernels.kernels_info(),
        }

    def render(self) -> str:
        lines = [self.result.describe(), "", "assignments:"]
        for node in self.result.list_order:
            d = self.recorder.assignments.get(node)
            if d is None:  # pragma: no cover - recorder was not active
                lines.append(f"  {node} -> ?")
                continue
            detail = ", ".join(f"{k}={v}" for k, v in sorted(d.detail.items()))
            suffix = f" ({detail})" if detail else ""
            lines.append(f"  {d.node} -> PE{d.pe}  {d.rule}{suffix}")

        lines.append("")
        if not self.barriers:
            lines.append("barriers: none inserted")
        else:
            lines.append("barriers:")
            for attr in self.barriers:
                pes = ",".join(str(p) for p in attr.participants)
                lines.append(f"  b{attr.barrier_id} PEs {{{pes}}}:")
                if not attr.attributed:
                    lines.append(
                        "    inserted by the repair sweep (no edge decision"
                        " recorded)"
                    )
                for j, d in enumerate(attr.decisions):
                    via = (
                        f"forced by {d.producer} -> {d.consumer}"
                        if j == 0
                        else f"absorbed b{d.barrier_id}: forced by"
                        f" {d.producer} -> {d.consumer}"
                    )
                    note = " [path walk exploded]" if d.explosion else ""
                    lines.append(
                        f"    {via}: T_max(g)={d.t_max_g} >"
                        f" T_min(i-)={d.t_min_i}"
                        f" (slack {d.slack}, dom b{d.dominator}){note}"
                    )

        if self.recorder.demotions:
            lines.append("")
            lines.append("hybrid demotions (timing edges guarded at runtime):")
            for d in self.recorder.demotions:
                lines.append(
                    f"  {d.producer} -> {d.consumer}: margin "
                    f"{d.epsilon_edge:.3f} < budget {d.budget:g} "
                    f"(slack {d.slack}, t_max {d.t_max_producer})"
                )

        accepted = [m for m in self.recorder.merges if m.accepted]
        rejected = [m for m in self.recorder.merges if not m.accepted]
        lines.append("")
        lines.append(
            f"merges: {len(accepted)} accepted"
            f" ({sum(1 for m in accepted if m.trigger == 'insert')} at insert,"
            f" {sum(1 for m in accepted if m.trigger == 'finalize')} at"
            f" finalize), {len(rejected)} candidate pairs rejected"
            f" ({sum(1 for m in rejected if m.reason == 'hb-ordered')}"
            f" hb-ordered,"
            f" {sum(1 for m in rejected if m.reason == 'windows-disjoint')}"
            f" windows-disjoint)"
        )
        return "\n".join(lines)


def explain_result(
    result: ScheduleResult, recorder: ProvenanceRecorder
) -> ExplainReport:
    """Correlate a schedule with the decisions recorded while building it."""
    attributions = []
    for barrier in result.schedule.barriers():
        if barrier.is_initial:
            continue
        decisions = []
        own = recorder.barrier_decision(barrier.id)
        if own is not None:
            decisions.append(own)
        for vid in barrier.merged_from:
            victim = recorder.barrier_decision(vid)
            if victim is not None:
                decisions.append(victim)
        attributions.append(
            BarrierAttribution(
                barrier_id=barrier.id,
                participants=tuple(sorted(barrier.participants)),
                decisions=tuple(decisions),
                merged_ids=tuple(barrier.merged_from),
            )
        )
    return ExplainReport(result, recorder, tuple(attributions))
