"""Counters and histograms for the evaluation pipeline.

A :class:`MetricsRegistry` holds named monotonic **counters** (barriers
inserted, merge verdicts by kind, incremental fast-path vs scratch
rebuilds, path explosions, sweep-cache hits/misses, ...) and streaming
**histograms** (count/total/min/max summaries of ready-list sizes,
fire-cone sizes, engine release widths, ...).

The lifecycle mirrors :class:`repro.perf.timers.StageTimings`: a
subscriber installs a registry with :func:`collect_metrics` for a
dynamic extent; instrumentation points call the module-level
:func:`inc` / :func:`observe` helpers, which are no-ops without a
subscriber; and registries collected in the parallel driver's worker
processes are shipped back as plain dicts and folded into the parent
with :func:`add_to_current` / :meth:`MetricsRegistry.merge_from`.  The
merge is associative and commutative, so the parent's totals do not
depend on worker completion order.

Metric names are dotted lowercase paths (``merge.verdict.cached``,
``views.dag.evolved``); :mod:`docs/observability.md` tables every name
the pipeline emits.  Recording never influences results -- the same
bit-identical-digest contract as the span tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.obs.spans import DISABLED

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "collect_metrics",
    "current_registry",
    "inc",
    "observe",
    "add_to_current",
]


@dataclass(slots=True)
class HistogramStat:
    """Streaming summary of an observed distribution."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge_from(self, other: "HistogramStat") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = other.min if self.min is None else min(self.min, other.min)
        self.max = other.max if self.max is None else max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total, "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramStat":
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            min=data["min"],
            max=data["max"],
        )


class MetricsRegistry:
    """Named counters and histograms for one dynamic extent."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, HistogramStat] = {}

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        stat = self.histograms.get(name)
        if stat is None:
            stat = self.histograms[name] = HistogramStat()
        stat.observe(value)

    def counter(self, name: str) -> int:
        """Counter value (0 if never incremented)."""
        return self.counters.get(name, 0)

    def merge_from(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold another registry (or its :meth:`as_dict` form) into this
        one.  Associative and commutative."""
        if isinstance(other, Mapping):
            other = MetricsRegistry.from_dict(other)
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, stat in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramStat()
            mine.merge_from(stat)

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: stat.as_dict()
                for name, stat in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(data.get("counters", {}))
        for name, stat in data.get("histograms", {}).items():
            reg.histograms[name] = HistogramStat.from_dict(stat)
        return reg


_registry: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_metrics", default=None
)


def current_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` (always ``None`` when
    ``REPRO_OBS_DISABLE=1``)."""
    if DISABLED:
        return None
    return _registry.get()


@contextmanager
def collect_metrics() -> Iterator[MetricsRegistry]:
    """Install a fresh registry for the dynamic extent of the block
    (innermost-wins nesting, like ``collect_timings``)."""
    reg = MetricsRegistry()
    token = _registry.set(reg)
    try:
        yield reg
    finally:
        _registry.reset(token)


def inc(name: str, n: int = 1) -> None:
    """Bump a counter on the active registry (no-op without one)."""
    reg = current_registry()
    if reg is not None:
        reg.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry (no-op
    without one)."""
    reg = current_registry()
    if reg is not None:
        reg.observe(name, value)


def add_to_current(data: "MetricsRegistry | Mapping") -> None:
    """Fold a shipped registry into the active one, if any.

    The parallel corpus driver calls this in the parent with each worker
    chunk's metrics dict, exactly like ``timers.add_to_current``.
    """
    reg = current_registry()
    if reg is not None:
        reg.merge_from(data)
