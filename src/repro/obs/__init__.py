"""Observability for the scheduling pipeline: spans, metrics, provenance.

Three independent, contextvar-scoped collectors, all opt-in and
zero-cost when no subscriber is installed (and all hard-disabled by
``REPRO_OBS_DISABLE=1``):

* :mod:`repro.obs.spans` -- hierarchical wall-clock span tracing of the
  five pipeline stages and their hot inner operations; exported as
  JSONL or Perfetto-loadable Chrome trace JSON
  (:mod:`repro.obs.export`);
* :mod:`repro.obs.metrics` -- named counters and histograms, merged
  across the parallel driver's worker processes;
* :mod:`repro.obs.provenance` -- machine-readable reasons for every
  assignment, barrier insertion and merge verdict, surfaced by
  ``repro-sbm explain`` (:mod:`repro.obs.explain` builds the report;
  imported directly, not from this package root, because it depends on
  ``repro.core``).

:mod:`repro.obs.logging` holds the package's logger hierarchy.

Everything exported here is stdlib-only so any pipeline module may
import it without cycles; see docs/observability.md for the full tour.
"""

from repro.obs.metrics import (
    HistogramStat,
    MetricsRegistry,
    collect_metrics,
    current_registry,
    inc,
    observe,
)
from repro.obs.provenance import (
    AssignmentDecision,
    BarrierDecision,
    MergeDecision,
    ProvenanceRecorder,
    collect_provenance,
    current_recorder,
    record_assignment,
    record_barrier,
    record_merge,
)
from repro.obs.spans import (
    Span,
    SpanTracer,
    TraceEvent,
    collect_trace,
    current_tracer,
    event,
    span,
)

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "collect_metrics",
    "current_registry",
    "inc",
    "observe",
    "AssignmentDecision",
    "BarrierDecision",
    "MergeDecision",
    "ProvenanceRecorder",
    "collect_provenance",
    "current_recorder",
    "record_assignment",
    "record_barrier",
    "record_merge",
    "Span",
    "SpanTracer",
    "TraceEvent",
    "collect_trace",
    "current_tracer",
    "event",
    "span",
]
