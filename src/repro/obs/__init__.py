"""Observability for the scheduling pipeline: spans, metrics, provenance.

Independent, contextvar-scoped collectors, all opt-in and
zero-cost when no subscriber is installed (and all hard-disabled by
``REPRO_OBS_DISABLE=1``):

* :mod:`repro.obs.spans` -- hierarchical wall-clock span tracing of the
  five pipeline stages and their hot inner operations; exported as
  JSONL or Perfetto-loadable Chrome trace JSON
  (:mod:`repro.obs.export`);
* :mod:`repro.obs.metrics` -- named counters and histograms, merged
  across the parallel driver's worker processes;
* :mod:`repro.obs.prof` -- continuous profiling and resource
  accounting: per-kernel wall/CPU timings at the dispatch boundary,
  peak-RSS/arena/tensor byte accounts, GC pauses, and folded-stack
  (flamegraph) export from a span trace;
* :mod:`repro.obs.progress` -- live heartbeat stream (cases/s, ETA)
  for long corpus runs, rendered as a TTY status line or JSONL;
* :mod:`repro.obs.provenance` -- machine-readable reasons for every
  assignment, barrier insertion and merge verdict, surfaced by
  ``repro-sbm explain`` (:mod:`repro.obs.explain` builds the report;
  imported directly, not from this package root, because it depends on
  ``repro.core``).

:mod:`repro.obs.logging` holds the package's logger hierarchy.

Everything exported here is stdlib-only so any pipeline module may
import it without cycles; see docs/observability.md for the full tour.
"""

from repro.obs.metrics import (
    HistogramStat,
    MetricsRegistry,
    collect_metrics,
    current_registry,
    inc,
    observe,
)
from repro.obs.prof import (
    KernelStat,
    Profiler,
    collect_profile,
    current_profiler,
    folded_stacks,
    track_gc,
    write_folded,
)
from repro.obs.progress import (
    JSONLSink,
    ProgressMeter,
    TTYStatusSink,
    collect_progress,
    current_meter,
)
from repro.obs.provenance import (
    AssignmentDecision,
    BarrierDecision,
    MergeDecision,
    ProvenanceRecorder,
    collect_provenance,
    current_recorder,
    record_assignment,
    record_barrier,
    record_merge,
)
from repro.obs.spans import (
    Span,
    SpanTracer,
    TraceEvent,
    collect_trace,
    current_tracer,
    event,
    span,
)

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "collect_metrics",
    "current_registry",
    "inc",
    "observe",
    "KernelStat",
    "Profiler",
    "collect_profile",
    "current_profiler",
    "folded_stacks",
    "track_gc",
    "write_folded",
    "JSONLSink",
    "ProgressMeter",
    "TTYStatusSink",
    "collect_progress",
    "current_meter",
    "AssignmentDecision",
    "BarrierDecision",
    "MergeDecision",
    "ProvenanceRecorder",
    "collect_provenance",
    "current_recorder",
    "record_assignment",
    "record_barrier",
    "record_merge",
    "Span",
    "SpanTracer",
    "TraceEvent",
    "collect_trace",
    "current_tracer",
    "event",
    "span",
]
