"""Trace export: JSONL and Chrome Trace Event Format.

Two serializations of a :class:`~repro.obs.spans.SpanTracer`:

* **JSONL** (``.jsonl``): one self-describing record per line (spans
  first, then instant events, each tagged with ``"kind"``) -- the
  machine-diffable form for scripts and tests.
* **Chrome Trace Event Format** (any other suffix): a JSON object with
  a ``traceEvents`` list of complete (``ph: "X"``) and instant
  (``ph: "i"``) events, loadable directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Span nesting is
  reconstructed by the viewer from the ``ts``/``dur`` containment per
  ``pid``/``tid`` lane; worker-process spans keep their real pid and
  appear as separate lanes.

Timestamps are microseconds, the native unit of the trace-event format.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.spans import SpanTracer

__all__ = [
    "trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]


def trace_events(tracer: SpanTracer) -> list[dict]:
    """The tracer's contents as Chrome trace events, sorted by timestamp."""
    events: list[dict] = []
    for s in tracer.spans:
        args = dict(s.args)
        args["span_id"] = s.id
        if s.parent is not None:
            args["parent_id"] = s.parent
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": s.ts_us,
                "dur": s.dur_us,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    for e in tracer.events:
        events.append(
            {
                "name": e.name,
                "ph": "i",
                "ts": e.ts_us,
                "pid": e.pid,
                "tid": e.tid,
                "s": "t",  # thread-scoped instant
                "args": dict(e.args),
            }
        )
    events.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["tid"]))
    return events


def to_chrome_trace(tracer: SpanTracer) -> dict:
    """The full Chrome-trace JSON object (object form, so viewers accept
    trailing metadata)."""
    return {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(tracer: SpanTracer, fp: IO[str]) -> None:
    json.dump(to_chrome_trace(tracer), fp, indent=None, separators=(",", ":"))
    fp.write("\n")


def write_jsonl(tracer: SpanTracer, fp: IO[str]) -> None:
    """One JSON record per line: spans in completion order, then instant
    events (each record carries a ``kind`` discriminator)."""
    for s in tracer.spans:
        fp.write(json.dumps(s.as_dict(), separators=(",", ":")) + "\n")
    for e in tracer.events:
        fp.write(json.dumps(e.as_dict(), separators=(",", ":")) + "\n")


def write_trace(tracer: SpanTracer, path: str) -> None:
    """Write ``path`` in the format its suffix selects: ``.jsonl`` ->
    JSONL, anything else -> Chrome trace JSON."""
    with open(path, "w", encoding="utf-8") as fp:
        if path.endswith(".jsonl"):
            write_jsonl(tracer, fp)
        else:
            write_chrome_trace(tracer, fp)
