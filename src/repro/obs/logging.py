"""The ``repro`` logger hierarchy.

All package diagnostics flow through loggers under the ``repro`` root
(``repro.cli``, ``repro.perf``, ...), obtained with :func:`get_logger`.
The CLI maps its verbosity flags onto :func:`configure`:

* ``-q/--quiet``   -> ``ERROR``
* (default)        -> ``WARNING``
* ``-v``           -> ``INFO``
* ``-vv``          -> ``DEBUG``

Library use stays silent by default: until :func:`configure` installs a
handler, records propagate to the root logger and Python's default
last-resort handling applies (warnings and above to stderr).  The
installed handler resolves ``sys.stderr`` *at emit time* rather than
capturing the stream at configuration time, so stderr redirection --
including pytest's capture -- keeps working.

The one-line CLI error contract is unaffected: ``repro-sbm: error: ...``
diagnostics on bad input are printed by the CLI itself, not logged, and
exit codes do not depend on logging configuration.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure", "level_for_verbosity"]

ROOT = "repro"


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is at emit time."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` root (``get_logger("cli")`` ->
    ``repro.cli``)."""
    return logging.getLogger(f"{ROOT}.{name}" if name else ROOT)


def level_for_verbosity(verbosity: int) -> int:
    """Map the CLI's ``-q``/``-v`` count to a logging level."""
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0) -> None:
    """Install (once) the stderr handler on the ``repro`` root and set
    its level from ``verbosity`` (-1 quiet, 0 default, 1 ``-v``, 2+
    ``-vv``).  Idempotent; repeated calls only adjust the level."""
    root = logging.getLogger(ROOT)
    if not any(isinstance(h, _DynamicStderrHandler) for h in root.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(
            logging.Formatter("%(name)s: %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
        root.propagate = False
    root.setLevel(level_for_verbosity(verbosity))
