"""Live progress heartbeats for long corpus runs.

A :class:`ProgressMeter` counts completed cases and emits throttled
heartbeat records -- ``{"event": "progress", "done": ..., "total": ...,
"cases_per_s": ..., "eta_s": ...}`` -- to whatever sink installed it.
Two sinks ship with the CLI's ``perf --live`` flag:

* :class:`TTYStatusSink` rewrites a single status line on a terminal
  (``\\r``-based, no curses);
* :class:`JSONLSink` appends one JSON object per heartbeat -- the
  machine-readable stream a service layer can forward as SSE, and the
  fallback when stderr is not a TTY.

The lifecycle mirrors the other observability collectors: a subscriber
installs a meter with :func:`collect_progress` for a dynamic extent;
the corpus drivers call the module-level :func:`advance` /
:func:`set_total` helpers, which are no-ops without a subscriber (and
always under ``REPRO_OBS_DISABLE=1``); heartbeats are throttled to one
per :data:`HEARTBEAT_INTERVAL_S` so tight serial loops do not spend
their time formatting status lines.  Progress is observation only --
the drivers advance the meter strictly *after* a case's results are
recorded, so results are bit-identical with or without a meter.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, TextIO

from repro.obs.spans import DISABLED

__all__ = [
    "HEARTBEAT_INTERVAL_S",
    "JSONLSink",
    "ProgressMeter",
    "TTYStatusSink",
    "advance",
    "collect_progress",
    "current_meter",
    "format_status",
    "set_total",
]

#: Minimum seconds between emitted heartbeats (the final one always fires).
HEARTBEAT_INTERVAL_S = 0.5


def format_status(beat: dict) -> str:
    """One human status line for a heartbeat record."""
    done = beat.get("done", 0)
    total = beat.get("total")
    rate = beat.get("cases_per_s") or 0.0
    eta = beat.get("eta_s")
    text = f"{done}/{total} cases" if total else f"{done} cases"
    text += f"  {rate:.1f}/s"
    if eta is not None:
        minutes, seconds = divmod(int(eta + 0.5), 60)
        text += f"  eta {minutes:d}:{seconds:02d}"
    return text


class ProgressMeter:
    """Counts completed cases; emits throttled heartbeats to a sink."""

    def __init__(
        self,
        emit: Callable[[dict], None],
        interval_s: float = HEARTBEAT_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._emit = emit
        self._interval_s = interval_s
        self._clock = clock
        self._t0 = clock()
        self._last_emit = float("-inf")
        self.done = 0
        self.total: int | None = None

    def set_total(self, total: int) -> None:
        self.total = total

    def advance(self, n: int = 1) -> None:
        self.done += n
        now = self._clock()
        if now - self._last_emit >= self._interval_s:
            self._last_emit = now
            self._emit(self.heartbeat(now))

    def heartbeat(self, now: float | None = None, final: bool = False) -> dict:
        now = self._clock() if now is None else now
        elapsed = max(now - self._t0, 1e-9)
        rate = self.done / elapsed
        eta = None
        if self.total is not None and rate > 0 and self.done <= self.total:
            eta = (self.total - self.done) / rate
        return {
            "event": "progress",
            "done": self.done,
            "total": self.total,
            "elapsed_s": elapsed,
            "cases_per_s": rate,
            "eta_s": eta,
            "final": final,
        }

    def finish(self) -> None:
        """Emit the final (unthrottled) heartbeat."""
        self._emit(self.heartbeat(final=True))


class TTYStatusSink:
    """Rewrites one ``\\r``-terminated status line on a terminal."""

    def __init__(self, stream: TextIO, prefix: str = "perf") -> None:
        self._stream = stream
        self._prefix = prefix
        self._width = 0

    def emit(self, beat: dict) -> None:
        line = f"{self._prefix}: {format_status(beat)}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()

    def close(self) -> None:
        """End the status line so following output starts clean."""
        if self._width:
            self._stream.write("\n")
            self._stream.flush()
            self._width = 0


class JSONLSink:
    """Appends one JSON object per heartbeat to a text stream."""

    def __init__(self, stream: TextIO, owns_stream: bool = False) -> None:
        self._stream = stream
        self._owns_stream = owns_stream

    def emit(self, beat: dict) -> None:
        self._stream.write(json.dumps(beat, sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


_meter: ContextVar[ProgressMeter | None] = ContextVar(
    "repro_obs_progress", default=None
)


def current_meter() -> ProgressMeter | None:
    """The active meter, or ``None`` (always ``None`` when
    ``REPRO_OBS_DISABLE=1``)."""
    if DISABLED:
        return None
    return _meter.get()


@contextmanager
def collect_progress(meter: ProgressMeter) -> Iterator[ProgressMeter]:
    """Install a meter for the dynamic extent of the block."""
    token = _meter.set(meter)
    try:
        yield meter
    finally:
        _meter.reset(token)


def set_total(total: int) -> None:
    """Announce the expected case count (no-op without a meter)."""
    meter = current_meter()
    if meter is not None:
        meter.set_total(total)


def advance(n: int = 1) -> None:
    """Credit ``n`` completed cases to the active meter (no-op without
    one).  Call strictly *after* a case's results are recorded."""
    meter = current_meter()
    if meter is not None:
        meter.advance(n)
