"""Decision provenance: *why* the scheduler did what it did.

The paper's pipeline makes three kinds of discrete decisions that the
result alone does not explain:

* **assignment** -- which processor a list node landed on, and by which
  rule (section 4.3 step [1] serialization slot, step [2] earliest
  start, or an ablation policy);
* **barrier insertion** -- which fuzzy producer/consumer edge forced a
  barrier, i.e. the step [2]-[5] timing proof that *failed*: the
  consumer's earliest start ``T_min(i-)`` fell before the producer's
  latest finish ``T_max(g)`` (negative slack) relative to their common
  dominating barrier;
* **merging** -- which barrier pairs the SBM fused (H-unordered with
  overlapping fire windows) and which candidate pairs were rejected,
  with the reason.

A :class:`ProvenanceRecorder` is installed with
:func:`collect_provenance` (contextvar-scoped and zero-cost when
absent, like the span tracer); the scheduler, inserter and merger call
the module-level ``record_*`` helpers.  The ``repro-sbm explain``
subcommand correlates the recorded decisions with the finished schedule
(see :mod:`repro.obs.explain`).  Recording never influences results.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.spans import DISABLED

__all__ = [
    "AssignmentDecision",
    "BarrierDecision",
    "DemotionDecision",
    "MergeDecision",
    "ProvenanceRecorder",
    "collect_provenance",
    "current_recorder",
    "record_assignment",
    "record_barrier",
    "record_demotion",
    "record_merge",
]


@dataclass(frozen=True, slots=True)
class AssignmentDecision:
    """One node -> processor choice and the rule that made it."""

    node: object  # NodeId; kept opaque so this module stays stdlib-only
    pe: int
    #: ``serialization`` | ``earliest-start`` | ``slack-serialization`` |
    #: ``roundrobin`` | ``lookahead-divert``
    rule: str
    #: Rule-specific context: candidate PEs, start estimates, tie sets, ...
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "node": str(self.node),
            "pe": self.pe,
            "rule": self.rule,
            "detail": self.detail,
        }


@dataclass(frozen=True, slots=True)
class BarrierDecision:
    """One inserted barrier and the failed timing proof that forced it."""

    barrier_id: int
    producer: object
    consumer: object
    dominator: int
    #: Latest producer finish relative to the dominator (step [3]).
    t_max_g: int
    #: Earliest consumer start relative to the dominator (step [4]).
    t_min_i: int
    #: ``t_min_i - t_max_g``; negative by construction (the proof failed).
    slack: int
    #: Processors the barrier spanned at insertion time.
    participants: tuple[int, ...]
    #: Barriers absorbed by per-insertion SBM merging.
    merges: int = 0
    #: The optimal-mode path walk exploded and fell back conservative.
    explosion: bool = False

    def as_dict(self) -> dict:
        return {
            "barrier_id": self.barrier_id,
            "producer": str(self.producer),
            "consumer": str(self.consumer),
            "dominator": self.dominator,
            "t_max_g": self.t_max_g,
            "t_min_i": self.t_min_i,
            "slack": self.slack,
            "participants": list(self.participants),
            "merges": self.merges,
            "explosion": self.explosion,
        }


@dataclass(frozen=True, slots=True)
class DemotionDecision:
    """One timing-proved edge the hybrid scheduler demoted to a dynamic
    data guard, and the margin arithmetic that condemned it."""

    producer: object
    consumer: object
    #: ``timing`` or ``timing-optimal`` (the static proof that was kept
    #: for ordering but judged too fragile to trust under faults).
    kind: str
    #: Static slack of the proof, ``T_min(i-) - T_max(g)``.
    slack: int
    #: Producer-side worst-case time the slack is measured against.
    t_max_producer: int
    #: ``slack / t_max_producer`` -- the edge's proven overrun tolerance.
    epsilon_edge: float
    #: The ε budget the edge failed to meet (``epsilon_edge < budget``).
    budget: float

    def as_dict(self) -> dict:
        return {
            "producer": str(self.producer),
            "consumer": str(self.consumer),
            "kind": self.kind,
            "slack": self.slack,
            "t_max_producer": self.t_max_producer,
            "epsilon_edge": self.epsilon_edge,
            "budget": self.budget,
        }


@dataclass(frozen=True, slots=True)
class MergeDecision:
    """One examined merge pair: fused, or rejected with the reason."""

    #: ``insert`` (per-insertion merging) or ``finalize`` (global sweep).
    trigger: str
    survivor: int
    other: int
    accepted: bool
    #: ``unordered-overlap`` (accepted) | ``hb-ordered`` |
    #: ``windows-disjoint`` (rejected).
    reason: str

    def as_dict(self) -> dict:
        return {
            "trigger": self.trigger,
            "survivor": self.survivor,
            "other": self.other,
            "accepted": self.accepted,
            "reason": self.reason,
        }


class ProvenanceRecorder:
    """Accumulates scheduler decisions for one dynamic extent."""

    def __init__(self) -> None:
        #: Last decision per node wins (lookahead records its inner
        #: step-[2] choice, then overrides it when it diverts).
        self.assignments: dict[object, AssignmentDecision] = {}
        self.barriers: list[BarrierDecision] = []
        self.merges: list[MergeDecision] = []
        self.demotions: list[DemotionDecision] = []

    def record_assignment(self, decision: AssignmentDecision) -> None:
        self.assignments[decision.node] = decision

    def record_barrier(self, decision: BarrierDecision) -> None:
        self.barriers.append(decision)

    def record_merge(self, decision: MergeDecision) -> None:
        self.merges.append(decision)

    def record_demotion(self, decision: DemotionDecision) -> None:
        self.demotions.append(decision)

    def barrier_decision(self, barrier_id: int) -> BarrierDecision | None:
        for d in self.barriers:
            if d.barrier_id == barrier_id:
                return d
        return None

    def as_dict(self) -> dict:
        return {
            "assignments": [d.as_dict() for d in self.assignments.values()],
            "barriers": [d.as_dict() for d in self.barriers],
            "merges": [d.as_dict() for d in self.merges],
            "demotions": [d.as_dict() for d in self.demotions],
        }


_recorder: ContextVar[ProvenanceRecorder | None] = ContextVar(
    "repro_obs_provenance", default=None
)


def current_recorder() -> ProvenanceRecorder | None:
    """The active recorder, or ``None`` (always ``None`` when
    ``REPRO_OBS_DISABLE=1``)."""
    if DISABLED:
        return None
    return _recorder.get()


@contextmanager
def collect_provenance() -> Iterator[ProvenanceRecorder]:
    """Install a fresh recorder for the dynamic extent of the block."""
    rec = ProvenanceRecorder()
    token = _recorder.set(rec)
    try:
        yield rec
    finally:
        _recorder.reset(token)


def record_assignment(node, pe: int, rule: str, **detail) -> None:
    rec = current_recorder()
    if rec is not None:
        rec.record_assignment(AssignmentDecision(node, pe, rule, detail))


def record_barrier(decision: BarrierDecision) -> None:
    rec = current_recorder()
    if rec is not None:
        rec.record_barrier(decision)


def record_merge(
    trigger: str, survivor: int, other: int, accepted: bool, reason: str
) -> None:
    rec = current_recorder()
    if rec is not None:
        rec.record_merge(MergeDecision(trigger, survivor, other, accepted, reason))


def record_demotion(decision: DemotionDecision) -> None:
    rec = current_recorder()
    if rec is not None:
        rec.record_demotion(decision)
