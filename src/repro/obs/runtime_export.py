"""Machine-timeline export: per-PE Perfetto tracks + barrier flow events.

:mod:`repro.obs.export` serializes the *compiler's* span tree; this
module serializes one *simulated execution* in the same Chrome Trace
Event Format, so both sides of the system land in the same Perfetto
view:

* one synthetic process (``pid``) named ``machine:<sbm|dbm>``, with one
  thread lane per processor (``tid = PE index``, named ``PE<n>``);
* every instruction execution as a complete (``ph: "X"``) slice on its
  PE's lane, carrying the node id and sampled duration in ``args``;
* every barrier wait as a ``wait(bN)`` slice from the PE's arrival to
  the release;
* every barrier release as a **flow** (``ph: "s"`` / ``ph: "f"``) from
  the *last-arriving* participant -- the processor that actually
  released the barrier -- to each released participant, so Perfetto
  draws the release arrows across lanes.

One simulated time unit is rendered as one microsecond (the trace
format's native unit); timelines are exact, only the unit label is
borrowed.  A machine timeline can be written standalone
(:func:`write_machine_trace`) or merged into a compiler span trace by
concatenating the event lists -- pids never collide because the
machine pid is derived from the real pid space's complement.
"""

from __future__ import annotations

import json
from typing import IO

from repro.machine.program import MachineProgram
from repro.machine.trace import ExecutionTrace
from repro.obs.runtime import TraceAnalysis, analyze_trace

__all__ = [
    "MACHINE_PID",
    "machine_trace_events",
    "to_machine_chrome_trace",
    "write_machine_trace",
]

#: Synthetic pid for the machine timeline; real pids are positive, so 0
#: keeps the machine lanes grouped and sorted first in viewers.
MACHINE_PID = 0


def machine_trace_events(
    program: MachineProgram,
    trace: ExecutionTrace,
    analysis: TraceAnalysis | None = None,
) -> list[dict]:
    """One execution as Chrome trace events (sorted by timestamp).

    ``analysis`` may be passed to reuse an existing
    :class:`~repro.obs.runtime.TraceAnalysis`; otherwise one is computed
    (observation only, like everything in ``repro.obs``).
    """
    if analysis is None:
        analysis = analyze_trace(program, trace)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": MACHINE_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": f"machine:{trace.machine}"},
        }
    ]
    for pe in range(program.n_pes):
        util = analysis.breakdown_of(pe).utilization(analysis.makespan)
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": MACHINE_PID,
                "tid": pe,
                "ts": 0,
                "args": {"name": f"PE{pe} ({util:.0%} busy)"},
            }
        )
    for seg in analysis.segments:
        if seg.kind == "op":
            events.append(
                {
                    "name": str(seg.node),
                    "cat": "op",
                    "ph": "X",
                    "ts": seg.start,
                    "dur": seg.span,
                    "pid": MACHINE_PID,
                    "tid": seg.pe,
                    "args": {
                        "node": str(seg.node),
                        "duration": seg.span,
                    },
                }
            )
        else:
            events.append(
                {
                    "name": f"wait(b{seg.barrier})",
                    "cat": "wait",
                    "ph": "X",
                    "ts": seg.start,
                    "dur": seg.span,
                    "pid": MACHINE_PID,
                    "tid": seg.pe,
                    "args": {"barrier": seg.barrier, "wait": seg.span},
                }
            )
    critical = set(analysis.critical_barriers())
    for b in analysis.barriers:
        origin = b.last_arriver
        if origin is None:
            continue
        for pe in sorted(b.arrivals):
            flow_id = b.barrier_id * program.n_pes + pe + 1
            common = {
                "name": f"b{b.barrier_id}",
                "cat": "barrier",
                "id": flow_id,
                "pid": MACHINE_PID,
                "args": {
                    "barrier": b.barrier_id,
                    "skew": b.skew,
                    "critical": b.barrier_id in critical,
                },
            }
            events.append(
                {**common, "ph": "s", "ts": b.arrivals[origin], "tid": origin}
            )
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": b.fire, "tid": pe}
            )
    events.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["ph"]))
    return events


def to_machine_chrome_trace(
    program: MachineProgram,
    trace: ExecutionTrace,
    analysis: TraceAnalysis | None = None,
) -> dict:
    """The full Chrome-trace JSON object for one execution."""
    return {
        "traceEvents": machine_trace_events(program, trace, analysis),
        "displayTimeUnit": "ms",
        "otherData": {
            "machine": trace.machine,
            "makespan": trace.makespan,
            "unit": "1 simulated time unit = 1us",
        },
    }


def write_machine_trace(
    program: MachineProgram,
    trace: ExecutionTrace,
    path_or_fp: str | IO[str],
    analysis: TraceAnalysis | None = None,
) -> None:
    """Write the machine timeline as Perfetto-loadable Chrome trace JSON."""
    payload = to_machine_chrome_trace(program, trace, analysis)
    if isinstance(path_or_fp, str):
        with open(path_or_fp, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=None, separators=(",", ":"))
            fp.write("\n")
    else:
        json.dump(payload, path_or_fp, indent=None, separators=(",", ":"))
        path_or_fp.write("\n")
