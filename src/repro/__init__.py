"""repro: Static Scheduling for Barrier MIMD Architectures (1990), rebuilt.

A complete, tested reimplementation of Zaafrani, Dietz & O'Keefe,
"Static Scheduling for Barrier MIMD Architectures" (Purdue TR-EE 90-10 /
ICPP 1990): the synthetic-benchmark compiler front end, the list
scheduler with conservative and "optimal" barrier insertion and SBM
barrier merging, cycle-accurate SBM/DBM/VLIW/conventional-MIMD execution
models, and the paper's full evaluation harness.

Quickstart::

    from repro import (GeneratorConfig, SchedulerConfig, compile_source,
                       generate_block, schedule_dag, fractions_of)

    block = generate_block(GeneratorConfig(n_statements=30, n_variables=8), 42)
    dag = compile_source(block.source())
    result = schedule_dag(dag, SchedulerConfig(n_pes=8))
    print(result.describe())
    print(fractions_of(result).render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.timing import Interval, ZERO
from repro.ir import (
    BasicBlock,
    DEFAULT_TIMING,
    InstructionDAG,
    Opcode,
    TimingModel,
    TupleProgram,
    compile_block,
    compile_source,
    generate_tuples,
    interpret,
    optimize,
    parse_block,
)
from repro.synth import BenchmarkCase, GeneratorConfig, generate_block, generate_corpus
from repro.core import (
    Schedule,
    ScheduleResult,
    SchedulerConfig,
    SyncCounts,
    schedule_dag,
)
from repro.barriers import Barrier, BarrierDag, BarrierMask, DominatorTree
from repro.machine import (
    DBMSimulator,
    ExecutionTrace,
    MachineProgram,
    SBMSimulator,
    UniformSampler,
    VLIWSchedule,
    simulate_conventional_mimd,
    simulate_dbm,
    simulate_sbm,
    vliw_schedule,
)
from repro.metrics import SyncFractions, aggregate_results, fractions_of
from repro.analysis import analyze_schedule
from repro.io import load_program, program_from_json, program_to_json, save_program
from repro.viz import render_barrier_dag, render_embedding, render_gantt

__version__ = "1.0.0"

__all__ = [
    "Interval",
    "ZERO",
    "BasicBlock",
    "DEFAULT_TIMING",
    "InstructionDAG",
    "Opcode",
    "TimingModel",
    "TupleProgram",
    "compile_block",
    "compile_source",
    "generate_tuples",
    "interpret",
    "optimize",
    "parse_block",
    "BenchmarkCase",
    "GeneratorConfig",
    "generate_block",
    "generate_corpus",
    "Schedule",
    "ScheduleResult",
    "SchedulerConfig",
    "SyncCounts",
    "schedule_dag",
    "Barrier",
    "BarrierDag",
    "BarrierMask",
    "DominatorTree",
    "DBMSimulator",
    "ExecutionTrace",
    "MachineProgram",
    "SBMSimulator",
    "UniformSampler",
    "VLIWSchedule",
    "simulate_conventional_mimd",
    "simulate_dbm",
    "simulate_sbm",
    "vliw_schedule",
    "SyncFractions",
    "aggregate_results",
    "fractions_of",
    "render_barrier_dag",
    "render_embedding",
    "render_gantt",
    "analyze_schedule",
    "load_program",
    "program_from_json",
    "program_to_json",
    "save_program",
    "__version__",
]
