"""Vectorized longest-path relaxation over the barrier dag.

The k-longest-paths machinery (:mod:`repro.barriers.paths`) and the
dag's ``_longest`` query are single-source DP sweeps in topological
order.  These kernels run the same DP as a *level-batched* scatter-max:
edges are grouped by the dependency level of their target (1 + the
longest edge-count path into it), every level's relaxations are
independent, and one ``np.maximum.at`` per level replaces the python
inner loop.

Unreachable nodes carry a sentinel of ``-2**62``; accumulated edge
weights are bounded far below that magnitude, so a value is
non-negative exactly when the python DP would have produced one
(weights are non-negative) -- the window restrictions of the python
sweeps are therefore equivalence-preserving, not result-changing.

The per-dag edge tables are built once and cached on the dag
(``dag._kern_cache``); evolved dags start with a cold cache.
"""

from __future__ import annotations

from repro.kernels import numpy as _numpy

__all__ = ["completion_bounds", "edge_tables", "longest", "longest_min_forced"]

#: Far below any real path length, far above int64 underflow even after
#: accumulating every edge weight in a corpus-scale dag.
_NEG = -(1 << 62)


class _EdgeTables:
    """Edge arrays + level grouping for one dag (immutable once built)."""

    __slots__ = (
        "n",
        "src",
        "dst",
        "wlo",
        "whi",
        "level",
        "fwd_order",
        "fwd_starts",
        "rev_order",
        "rev_starts",
        "n_levels",
        "edge_pos",
    )

    def __init__(self, dag) -> None:
        np = _numpy()
        index = dag._order_index
        n = len(dag._topo)
        pairs = list(dag._weight.items())
        src = np.fromiter(
            (index[u] for (u, v), _ in pairs), dtype=np.int64, count=len(pairs)
        )
        dst = np.fromiter(
            (index[v] for (u, v), _ in pairs), dtype=np.int64, count=len(pairs)
        )
        wlo = np.fromiter((w.lo for _, w in pairs), dtype=np.int64, count=len(pairs))
        whi = np.fromiter((w.hi for _, w in pairs), dtype=np.int64, count=len(pairs))

        # Dependency levels: level[i] = longest edge-count path into i.
        # Edges sorted by target position relax in dependency order
        # (topo guarantees src position < dst position).
        level = np.zeros(n, dtype=np.int64)
        by_dst = np.argsort(dst, kind="stable")
        bounds = np.searchsorted(dst[by_dst], np.arange(n + 1))
        for i in range(n):
            lo, hi = bounds[i], bounds[i + 1]
            if lo != hi:
                level[i] = int(level[src[by_dst[lo:hi]]].max()) + 1

        n_levels = int(level.max()) + 1 if n else 1
        fwd_order = np.argsort(level[dst], kind="stable")
        fwd_starts = np.searchsorted(
            level[dst][fwd_order], np.arange(n_levels + 1)
        )
        rev_order = np.argsort(level[src], kind="stable")
        rev_starts = np.searchsorted(
            level[src][rev_order], np.arange(n_levels + 1)
        )

        self.n = n
        self.src, self.dst, self.wlo, self.whi = src, dst, wlo, whi
        self.level = level
        self.fwd_order, self.fwd_starts = fwd_order, fwd_starts
        self.rev_order, self.rev_starts = rev_order, rev_starts
        self.n_levels = n_levels
        self.edge_pos = {uv: k for k, (uv, _) in enumerate(pairs)}


def edge_tables(dag) -> _EdgeTables:
    tables = dag._kern_cache
    if tables is None:
        tables = dag._kern_cache = _EdgeTables(dag)
    return tables


def _forward(dag, u, v, weights):
    """Longest ``u -> v`` distance under per-edge ``weights`` (int64
    array), or ``None`` when ``v`` is unreachable from ``u``."""
    np = _numpy()
    t = edge_tables(dag)
    iu, iv = dag._order_index[u], dag._order_index[v]
    best = np.full(t.n, _NEG, dtype=np.int64)
    best[iu] = 0
    lv_u, lv_v = int(t.level[iu]), int(t.level[iv])
    # Only levels in (level(u), level(v)] can carry value from u to v.
    for lv in range(lv_u + 1, lv_v + 1):
        e = t.fwd_order[t.fwd_starts[lv] : t.fwd_starts[lv + 1]]
        if e.size:
            np.maximum.at(best, t.dst[e], best[t.src[e]] + weights[e])
    val = int(best[iv])
    return val if val >= 0 else None


def longest(dag, u: int, v: int, use_max: bool) -> int | None:
    """Vectorized twin of ``BarrierDag._longest``."""
    t = edge_tables(dag)
    return _forward(dag, u, v, t.whi if use_max else t.wlo)


def longest_min_forced(dag, u: int, w: int, forced_edges) -> int | None:
    """Vectorized twin of ``longest_min_path_with_forced_max``'s DP:
    min weights everywhere except the forced edges, which take max."""
    t = edge_tables(dag)
    weights = t.wlo
    patched = None
    for edge in forced_edges:
        k = t.edge_pos.get(edge)
        if k is not None:
            if patched is None:
                patched = weights = t.wlo.copy()
            weights[k] = t.whi[k]
    return _forward(dag, u, w, weights)


def completion_bounds(dag, u: int, v: int) -> dict[int, int]:
    """Vectorized twin of ``repro.barriers.paths._completion_bounds``:
    max-weight remaining distance to ``v`` for every barrier reachable
    from ``u`` (inclusive) that can still reach ``v``."""
    np = _numpy()
    t = edge_tables(dag)
    order, index = dag._topo, dag._order_index
    iu, iv = index[u], index[v]
    rbest = np.full(t.n, _NEG, dtype=np.int64)
    rbest[iv] = 0
    lv_u, lv_v = int(t.level[iu]), int(t.level[iv])
    # Sources at levels in [level(u), level(v)) relax in decreasing
    # level order; same-level nodes share no edges.
    for lv in range(lv_v - 1, lv_u - 1, -1):
        e = t.rev_order[t.rev_starts[lv] : t.rev_starts[lv + 1]]
        if e.size:
            np.maximum.at(rbest, t.src[e], rbest[t.dst[e]] + t.whi[e])

    # Keys: v itself, u, and u's strict descendants up to v.  For a
    # u-reachable node every intermediate on any path to v is also
    # u-reachable, so the unrestricted DP equals the python sweep's
    # window-restricted one on exactly these keys.
    bound = {v: 0}
    if u == v:
        return bound
    bits = dag._descendant_bits()[iu] & ((1 << iv) - 1) | (1 << iu)
    while bits:
        lowbit = bits & -bits
        k = lowbit.bit_length() - 1
        bits ^= lowbit
        val = int(rbest[k])
        if val >= 0:
            bound[order[k]] = val
    return bound
