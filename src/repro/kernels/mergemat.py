"""Matrix formulation of the ``merge_all_overlapping`` verdict scan.

One round of the global merge sweep asks: in the id-sorted upper
triangle of barrier pairs, what is the *first* pair that is H-unordered
and whose fire windows overlap?  The python worklist answers with a
nested scan plus verdict caches; this kernel recomputes the whole
round as three boolean matrices:

* ``ordered``  -- H-comparability, scattered from the happens-before
  descendant sets and symmetrized;
* ``overlap``  -- closed-interval fire-window intersection,
  ``lo_a <= hi_b  and  lo_b <= hi_a``, via two broadcasts;
* candidates   -- ``overlap & ~ordered`` restricted to the strict
  upper triangle.

The first set bit of the candidate matrix in row-major order is
exactly the pair the python scan would return: a cached "ordered"
verdict is permanent and a cached "disjoint" verdict holds while both
fire windows do, so skipping caches and recomputing verdicts reach the
same conclusions pair for pair.
"""

from __future__ import annotations

from repro.kernels import numpy as _numpy

__all__ = ["first_candidate"]


def first_candidate(
    ids: list[int],
    lo: list[int],
    hi: list[int],
    desc: dict[int, frozenset[int]],
) -> tuple[int, int] | None:
    """Positions ``(a_idx, b_idx)`` of the round's first mergeable pair.

    ``ids`` are the id-sorted barrier ids of the round, ``lo``/``hi``
    their fire windows, ``desc`` the happens-before descendant sets
    (``repro.core.schedule.Schedule.hb_barrier_descendants``).
    """
    np = _numpy()
    n = len(ids)
    if n < 2:
        return None
    pos = {bid: k for k, bid in enumerate(ids)}
    ordered = np.zeros((n, n), dtype=bool)
    for k, bid in enumerate(ids):
        ds = desc.get(bid)
        if ds:
            cols = [pos[x] for x in ds if x in pos]
            if cols:
                ordered[k, cols] = True
    ordered |= ordered.T

    lo_a = np.asarray(lo, dtype=np.int64)
    hi_a = np.asarray(hi, dtype=np.int64)
    overlap = (lo_a[:, None] <= hi_a[None, :]) & (lo_a[None, :] <= hi_a[:, None])

    cand = overlap & ~ordered
    cand &= ~np.tri(n, dtype=bool)  # strict upper triangle
    flat = np.flatnonzero(cand.ravel())
    if not flat.size:
        return None
    a_idx, b_idx = divmod(int(flat[0]), n)
    return a_idx, b_idx
