"""Vectorized step-[2] earliest-start placement (paper section 4.3).

``ListPolicy._step2`` estimates, for every processor, the worst-case
start time of the node being placed: the processor's own completion
upper bound joined with the finish times of the node's cross-processor
producers.  The python loop recomputes ``completion_hi`` per processor
per node -- O(n_pes) dict walks for every placement.  This kernel reads
the schedule's shared completion vector
(:meth:`repro.core.schedule.Schedule.completion_hi_all`, kept live
across appends) and forms the estimates in whole-vector ops:

* ``est = maximum(comp, overall_ready)`` where ``overall_ready`` is the
  max finish over *all* producers;
* processors hosting a producer are then overwritten with the max over
  the *other* hosts' producers only (a same-processor producer is
  ordered by the stream itself and contributes no ready constraint).

Producers are few (node in-degree), so the per-host exclusion loop is
cheap; the win is eliminating the O(n_pes) python scan per node, which
dominates list scheduling on wide machines (256-1024 PEs).
"""

from __future__ import annotations

from repro.kernels import numpy as _numpy

__all__ = ["step2_estimates"]


def step2_estimates(schedule, node):
    """``(best, ties, est)`` for the step-[2] scan: the minimum estimate,
    the ascending processor indices attaining it (matching the python
    enumerate order, so tie-break rng draws are identical), and the full
    int64 estimate vector for the serialization-slack path.
    """
    np = _numpy()
    comp = schedule.completion_hi_all()
    preds = schedule.dag.real_preds(node)
    if not preds:
        est = comp  # ready time is 0 everywhere; shared vector, read-only
    else:
        finishes: dict[int, int] = {}
        overall = 0
        for g in preds:
            host = schedule.processor_of(g)
            fin = schedule.global_finish_hi(g)
            if fin > overall:
                overall = fin
            if fin > finishes.get(host, -1):
                finishes[host] = fin
        est = np.maximum(comp, overall)
        for host in finishes:
            excl = max(
                (fin for h, fin in finishes.items() if h != host), default=0
            )
            est[host] = max(int(comp[host]), excl)
    best = int(est.min())
    ties = np.flatnonzero(est == best).tolist()
    return best, ties, est
