"""uint64 bit-matrix kernels for the descendant-bitset reachability.

The canonical storage in :class:`repro.barriers.dag.BarrierDag` is a
``list[int]`` of python arbitrary-precision bitsets (row ``i`` = the
descendants of the barrier at topological position ``i``, bit ``j`` set
iff position ``j`` is a strict descendant).  These kernels compute the
same rows as a ``(n, words)`` uint64 matrix and convert **at the
boundary** via little-endian byte serialization, so the dag's query
paths (``has_path``, ``descendants``) and the cross-check mode never
see anything but plain python ints.

Two kernels:

* :func:`descendant_bits` -- the full reverse-topological closure
  sweep (``_descendant_bits``).
* :func:`spliced_desc_bits` -- the ``evolved_insert`` patch: splice a
  zero column/row at the insertion position (a whole-matrix shift-left
  by one bit, blended at the boundary word) and OR the new barrier's
  closure into every ancestor row that reaches a predecessor
  (``_spliced_desc_bits``).
"""

from __future__ import annotations

from repro.kernels import numpy as _numpy

__all__ = ["descendant_bits", "pack_rows", "spliced_desc_bits", "unpack_rows"]

_WORD = 64


def _n_words(n_bits: int) -> int:
    return max(1, (n_bits + _WORD - 1) // _WORD)


def pack_rows(rows: list[int], n_bits: int):
    """Pack python-int bitsets into a ``(len(rows), words)`` uint64 matrix."""
    np = _numpy()
    words = _n_words(n_bits)
    nbytes = words * 8
    buf = b"".join(row.to_bytes(nbytes, "little") for row in rows)
    return (
        np.frombuffer(buf, dtype="<u8").reshape(len(rows), words).copy()
    )


def unpack_rows(mat) -> list[int]:
    """Invert :func:`pack_rows`: matrix rows back to python-int bitsets."""
    data = mat.astype("<u8", copy=False).tobytes()
    nbytes = mat.shape[1] * 8
    return [
        int.from_bytes(data[i * nbytes : (i + 1) * nbytes], "little")
        for i in range(mat.shape[0])
    ]


def descendant_bits(succ_idx: list[list[int]]) -> list[int]:
    """Strict-descendant bitsets from successor lists in topo coordinates.

    ``succ_idx[i]`` holds the topological positions of position ``i``'s
    direct successors.  One reverse sweep; each row is the OR of its
    successors' *closures* (descendants | self), exactly like the
    python sweep in ``BarrierDag._descendant_bits``.
    """
    np = _numpy()
    n = len(succ_idx)
    words = _n_words(n)
    closure = np.zeros((n, words), dtype=np.uint64)
    desc = np.zeros((n, words), dtype=np.uint64)
    for i in range(n - 1, -1, -1):
        succs = succ_idx[i]
        if succs:
            rows = closure[succs]
            acc = rows[0] if len(succs) == 1 else np.bitwise_or.reduce(rows, axis=0)
            desc[i] = acc
            closure[i] = acc
        closure[i, i >> 6] |= np.uint64(1 << (i & 63))
    return unpack_rows(desc)


def spliced_desc_bits(
    old_bits: list[int],
    pos: int,
    succ_idx: list[int],
    pred_idx: list[int],
) -> list[int]:
    """Patch descendant bitsets for a barrier spliced at topo position
    ``pos`` -- the vectorized twin of ``BarrierDag._spliced_desc_bits``.

    ``succ_idx``/``pred_idx`` are the new barrier's successor and
    predecessor positions in the **new** (post-splice) coordinates.
    Returns the new ``list[int]`` rows (length ``len(old_bits) + 1``).
    """
    np = _numpy()
    n_old = len(old_bits)
    n_new = n_old + 1
    words_new = _n_words(n_new)

    mat = pack_rows(old_bits, n_old)
    if mat.shape[1] < words_new:  # splice crosses into a fresh word
        mat = np.concatenate(
            [mat, np.zeros((n_old, words_new - mat.shape[1]), dtype=np.uint64)],
            axis=1,
        )

    # Shift every bit at position >= pos up by one: a whole-row
    # left-shift with word carries, blended with the untouched low bits
    # at the boundary word.  Bit ``pos`` itself becomes 0 (the new row).
    left = mat << np.uint64(1)
    left[:, 1:] |= mat[:, :-1] >> np.uint64(63)
    wb, bb = pos >> 6, pos & 63
    low = np.uint64((1 << bb) - 1)
    high = np.uint64(((1 << 64) - 1) ^ ((1 << (bb + 1)) - 1))
    out = np.empty_like(mat)
    out[:, :wb] = mat[:, :wb]
    out[:, wb] = (mat[:, wb] & low) | (left[:, wb] & high)
    out[:, wb + 1 :] = left[:, wb + 1 :]

    new = np.zeros((n_new, words_new), dtype=np.uint64)
    new[:pos] = out[:pos]
    new[pos + 1 :] = out[pos:]

    # The new row: union of successor closures (descendants | self).
    if succ_idx:
        acc = np.bitwise_or.reduce(new[succ_idx], axis=0)
        for si in succ_idx:
            acc[si >> 6] |= np.uint64(1 << (si & 63))
        new[pos] = acc

    # Ancestors -- rows that reach a predecessor, or are one -- gain
    # the new barrier's closure plus the new bit itself.
    gain = new[pos].copy()
    gain[wb] |= np.uint64(1 << bb)
    pred_row = np.zeros(words_new, dtype=np.uint64)
    is_pred = np.zeros(n_new, dtype=bool)
    for pi in pred_idx:
        pred_row[pi >> 6] |= np.uint64(1 << (pi & 63))
        is_pred[pi] = True
    sel = (new & pred_row).any(axis=1) | is_pred
    sel[pos] = False
    new[sel] |= gain

    return unpack_rows(new)
