"""Corpus-batched kernels: one numpy dispatch per chunk, not per case.

The per-schedule kernels (:mod:`repro.kernels.bitset`,
:mod:`repro.kernels.pathvec`, :mod:`repro.kernels.mergemat`) each pay
numpy dispatch overhead on a single small matrix.  At corpus scale the
same work repeats across 100 independent cases, so these kernels take a
whole *chunk* of cases at once: the per-case bit-matrices are packed
into one padded 3-D uint64 tensor with a size map, the sweep runs in
lockstep across the case axis, and the results unpack exactly per case
-- the batched driver (:mod:`repro.core.batchrun`) is bit-identical to
the serial pipeline, so ``results_digest`` is unchanged.

Lockstep alignment: every per-case sweep here runs over topological
positions in *reverse*; cases are aligned on the distance from their own
last position (step ``t`` touches position ``n_c - 1 - t`` of every case
with ``n_c > t``), so data dependences stay within already-computed
steps regardless of per-case size.

Three batched kernels:

* :func:`reach_batch` -- descendant-bitset reachability closure over
  many graphs (the batched twin of ``bitset.descendant_bits``, general
  enough to also sweep the happens-before graph H);
* :func:`heights_batch` -- the min/max-height longest-path relaxation
  of :func:`repro.core.labeling.compute_heights` over many DAGs;
* :func:`first_candidates` -- one merge-verdict round
  (``mergemat.first_candidate``) for many schedules.

Plus the padded-tensor boundary helpers :func:`pack_bitmats` /
:func:`unpack_bitmats` shared by the kernels and the shared-memory
corpus arena.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels import numpy as _numpy
from repro.obs import prof as obs_prof

__all__ = [
    "first_candidates",
    "heights_batch",
    "pack_bitmats",
    "reach_batch",
    "unpack_bitmats",
]

_WORD = 64


def _n_words(n_bits: int) -> int:
    return max(1, (n_bits + _WORD - 1) // _WORD)


def pack_bitmats(mats: Sequence[Sequence[int]], n_bits: Sequence[int]):
    """Pack per-case python-int bitset rows into one padded 3-D tensor.

    ``mats[c]`` is case ``c``'s list of bitsets, ``n_bits[c]`` its bit
    width.  Returns ``(tensor, sizes)``: a ``(C, max_rows, words)``
    uint64 tensor (padded with zero rows/words) and the per-case row
    counts.  ``words`` covers the widest case, so a 63/64/65-bit case
    mix shares one tensor without truncation.
    """
    np = _numpy()
    sizes = [len(rows) for rows in mats]
    max_rows = max(sizes, default=0)
    words = max((_n_words(b) for b in n_bits), default=1)
    tensor = np.zeros((len(mats), max_rows, words), dtype=np.uint64)
    prof = obs_prof.current_profiler()
    if prof is not None:
        prof.add_bytes("batch.tensors", tensor.nbytes)
    nbytes = words * 8
    for c, rows in enumerate(mats):
        if rows:
            buf = b"".join(row.to_bytes(nbytes, "little") for row in rows)
            tensor[c, : sizes[c]] = np.frombuffer(buf, dtype="<u8").reshape(
                sizes[c], words
            )
    return tensor, np.asarray(sizes, dtype=np.int64)


def unpack_bitmats(tensor, sizes) -> list[list[int]]:
    """Invert :func:`pack_bitmats`: per-case python-int bitset rows."""
    out: list[list[int]] = []
    nbytes = tensor.shape[2] * 8
    for c in range(tensor.shape[0]):
        n = int(sizes[c])
        data = tensor[c, :n].astype("<u8", copy=False).tobytes()
        out.append(
            [
                int.from_bytes(data[i * nbytes : (i + 1) * nbytes], "little")
                for i in range(n)
            ]
        )
    return out


def reach_batch(
    succ_idx: Sequence[Sequence[Sequence[int]]],
    self_bits: Sequence[Sequence[int]],
    n_bits: Sequence[int],
) -> list[list[int]]:
    """Batched reachability closure over many graphs.

    For each case ``c`` with nodes in topological positions
    ``0..n_c-1``: ``desc[i] = OR over direct successors s of
    (desc[s] | self_bits[s])`` -- one reverse sweep, all cases in
    lockstep.  With ``self_bits[i] = 1 << i`` this is exactly
    ``bitset.descendant_bits`` per case; the happens-before sweep of
    :meth:`repro.core.schedule.Schedule.hb_barrier_descendants` uses
    barrier-indexed self bits (zero for instruction nodes) instead.

    Returns per-case bitset rows as python ints (strict reachability:
    a node's own self bit is not included in its row).
    """
    np = _numpy()
    n_cases = len(succ_idx)
    ns = [len(s) for s in succ_idx]
    contrib, _ = pack_bitmats(self_bits, n_bits)  # desc | self, rolling
    words = contrib.shape[2]
    desc = np.zeros((n_cases, max(ns, default=0), words), dtype=np.uint64)
    for t in range(max(ns, default=0)):
        gather_case: list[int] = []
        gather_pos: list[int] = []
        seg: list[int] = []
        tgt_case: list[int] = []
        tgt_pos: list[int] = []
        for c in range(n_cases):
            if ns[c] > t:
                p = ns[c] - 1 - t
                succs = succ_idx[c][p]
                if succs:
                    seg.append(len(gather_case))
                    gather_case.extend([c] * len(succs))
                    gather_pos.extend(succs)
                    tgt_case.append(c)
                    tgt_pos.append(p)
        if not tgt_case:
            continue  # leaves only this step: desc rows stay zero
        rows = contrib[np.asarray(gather_case), np.asarray(gather_pos)]
        acc = np.bitwise_or.reduceat(rows, np.asarray(seg), axis=0)
        tc = np.asarray(tgt_case)
        tp = np.asarray(tgt_pos)
        desc[tc, tp] = acc
        contrib[tc, tp] |= acc
    return unpack_bitmats(desc, np.asarray(ns, dtype=np.int64))


def heights_batch(
    succ_idx: Sequence[Sequence[Sequence[int]]],
    lat_lo: Sequence[Sequence[int]],
    lat_hi: Sequence[Sequence[int]],
) -> list[tuple[list[int], list[int]]]:
    """Batched min/max-height labeling over many DAGs.

    The longest-path relaxation of
    :func:`repro.core.labeling.compute_heights` --
    ``h(i) = t(i) + max over successors of h(s)``, componentwise on the
    ``[min, max]`` interval -- swept in lockstep across the case axis.
    ``succ_idx[c][p]`` holds the topological positions of position
    ``p``'s direct successors; ``lat_lo``/``lat_hi`` the per-position
    latency bounds.  Returns per-case ``(h_lo, h_hi)`` lists aligned
    with the positions.
    """
    np = _numpy()
    n_cases = len(succ_idx)
    ns = [len(s) for s in succ_idx]
    n_max = max(ns, default=0)
    lo = np.zeros((n_cases, n_max), dtype=np.int64)
    hi = np.zeros((n_cases, n_max), dtype=np.int64)
    tlo = np.zeros((n_cases, n_max), dtype=np.int64)
    thi = np.zeros((n_cases, n_max), dtype=np.int64)
    for c in range(n_cases):
        if ns[c]:
            tlo[c, : ns[c]] = lat_lo[c]
            thi[c, : ns[c]] = lat_hi[c]
    for t in range(n_max):
        gather_case: list[int] = []
        gather_pos: list[int] = []
        seg: list[int] = []
        tgt_case: list[int] = []
        tgt_pos: list[int] = []
        leaf_case: list[int] = []
        leaf_pos: list[int] = []
        for c in range(n_cases):
            if ns[c] > t:
                p = ns[c] - 1 - t
                succs = succ_idx[c][p]
                if succs:
                    seg.append(len(gather_case))
                    gather_case.extend([c] * len(succs))
                    gather_pos.extend(succs)
                    tgt_case.append(c)
                    tgt_pos.append(p)
                else:
                    leaf_case.append(c)
                    leaf_pos.append(p)
        if leaf_case:
            lc = np.asarray(leaf_case)
            lp = np.asarray(leaf_pos)
            lo[lc, lp] = tlo[lc, lp]
            hi[lc, lp] = thi[lc, lp]
        if tgt_case:
            gc = np.asarray(gather_case)
            gp = np.asarray(gather_pos)
            sg = np.asarray(seg)
            tc = np.asarray(tgt_case)
            tp = np.asarray(tgt_pos)
            lo[tc, tp] = np.maximum.reduceat(lo[gc, gp], sg) + tlo[tc, tp]
            hi[tc, tp] = np.maximum.reduceat(hi[gc, gp], sg) + thi[tc, tp]
    return [
        (lo[c, : ns[c]].tolist(), hi[c, : ns[c]].tolist())
        for c in range(n_cases)
    ]


def first_candidates(
    rounds: Sequence[
        tuple[Sequence[int], Sequence[int], Sequence[int], dict]
    ],
) -> list[tuple[int, int] | None]:
    """One merge-verdict round for many schedules at once.

    Each element of ``rounds`` is the ``(ids, lo, hi, desc)`` input of
    :func:`repro.kernels.mergemat.first_candidate` for one schedule;
    the round's orderedness and overlap tests run as one ``(C, n, n)``
    boolean tensor and each case's first candidate pair (row-major in
    the id-sorted upper triangle, exactly the python scan's order) is
    read off with a single ``argmax`` row.  Returns one
    ``(a_idx, b_idx)`` or ``None`` per case.
    """
    np = _numpy()
    n_cases = len(rounds)
    ns = [len(ids) for ids, _lo, _hi, _desc in rounds]
    n_max = max(ns, default=0)
    if n_max < 2:
        return [None] * n_cases
    ordered = np.zeros((n_cases, n_max, n_max), dtype=bool)
    # Padded windows sit at [+inf, -inf]: ``lo_a <= hi_pad`` is false
    # against every real window, so padding never overlaps anything.
    # (A merely inverted window like [1, 0] would not do -- the overlap
    # formula assumes lo <= hi and [1, 0] still meets [0, 5].)
    lo_m = np.full((n_cases, n_max), 1 << 62, dtype=np.int64)
    hi_m = np.full((n_cases, n_max), -(1 << 62), dtype=np.int64)
    for c, (ids, lo, hi, desc) in enumerate(rounds):
        n = ns[c]
        if not n:
            continue
        lo_m[c, :n] = lo
        hi_m[c, :n] = hi
        pos = {bid: k for k, bid in enumerate(ids)}
        for k, bid in enumerate(ids):
            ds = desc.get(bid)
            if ds:
                cols = [pos[x] for x in ds if x in pos]
                if cols:
                    ordered[c, k, cols] = True
    ordered |= ordered.transpose(0, 2, 1)

    overlap = (lo_m[:, :, None] <= hi_m[:, None, :]) & (
        lo_m[:, None, :] <= hi_m[:, :, None]
    )
    cand = overlap & ~ordered
    cand &= ~np.tri(n_max, dtype=bool)  # strict upper triangle, all cases
    flat = cand.reshape(n_cases, n_max * n_max)
    first = np.argmax(flat, axis=1)
    found = flat[np.arange(n_cases), first]
    out: list[tuple[int, int] | None] = []
    for c in range(n_cases):
        if found[c]:
            a_idx, b_idx = divmod(int(first[c]), n_max)
            out.append((a_idx, b_idx))
        else:
            out.append(None)
    return out
