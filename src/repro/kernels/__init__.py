"""Vectorized (numpy) backends behind the pure-python hot loops.

The scheduling pipeline's inner loops -- descendant-bitset reachability
(:mod:`repro.barriers.dag`), k-longest-path relaxation
(:mod:`repro.barriers.paths`), dominator/Euler recompute
(:mod:`repro.barriers.dominators`), the ``merge_all_overlapping``
verdict scan (:mod:`repro.core.merging`), and the per-PE
earliest-start scan of list scheduling (:mod:`repro.core.assignment`)
-- each have a numpy kernel sitting *behind* the canonical pure-python
implementation.  The python code stays the specification; a kernel is
only ever an accelerator that must produce bit-identical results.

Backend selection (``REPRO_BACKEND``):

``python``
    Never use the kernels.
``numpy``
    Auto-pick a kernel above its per-kernel size threshold
    (:data:`THRESHOLDS`); below it the python loop is faster than the
    array setup it would replace, so the threshold applies on every
    backend.  Raises ``ValueError`` when numpy is not importable (the
    CLI maps this to its exit-2 one-line error contract).
``auto`` (default, and the meaning of an empty/absent variable)
    Same auto-pick, but degrade to pure python silently when numpy is
    not available.

Cross-check mode (``REPRO_CHECK_KERNELS=1``): every kernel call *also*
runs the python implementation and asserts bit-identical results,
mirroring how ``REPRO_CHECK_INCREMENTAL`` pins the incremental views.
Check mode forces kernels on under ``auto`` (otherwise small corpora
would verify nothing); outcomes are counted as
``kernels.check.checked`` / ``kernels.check.mismatches``.

Every dispatch decision is counted -- module-locally (always, see
:func:`kernels_info`) and on the active metrics registry
(``kernels.calls.<kernel>.<backend>`` plus the
``kernels.backend.<backend>`` totals) so backend drift is visible in
traces, ``repro-sbm explain --json``, and perf reports.

numpy itself is imported lazily: a pure-python run (or a machine
without numpy) never pays the import.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.obs import metrics as obs_metrics
from repro.obs import prof as obs_prof

__all__ = [
    "THRESHOLDS",
    "VALID_BACKENDS",
    "backend_setting",
    "checking",
    "count",
    "have_numpy",
    "kernels_info",
    "numpy",
    "reset_calls",
    "resolved_backend",
    "timed",
    "use_numpy",
    "verify",
]

VALID_BACKENDS = ("python", "numpy", "auto")

#: ``auto`` engages a kernel when its size measure (barriers in the dag
#: for the graph kernels, schedule barriers for ``merge``, PEs for
#: ``assign``) reaches the threshold.  Calibrated so the default 8-PE /
#: 10-30-statement corpora stay pure python while 1024-PE and
#: paper-scale runs vectorize.
THRESHOLDS: dict[str, int] = {
    "descbits": 128,
    "splice": 128,
    "paths": 128,
    "domin": 192,
    "merge": 48,
    "assign": 64,
    # Batched corpus kernels: sizes are *cases per batch*, not nodes.
    # The vectorized generator wins from ~8 cases up (the flat-gather
    # RNG keeps per-call dispatch low), which covers the perf report's
    # 10-case simulation corpus.
    "genvec": 8,
    "batch": 16,
}

_np: Any = None
_np_checked = False

#: Dispatch tally, ``kernels.calls.<kernel>.<backend> -> n``.  Module
#: level (not registry-scoped) so ``explain``/reports can show backend
#: drift even when no registry is active.
_CALLS: dict[str, int] = {}


def numpy() -> Any:
    """The numpy module, or ``None`` when it cannot be imported."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy as np  # local: keep pure-python runs import-free

            _np = np
        except Exception:  # pragma: no cover - container always has numpy
            _np = None
    return _np


def have_numpy() -> bool:
    return numpy() is not None


def backend_setting() -> str:
    """The validated ``REPRO_BACKEND`` setting (empty/absent = auto)."""
    text = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not text:
        return "auto"
    if text not in VALID_BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND must be one of {', '.join(VALID_BACKENDS)}, "
            f"got {text!r}"
        )
    return text


def checking() -> bool:
    """True when ``REPRO_CHECK_KERNELS`` asks for per-call cross-checks."""
    return os.environ.get("REPRO_CHECK_KERNELS", "") not in ("", "0")


def resolved_backend() -> str:
    """What the current environment resolves to (``python``/``numpy``)."""
    setting = backend_setting()
    if setting == "python":
        return "python"
    if setting == "numpy":
        if not have_numpy():
            raise ValueError("REPRO_BACKEND=numpy but numpy is not importable")
        return "numpy"
    return "numpy" if have_numpy() else "python"


def use_numpy(kernel: str, size: int) -> bool:
    """Decide the backend for one kernel call of the given size."""
    setting = backend_setting()
    if setting == "python":
        return False
    if setting == "numpy" and not have_numpy():
        raise ValueError("REPRO_BACKEND=numpy but numpy is not importable")
    # Size test first so small pure-python runs never import numpy;
    # check mode overrides it (small corpora would verify nothing).
    if not checking() and size < THRESHOLDS[kernel]:
        return False
    return have_numpy()


def count(kernel: str, backend: str) -> None:
    """Record one dispatch decision (module tally + metrics registry)."""
    key = f"kernels.calls.{kernel}.{backend}"
    _CALLS[key] = _CALLS.get(key, 0) + 1
    reg = obs_metrics.current_registry()
    if reg is not None:
        reg.inc(key)
        reg.inc(f"kernels.backend.{backend}")


class _KernelTimer:
    """Times one dispatched kernel call into the active profiler."""

    __slots__ = ("_prof", "_key", "_wall0", "_cpu0")

    def __init__(self, prof: "obs_prof.Profiler", key: str) -> None:
        self._prof = prof
        self._key = key

    def __enter__(self) -> None:
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        self._prof.record_kernel(
            self._key, wall, time.process_time() - self._cpu0
        )
        return False


class _NoopTimer:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op so the profiler-off path allocates nothing per call.
_NOOP_TIMER = _NoopTimer()


def timed(kernel: str, backend: str) -> "_KernelTimer | _NoopTimer":
    """Count one dispatch decision and time the block it guards.

    ``with kernels.timed("paths", "numpy"): ...`` is :func:`count` plus
    -- when a :func:`repro.obs.prof.collect_profile` subscriber is
    active -- a wall/CPU timing observation under the key
    ``<kernel>.<backend>``.  Without a profiler the returned context
    manager is a shared no-op, so the hot paths stay as cheap as the
    bare ``count()`` call they replace.
    """
    count(kernel, backend)
    prof = obs_prof.current_profiler()
    if prof is None:
        return _NOOP_TIMER
    return _KernelTimer(prof, f"{kernel}.{backend}")


def verify(kernel: str, got: Any, expected: Any) -> None:
    """Cross-check a kernel result against the python implementation.

    Counts ``kernels.check.checked`` per comparison and raises
    ``AssertionError`` (after counting ``kernels.check.mismatches``) on
    any divergence -- same contract as the incremental-view checker.
    """
    reg = obs_metrics.current_registry()
    if reg is not None:
        reg.inc("kernels.check.checked")
    if got != expected:
        if reg is not None:
            reg.inc("kernels.check.mismatches")
        raise AssertionError(
            f"kernel cross-check failed for {kernel!r}: numpy backend "
            f"diverged from the python implementation"
        )


def reset_calls() -> None:
    """Clear the module-level dispatch tally (test isolation)."""
    _CALLS.clear()


def kernels_info() -> dict:
    """Backend status for reports: setting, resolution, call tallies."""
    try:
        setting = backend_setting()
    except ValueError:
        setting = os.environ.get("REPRO_BACKEND", "")
    try:
        resolved = resolved_backend()
    except ValueError:
        resolved = "error"
    return {
        "setting": setting,
        "resolved": resolved,
        "numpy_available": have_numpy(),
        "checking": checking(),
        "thresholds": dict(THRESHOLDS),
        "calls": dict(_CALLS),
    }
