"""Batched dominator-tree derivation (depth / children / Euler intervals).

``DominatorTree.__init__`` derives three views from the immediate
dominators: per-node depth, the child lists, and the Euler-tour
``tin``/``tout`` intervals that make ``dominates`` O(1).  The python
version walks dicts; this kernel does the same work on topo-position
int arrays -- children are grouped in one stable argsort of the parent
vector (stability preserves the python append order, i.e. topological
order within each sibling group), depth is one forward array pass
(an idom always precedes its node topologically), and the Euler tour is
the same mirrored stack DFS over the grouped child segments.

``_compute_idoms`` itself stays python on every backend: the one-pass
CHK intersect walks short dominator chains whose length is data
dependent -- there is no batch shape to exploit, and the python loop is
already O(B * chain) with final chains.
"""

from __future__ import annotations

from repro.kernels import numpy as _numpy

__all__ = ["tree_views"]


def tree_views(
    dag, idom: dict[int, int]
) -> tuple[dict[int, int], dict[int, int], dict[int, int]]:
    """``(depth, tin, tout)`` dicts for a dominator tree, bit-identical
    to the python derivation in ``DominatorTree.__init__``."""
    np = _numpy()
    order = dag.barrier_ids  # topological, initial barrier first
    index = dag.order_index
    n = len(order)
    if n == 1:
        root = order[0]
        return {root: 0}, {root: 0}, {root: 1}

    parent = np.fromiter(
        (index[idom[bid]] for bid in order[1:]), dtype=np.int64, count=n - 1
    )
    # Children of node k, in topological order: stable argsort groups
    # the child positions 1..n-1 by parent while keeping them ascending.
    kids = np.argsort(parent, kind="stable") + 1
    counts = np.bincount(parent, minlength=n)
    cstart = np.concatenate(([0], np.cumsum(counts)))

    depth = np.zeros(n, dtype=np.int64)
    for k in range(1, n):  # parent position < k, so depths finalize in order
        depth[k] = depth[parent[k - 1]] + 1

    tin = np.zeros(n, dtype=np.int64)
    tout = np.zeros(n, dtype=np.int64)
    clock = 0
    # Stack of encoded entries: +(pos+1) opens a node, -(pos+1) closes it.
    stack = [1]
    while stack:
        entry = stack.pop()
        if entry < 0:
            tout[-entry - 1] = clock
            continue
        pos = entry - 1
        tin[pos] = clock
        clock += 1
        stack.append(-entry)
        segment = kids[cstart[pos] : cstart[pos + 1]]
        if segment.size:
            # Reversed push, so children pop in topological order.
            stack.extend((segment[::-1] + 1).tolist())

    return (
        dict(zip(order, depth.tolist())),
        dict(zip(order, tin.tolist())),
        dict(zip(order, tout.tolist())),
    )
