"""Core scheduling package: the paper's contribution.

List scheduling with min/max-height ordering (sections 4.1-4.2),
serialization-aware processor assignment (4.3), conservative and optimal
barrier insertion (4.4.1-4.4.2), SBM barrier merging (4.4.3), and a final
soundness validation sweep.
"""

from repro.timing import Interval, ZERO, interval_max, interval_sum
from repro.core.labeling import compute_heights, critical_path_nodes
from repro.core.ordering import order_nodes
from repro.core.assignment import (
    ListPolicy,
    LookaheadPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.schedule import Item, Schedule
from repro.core.barrier_insert import (
    BarrierInserter,
    EdgeResolution,
    ResolutionKind,
    TimingQuantities,
    classify_edge,
    timing_quantities,
)
from repro.core.merging import find_merge_candidate, merge_new_barrier
from repro.core.validate import (
    ScheduleError,
    Violation,
    check_structure,
    find_violations,
    repair_schedule,
)
from repro.core.sync_elimination import (
    SyncEliminationResult,
    compute_sync_bounds,
    eliminate_directed_syncs,
    simulate_directed,
)
from repro.core.scheduler import (
    ScheduleResult,
    SchedulerConfig,
    SyncCounts,
    schedule_dag,
)

__all__ = [
    "Interval",
    "ZERO",
    "interval_max",
    "interval_sum",
    "compute_heights",
    "critical_path_nodes",
    "order_nodes",
    "ListPolicy",
    "LookaheadPolicy",
    "RoundRobinPolicy",
    "make_policy",
    "Item",
    "Schedule",
    "BarrierInserter",
    "EdgeResolution",
    "ResolutionKind",
    "TimingQuantities",
    "classify_edge",
    "timing_quantities",
    "find_merge_candidate",
    "merge_new_barrier",
    "ScheduleError",
    "Violation",
    "check_structure",
    "find_violations",
    "repair_schedule",
    "ScheduleResult",
    "SchedulerConfig",
    "SyncCounts",
    "schedule_dag",
    "SyncEliminationResult",
    "compute_sync_bounds",
    "eliminate_directed_syncs",
    "simulate_directed",
]
