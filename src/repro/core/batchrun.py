"""Batched scheduling of a corpus chunk (bit-identical to serial).

:func:`schedule_cases` schedules many independent DAGs through the same
pipeline as :func:`repro.core.scheduler.schedule_dag`, but hoists the
three numpy-friendly analyses out of the per-case loop and runs each
once per chunk via :mod:`repro.kernels.batch`:

* the min/max-height labeling (one lockstep relaxation for the chunk);
* the scratch happens-before descendant sweep that a schedule's first
  merge round pays (primed for every cold case in one reachability
  batch, then patched incrementally as usual);
* the merge-verdict rounds of finalization (one ``(C, n, n)`` tensor
  round for every case still sweeping, instead of one matrix per case
  per round).

Everything order-sensitive -- list ordering, processor assignment,
barrier insertion, edge classification, repair -- still runs the
*unmodified* per-case code, and the batched finalize replicates
:func:`repro.core.validate.finalize_schedule` state-for-state (same
guard, same merge sequence, same repair points), so results are
bit-identical to ``schedule_dag`` case by case and ``results_digest``
is unchanged.

Cases whose config opts out of merging (DBM machines,
``merge_barriers=False``) finalize serially inside the batch; a chunk
below the ``"batch"`` backend threshold, a non-numpy backend, or an
active provenance recorder (which wants one record per rejected pair)
falls back to plain per-case ``schedule_dag``.
"""

from __future__ import annotations

from typing import Sequence

from repro import kernels
from repro.core.labeling import compute_heights
from repro.core.merging import _first_candidate_python
from repro.core.scheduler import (
    ScheduleResult,
    SchedulerConfig,
    _assemble_result,
    _list_schedule,
    schedule_dag,
)
from repro.core.validate import (
    ScheduleError,
    check_structure,
    finalize_schedule,
    repair_schedule,
)
from repro.ir.dag import InstructionDAG
from repro.obs.metrics import current_registry
from repro.obs.provenance import current_recorder, record_merge
from repro.obs.spans import span
from repro.perf.timers import stage
from repro.timing import Interval

__all__ = ["schedule_cases"]


def schedule_cases(
    dags: Sequence[InstructionDAG],
    configs: Sequence[SchedulerConfig],
) -> list[ScheduleResult]:
    """Schedule a chunk of independent DAGs, batching the numpy analyses.

    ``configs`` is parallel to ``dags`` (one scheduler config per case).
    Falls back to per-case :func:`schedule_dag` when the chunk is too
    small for the ``"batch"`` kernel threshold, the backend is python,
    or a provenance recorder is active.
    """
    if len(dags) != len(configs):
        raise ValueError("dags and configs must be parallel sequences")
    if not dags:
        return []
    if current_recorder() is not None or not kernels.use_numpy(
        "batch", len(dags)
    ):
        with kernels.timed("batch", "python"):
            return [
                schedule_dag(dag, config) for dag, config in zip(dags, configs)
            ]

    reg = current_registry()
    with kernels.timed("batch", "numpy"), span("batch.schedule", cases=len(dags)):
        heights = _batched_heights(dags, reg)
        built = [
            _list_schedule(dag, config, h)
            for dag, config, h in zip(dags, configs, heights)
        ]
        finals = _batched_finalize(built, configs, reg)
    return [
        _assemble_result(schedule, config, inserter, order, repairs, merges)
        for (schedule, inserter, order), config, (repairs, merges) in zip(
            built, configs, finals
        )
    ]


def _batched_heights(dags, reg):
    """One lockstep relaxation for the whole chunk's height labels."""
    from repro.kernels import batch as kbatch

    succ_idx = []
    lat_lo = []
    lat_hi = []
    for dag in dags:
        nodes = dag.nodes
        pos = {node: i for i, node in enumerate(nodes)}
        succ_idx.append(
            [[pos[s] for s in dag.succs(node)] for node in nodes]
        )
        lats = [dag.latency(node) for node in nodes]
        lat_lo.append([lat.lo for lat in lats])
        lat_hi.append([lat.hi for lat in lats])
    if reg is not None:
        reg.inc("kernels.batch.heights")
    rows = kbatch.heights_batch(succ_idx, lat_lo, lat_hi)
    heights = []
    for dag, (h_lo, h_hi) in zip(dags, rows):
        labels = {
            node: Interval(lo, hi)
            for node, lo, hi in zip(dag.nodes, h_lo, h_hi)
        }
        if kernels.checking():
            kernels.verify("batch", labels, compute_heights(dag))
        heights.append(labels)
    return heights


def _prime_hb_descendants(states, reg):
    """Batch the scratch H sweep for every cold participant.

    ``hb_barrier_descendants`` is patched incrementally across
    mutations, so the full sweep only runs on first use -- once per
    case.  Batching it here means the chunk pays one reachability
    kernel instead of C python sweeps.
    """
    from repro.kernels import batch as kbatch

    cold = [st for st in states if st["schedule"].hb_descendants_cold()]
    if not cold:
        return
    inputs = [st["schedule"].hb_reach_inputs() for st in cold]
    if reg is not None:
        reg.inc("kernels.batch.reach")
    rows = kbatch.reach_batch(
        [inp[0] for inp in inputs],
        [inp[1] for inp in inputs],
        [len(inp[2]) for inp in inputs],
    )
    for st, inp, case_rows in zip(cold, inputs, rows):
        schedule = st["schedule"]
        schedule.adopt_hb_descendants(case_rows, inp[2], inp[3])
        if kernels.checking():
            kernels.verify(
                "batch",
                schedule.hb_barrier_descendants(),
                schedule._scratch_hb_barrier_descendants(
                    schedule.hb_successors()
                ),
            )


def _batched_finalize(built, configs, reg):
    """Replicate :func:`finalize_schedule` per case, batching the merge
    rounds across every case still sweeping; returns per-case
    ``(repairs, final_merges)``.

    Each case runs the exact serial state machine -- structure check,
    ``implied + barriers + 2`` guard frozen at entry, (merge sweep,
    repair) iterations to a joint fixpoint -- but each *merge round* is
    one :func:`repro.kernels.batch.first_candidates` call shared by all
    active cases.  One round finds at most one pair per case (the same
    first pair the serial matrix/cached scans find), so the per-case
    merge sequence, and with it the surviving barrier set, is identical.
    """
    from repro.kernels import batch as kbatch

    finals: list[tuple[int, int] | None] = [None] * len(built)
    sweeping: list[dict] = []
    for i, ((schedule, _inserter, _order), config) in enumerate(
        zip(built, configs)
    ):
        if not config.validate:
            finals[i] = (0, 0)
            continue
        if not config.merging_enabled:
            finals[i] = finalize_schedule(
                schedule, config.insertion, merge=False
            )
            continue
        check_structure(schedule)
        sweeping.append(
            {
                "index": i,
                "schedule": schedule,
                "mode": config.insertion,
                "guard": schedule.dag.implied_synchronizations
                + len(schedule.barriers())
                + 2,
                "iterations": 0,
                "absorbed": 0,  # merges of the current sweep
                "repairs": 0,
                "merges": 0,
            }
        )

    round_no = 0
    while sweeping:
        round_no += 1
        finished: list[dict] = []
        with stage("merge"):
            with span(
                "batch.merge.round", round=round_no, cases=len(sweeping)
            ):
                _prime_hb_descendants(sweeping, reg)
                rounds = []
                for st in sweeping:
                    schedule = st["schedule"]
                    barriers = schedule.barriers()
                    fire = schedule.fire_times()
                    ids = [b.id for b in barriers]
                    rounds.append(
                        (
                            ids,
                            [fire[bid].lo for bid in ids],
                            [fire[bid].hi for bid in ids],
                            schedule.hb_barrier_descendants(),
                        )
                    )
                    st["barriers"] = barriers
                    st["fire"] = fire
                if reg is not None:
                    reg.inc("kernels.batch.merge")
                found = kbatch.first_candidates(rounds)
                if kernels.checking():
                    for st, pair in zip(sweeping, found):
                        kernels.verify(
                            "batch",
                            pair,
                            _first_candidate_python(
                                st["schedule"], st["barriers"], st["fire"]
                            ),
                        )
                still: list[dict] = []
                for st, pair in zip(sweeping, found):
                    if pair is None:
                        finished.append(st)
                        continue
                    schedule = st["schedule"]
                    survivor = st["barriers"][pair[0]]
                    victim = st["barriers"][pair[1]]
                    if reg is not None:
                        reg.inc("merge.verdict.merged")
                    record_merge(
                        "finalize",
                        survivor.id,
                        victim.id,
                        True,
                        "unordered-overlap",
                    )
                    survivor.absorb(victim)
                    schedule.replace_barrier(victim, survivor)
                    st["absorbed"] += 1
                    still.append(st)
        sweeping = still
        # Sweep fixpoints reached this round: run the repair half of the
        # finalize iteration (outside stage("merge"), as serially).
        for st in finished:
            merges = st["absorbed"]
            repairs = repair_schedule(st["schedule"], st["mode"])
            st["merges"] += merges
            st["repairs"] += repairs
            st["iterations"] += 1
            if merges == 0 and repairs == 0:
                finals[st["index"]] = (st["repairs"], st["merges"])
            elif st["iterations"] >= st["guard"]:
                raise ScheduleError("finalization did not converge")
            else:
                st["absorbed"] = 0
                sweeping.append(st)
    return finals
