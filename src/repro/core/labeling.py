"""Node labeling: minimum and maximum heights (paper section 4.1).

The *height* of node ``i`` is the length of the longest path from the
exit node back to ``i`` (edge directions reversed) -- i.e. the amount of
work that must still complete after ``i`` starts, including ``i`` itself.
With variable-time instructions there are two heights:

* ``h_max(i)``: longest path assuming every node takes its **maximum**
  time -- the key used first in list ordering, "in an attempt to minimize
  the worst-case execution time";
* ``h_min(i)``: same with **minimum** times -- the tie-breaker,
  "an attempt to optimize for the best case".

Both are computed in one reverse-topological sweep using interval
arithmetic (``O(n + e)``; the paper quotes ``O(n^2)`` for the generic
longest-path formulation).
"""

from __future__ import annotations

from repro.timing import Interval, ZERO
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["compute_heights", "critical_path_nodes"]


def compute_heights(dag: InstructionDAG) -> dict[NodeId, Interval]:
    """``node -> Interval(h_min, h_max)`` for every node (dummies included).

    ``h(i) = t(i) + max over successors s of h(s)``; the dummy exit node
    has height zero.  Because max and + act componentwise on intervals,
    one sweep produces both heights.
    """
    heights: dict[NodeId, Interval] = {}
    for node in reversed(dag.nodes):  # reverse topological order
        acc = ZERO
        for s in dag.succs(node):
            acc = acc.join(heights[s])
        heights[node] = acc + dag.latency(node)
    return heights


def critical_path_nodes(dag: InstructionDAG) -> tuple[NodeId, ...]:
    """Real nodes lying on some maximum-time critical path.

    A node is critical iff its max height plus the max finish level of its
    slowest predecessor chain equals the critical path length.  Useful for
    diagnostics and the VLIW comparison (the paper notes the schedules it
    found were optimal -- equal to the critical path -- almost always).
    """
    heights = compute_heights(dag)
    levels = dag.finish_levels()
    total = dag.critical_path().hi
    critical: list[NodeId] = []
    for node in dag.real_nodes:
        # levels[node].hi is the max finish; heights exclude nothing: a node
        # is on a critical path iff finish_level + (height - own latency)
        # reaches the total.
        slack = total - (levels[node].hi + heights[node].hi - dag.latency(node).hi)
        if slack == 0:
            critical.append(node)
    return tuple(critical)
