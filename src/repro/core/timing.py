"""Compatibility shim: the interval module lives at :mod:`repro.timing`.

It sits outside the ``core`` package so that low-level packages
(:mod:`repro.ir`, :mod:`repro.barriers`) can use intervals without
triggering the import of the full scheduling machinery.
"""

from repro.timing import Interval, ZERO, interval_max, interval_sum

__all__ = ["Interval", "ZERO", "interval_max", "interval_sum"]
