"""List ordering of instruction nodes (paper section 4.2).

"The nodes are first sorted into a list in descending order using the
maximum height as the key, followed by another sort (on nodes with equal
maximum height) in descending order using the minimum height as the key."

Remaining ties are broken by topological index, which keeps the ordering
deterministic and guarantees producers precede consumers even for
hypothetical zero-latency instructions.  (With the Table 1 instruction
set every producer has strictly larger ``h_max`` than its consumers, so
the height sort alone already places producers first.)

The ``"minmax"`` variant -- minimum height first, maximum height as tie
breaker -- is the ordering ablation of section 5.4, which "attempts to
optimize the minimum execution time".
"""

from __future__ import annotations

from typing import Literal, Mapping, Sequence

from repro.core.labeling import compute_heights
from repro.timing import Interval
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["OrderingKind", "order_nodes"]

OrderingKind = Literal["maxmin", "minmax"]


def order_nodes(
    dag: InstructionDAG,
    kind: OrderingKind = "maxmin",
    heights: Mapping[NodeId, Interval] | None = None,
) -> list[NodeId]:
    """The scheduling list: real nodes in priority order.

    ``kind="maxmin"`` is the paper's default (h_max desc, then h_min desc);
    ``kind="minmax"`` swaps the keys (section 5.4 ablation).
    """
    if heights is None:
        heights = compute_heights(dag)
    topo_index = {node: k for k, node in enumerate(dag.real_nodes)}
    nodes: Sequence[NodeId] = dag.real_nodes

    if kind == "maxmin":
        def key(node: NodeId) -> tuple[int, int, int]:
            h = heights[node]
            return (-h.hi, -h.lo, topo_index[node])
    elif kind == "minmax":
        def key(node: NodeId) -> tuple[int, int, int]:
            h = heights[node]
            return (-h.lo, -h.hi, topo_index[node])
    else:
        raise ValueError(f"unknown ordering kind {kind!r}")

    ordered = sorted(nodes, key=key)
    return ordered
