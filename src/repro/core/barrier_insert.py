"""Barrier insertion: conservative and "optimal" algorithms (section 4.4).

For every producer/consumer edge ``(g, i)`` whose endpoints land on
different processors ``P`` and ``C``, the inserter decides how the
synchronization is discharged:

``SERIALIZED``
    ``g`` and ``i`` share a processor; program order suffices.
``PATH``
    Step [1], *PathFind*: a chain of existing barriers already orders
    ``NextBar(g)`` before ``LastBar(i)``, so ``g`` completes before ``i``
    starts regardless of timing.
``TIMING``
    Steps [2]-[5]: relative to the nearest common dominating barrier
    ``CommonDom(g, i)``, the consumer's earliest start
    ``T_min(i-) = l(psi_min(dom, LastBar(i))) + delta_min(i-)``
    is no earlier than the producer's latest finish
    ``T_max(g) = l(psi_max(dom, LastBar(g))) + delta_max(g)``.
    In ``optimal`` mode the k-longest-path overlap analysis of section
    4.4.2 is applied before giving up: paths to the producer that overlap
    the consumer's min-path cannot take maximum time on one and minimum
    on the other simultaneously.
``BARRIER``
    Step [6]: a new barrier is inserted across ``P`` (after ``g``, or
    after a later instruction ``g+`` whose worst-case execution window
    contains ``T_max(i-)``, letting ``P`` do more work before stalling)
    and across ``C`` (immediately before ``i``).

The same classification logic, made read-only, backs the final
validation sweep in :mod:`repro.core.validate`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.barriers.model import Barrier
from repro.barriers.paths import (
    PathExplosionError,
    iter_longest_max_paths,
    longest_min_path_with_forced_max,
)
from repro.core.merging import merge_new_barrier
from repro.core.schedule import Schedule
from repro.ir.dag import NodeId
from repro.obs.metrics import current_registry, inc, observe
from repro.obs.provenance import (
    BarrierDecision,
    current_recorder,
    record_barrier,
)
from repro.obs.spans import span
from repro.perf.timers import stage

__all__ = [
    "ResolutionKind",
    "EdgeResolution",
    "BarrierInserter",
    "TimingQuantities",
    "classify_edge",
    "choose_safe_placements",
    "timing_quantities",
    "PlacementError",
]


class PlacementError(RuntimeError):
    """No barrier placement for the edge keeps happens-before acyclic."""


def choose_safe_placements(
    schedule,
    g: NodeId,
    i: NodeId,
    preferred_p: int | None = None,
) -> dict[int, int]:
    """Pick stream positions for a barrier enforcing edge ``(g, i)``.

    Correctness only requires the barrier to sit *somewhere after* ``g``
    on the producer's stream and *somewhere before* ``i`` on the
    consumer's.  But any concrete position pair also imposes new
    cross-processor orderings (everything before the barrier on either
    stream precedes everything after it on either stream), and those can
    contradict orderings H already guarantees -- e.g. an instruction
    following ``g`` that happens-before an instruction preceding ``i``.
    Such a contradiction would be an unrepairable inversion, so the
    placement pair is searched: the paper's preferred ``g+`` position
    first (section 4.4.1 step [6]), then later producer-side positions
    (delaying the producer's arrival is always sound), combined with
    consumer-side positions moving earlier from "just before ``i``".

    A safe pair is returned as ``{pe: index}``; :class:`PlacementError`
    is raised if none exists (not observed on any corpus -- the search
    space degenerates only if H is already inconsistent).
    """
    pe_p, pos_g = schedule.position_of(g)
    pe_c, pos_i = schedule.position_of(i)
    p_candidates: list[int] = []
    if preferred_p is not None:
        p_candidates.append(preferred_p)
    p_candidates.extend(
        idx for idx in range(pos_g + 1, len(schedule.streams[pe_p]) + 1)
        if idx not in p_candidates
    )
    for c_idx in range(pos_i, 0, -1):
        for p_idx in p_candidates:
            placements = {pe_p: p_idx, pe_c: c_idx}
            if not schedule.insertion_creates_hb_cycle(placements):
                return placements
    raise PlacementError(
        f"no sound barrier placement for edge {g!r} -> {i!r}"
    )


class ResolutionKind(enum.Enum):
    SERIALIZED = "serialized"
    PATH = "path"
    TIMING = "timing"
    BARRIER = "barrier"


@dataclass(frozen=True, slots=True)
class EdgeResolution:
    """How one producer/consumer edge was discharged."""

    producer: NodeId
    consumer: NodeId
    kind: ResolutionKind
    barrier: Barrier | None = None
    dominator: int | None = None
    #: Resolution leaned on previously *inserted* barriers (the figure 7/8
    #: secondary effect): a PathFind hit, or a timing proof whose producer
    #: or consumer sits past a non-initial barrier.
    secondary: bool = False
    #: The timing proof needed the section 4.4.2 overlap analysis.
    via_optimal: bool = False
    #: Barriers absorbed into the new barrier by SBM merging.
    merges: int = 0
    #: The optimal-mode path walk hit :data:`~repro.barriers.paths.MAX_PATHS`
    #: and the resolution fell back to the conservative verdict.  Surfaced
    #: in :class:`~repro.core.scheduler.SyncCounts` so explosions are
    #: counted instead of silently swallowed.
    explosion: bool = False


@dataclass(frozen=True, slots=True)
class TimingQuantities:
    """The step [2]-[5] quantities for one cross-processor edge, relative
    to the nearest common dominating barrier of ``LastBar(g)`` and
    ``LastBar(i)``.  ``slack`` is the margin of the conservative timing
    proof: how many time units the producer side may run late before the
    proof's inequality ``T_min(i-) >= T_max(g)`` breaks -- the quantity
    the robustness analysis (:mod:`repro.faults.margin`) is built on.
    """

    dom: int
    last_g: int
    last_i: int
    lp_max: int
    lp_min: int
    delta_max_g: int
    delta_min_i: int

    @property
    def t_max_g(self) -> int:
        """Latest producer finish relative to the dominator."""
        return self.lp_max + self.delta_max_g

    @property
    def t_min_i(self) -> int:
        """Earliest consumer start relative to the dominator."""
        return self.lp_min + self.delta_min_i

    @property
    def slack(self) -> int:
        """``t_min_i - t_max_g``; ``>= 0`` iff the conservative proof holds."""
        return self.t_min_i - self.t_max_g


def timing_quantities(schedule: Schedule, g: NodeId, i: NodeId) -> TimingQuantities:
    """Compute the conservative timing-proof quantities for edge ``(g, i)``.

    The endpoints must be scheduled on different processors.
    """
    bd = schedule.barrier_dag()
    dom_tree = schedule.dominator_tree()
    pe_p, pos_g = schedule.position_of(g)
    pe_c, pos_i = schedule.position_of(i)
    last_g = schedule.last_barrier_before(pe_p, pos_g)
    last_i = schedule.last_barrier_before(pe_c, pos_i)
    dom = dom_tree.nearest_common_dominator(last_g.id, last_i.id)

    lp_max = bd.longest_path_max(dom, last_g.id)
    lp_min = bd.longest_path_min(dom, last_i.id)
    assert lp_max is not None and lp_min is not None, "dominator must reach both"

    return TimingQuantities(
        dom=dom,
        last_g=last_g.id,
        last_i=last_i.id,
        lp_max=lp_max,
        lp_min=lp_min,
        delta_max_g=schedule.delta_through_hi(g),
        delta_min_i=schedule.delta_before_lo(pe_c, pos_i),
    )


def _timing_check(
    schedule: Schedule,
    g: NodeId,
    i: NodeId,
    mode: str,
) -> tuple[bool, bool, int, bool]:
    """Steps [2]-[5] (+ section 4.4.2 in ``optimal`` mode).

    Returns ``(resolved, via_optimal, dominator_id, explosion)``.
    """
    q = timing_quantities(schedule, g, i)
    if q.slack >= 0:
        return True, False, q.dom, False

    if mode == "optimal":
        try:
            resolved = _optimal_check(
                schedule.barrier_dag(),
                q.dom,
                q.last_g,
                q.last_i,
                q.delta_max_g,
                q.delta_min_i,
                q.lp_min,
            )
        except PathExplosionError:
            # Fall back to the conservative verdict, but *count* the
            # explosion (EdgeResolution.explosion -> SyncCounts) rather
            # than swallowing it silently.
            inc("paths.explosions")
            return False, False, q.dom, True
        if resolved:
            return True, True, q.dom, False
    return False, False, q.dom, False


def _optimal_check(
    bd,
    dom: int,
    v: int,
    w: int,
    delta_max_g: int,
    delta_min_i: int,
    base_min: int,
) -> bool:
    """Section 4.4.2: walk the k longest max-paths ``dom -> LastBar(g)``.

    For each path, the consumer min-path is recomputed with the path's
    edges forced to maximum time; if even then the producer can finish
    after the consumer starts, a barrier is required.  The walk stops as
    soon as a path satisfies the *plain* condition, since all shorter
    paths then satisfy it too -- and because the paths arrive *lazily*
    from the best-first generator, stopping early means the (possibly
    exponential) path set is never materialized; only a genuinely long
    walk can hit :class:`PathExplosionError`.
    """
    rhs_plain = base_min + delta_min_i
    expanded = 0
    try:
        with span("paths.klp"):
            for length, path in iter_longest_max_paths(bd, dom, v):
                expanded += 1
                lhs = length + delta_max_g
                if lhs <= rhs_plain:
                    return True  # this and every shorter path is harmless
                edges = tuple(zip(path, path[1:]))
                adjusted = longest_min_path_with_forced_max(bd, dom, w, edges)
                assert adjusted is not None
                if lhs <= adjusted + delta_min_i:
                    continue  # overlap covers this path; check the next
                return False
            return True
    finally:
        reg = current_registry()
        if reg is not None:
            reg.inc("paths.expanded", expanded)
            reg.observe("paths.walk_length", expanded)


def classify_edge(
    schedule: Schedule, g: NodeId, i: NodeId, mode: str = "conservative"
) -> EdgeResolution:
    """Read-only resolution of edge ``(g, i)`` against the current schedule.

    Returns a :class:`EdgeResolution` whose kind is ``BARRIER`` when a new
    barrier *would be* required (none is inserted here).
    """
    pe_p, pos_g = schedule.position_of(g)
    pe_c, pos_i = schedule.position_of(i)
    if pe_p == pe_c:
        if pos_g >= pos_i:
            raise ValueError(
                f"consumer {i!r} precedes its producer {g!r} on PE {pe_p}"
            )
        return EdgeResolution(g, i, ResolutionKind.SERIALIZED)

    bd = schedule.barrier_dag()
    next_g = schedule.next_barrier_after(pe_p, pos_g)
    last_i = schedule.last_barrier_before(pe_c, pos_i)
    if next_g is not None and bd.has_path(next_g.id, last_i.id):
        return EdgeResolution(g, i, ResolutionKind.PATH, secondary=True)

    resolved, via_optimal, dom, explosion = _timing_check(schedule, g, i, mode)
    if resolved:
        last_g = schedule.last_barrier_before(pe_p, pos_g)
        secondary = not (last_g.is_initial and last_i.is_initial)
        return EdgeResolution(
            g,
            i,
            ResolutionKind.TIMING,
            dominator=dom,
            secondary=secondary,
            via_optimal=via_optimal,
        )
    return EdgeResolution(
        g, i, ResolutionKind.BARRIER, dominator=dom, explosion=explosion
    )


@dataclass
class BarrierInserter:
    """Stateful edge resolver that inserts (and optionally merges) barriers."""

    schedule: Schedule
    mode: str = "conservative"
    merge: bool = False
    resolutions: list[EdgeResolution] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.mode not in ("conservative", "optimal"):
            raise ValueError(f"unknown insertion mode {self.mode!r}")

    def ensure_edge(self, g: NodeId, i: NodeId) -> EdgeResolution:
        """Resolve edge ``(g, i)``, inserting a barrier if required."""
        verdict = classify_edge(self.schedule, g, i, self.mode)
        inc(f"scheduler.resolution.{verdict.kind.value}")
        if verdict.kind is not ResolutionKind.BARRIER:
            self.resolutions.append(verdict)
            return verdict

        # When a provenance recorder is watching, capture the failed
        # timing proof (read-only) before the insertion perturbs it.
        quantities = (
            timing_quantities(self.schedule, g, i)
            if current_recorder() is not None
            else None
        )
        with stage("insert"):
            barrier, merges = self._insert(g, i, verdict.dominator)
        inc("scheduler.barriers_inserted")
        if quantities is not None:
            record_barrier(
                BarrierDecision(
                    barrier_id=barrier.id,
                    producer=g,
                    consumer=i,
                    dominator=quantities.dom,
                    t_max_g=quantities.t_max_g,
                    t_min_i=quantities.t_min_i,
                    slack=quantities.slack,
                    participants=tuple(sorted(barrier.participants)),
                    merges=merges,
                    explosion=verdict.explosion,
                )
            )
        outcome = EdgeResolution(
            g,
            i,
            ResolutionKind.BARRIER,
            barrier=barrier,
            dominator=verdict.dominator,
            merges=merges,
            explosion=verdict.explosion,
        )
        self.resolutions.append(outcome)
        return outcome

    # -- step [6]: placement ---------------------------------------------------

    def _insert(self, g: NodeId, i: NodeId, dom: int | None) -> tuple[Barrier, int]:
        schedule = self.schedule
        bd = schedule.barrier_dag()
        pe_p, pos_g = schedule.position_of(g)
        pe_c, pos_i = schedule.position_of(i)
        last_g = schedule.last_barrier_before(pe_p, pos_g)
        last_i = schedule.last_barrier_before(pe_c, pos_i)
        if dom is None:
            dom = schedule.dominator_tree().nearest_common_dominator(
                last_g.id, last_i.id
            )

        t_max_g = (bd.longest_path_max(dom, last_g.id) or 0) + schedule.delta_through_hi(g)
        t_max_i_minus = (
            (bd.longest_path_max(dom, last_i.id) or 0)
            + schedule.delta_before_hi(pe_c, pos_i)
        )

        insert_at_p = pos_g + 1
        if t_max_i_minus > t_max_g:
            # Let the producer processor run further: advance the insertion
            # point past instructions whose worst-case start is still no
            # later than the consumer side's worst-case arrival.
            cum = t_max_g
            stream = schedule.streams[pe_p]
            for idx in range(pos_g + 1, len(stream)):
                item = stream[idx]
                if isinstance(item, Barrier):
                    break
                start_q = cum
                cum += schedule.dag.latency(item).hi
                if start_q <= t_max_i_minus:
                    insert_at_p = idx + 1
                else:
                    break

        placements = choose_safe_placements(schedule, g, i, preferred_p=insert_at_p)
        barrier = schedule.insert_barrier(placements)
        if not self.merge:
            return barrier, 0
        with stage("merge"):
            merges = merge_new_barrier(schedule, barrier)
        return barrier, merges
