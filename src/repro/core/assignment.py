"""Node-to-processor assignment policies (paper sections 4.3 and 5.4).

The default :class:`ListPolicy` implements section 4.3:

[1] Compute ``ProdProc(i)``, the processors hosting producers of ``i``.
    Among those, find the processors whose *last scheduled instruction*
    is a producer of ``i`` (an open "serialization slot").  Exactly one
    such processor: take it.  Several: take the one with the largest
    current maximum completion time ("to possibly avoid inserting a
    barrier"); full ties are broken at random.

[2] Otherwise assign ``i`` to a processor on which it can start as early
    as possible (estimated from producer finish times and processor
    completion times); ties are again broken at random, which "helps
    balance the number of nodes assigned to each processor".

:class:`RoundRobinPolicy` (section 5.4) assigns the k-th list node to
processor ``k mod N`` -- the ablation that makes the serialization
fraction "nearly vanish" and pushes the barrier fraction toward 50%.

:class:`LookaheadPolicy` (section 5.4) wraps the list policy with a
window of size ``p``: a step-[2] placement that would fill another
pending node's open serialization slot is diverted to the next-best
processor when possible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro import kernels
from repro.core.schedule import Schedule
from repro.ir.dag import NodeId
from repro.obs.provenance import record_assignment

__all__ = [
    "AssignmentPolicy",
    "ListPolicy",
    "RoundRobinPolicy",
    "LookaheadPolicy",
    "make_policy",
]


class AssignmentPolicy(Protocol):
    """Strategy interface: pick the processor for the next list node."""

    def choose(
        self,
        schedule: Schedule,
        node: NodeId,
        list_index: int,
        upcoming: Sequence[NodeId],
        rng: random.Random,
    ) -> int:
        """Return the processor index for ``node``.

        ``list_index`` is the node's position in the scheduling list and
        ``upcoming`` the nodes that follow it (used by lookahead).
        """
        ...


def _ready_time_hi(schedule: Schedule, node: NodeId, pe: int) -> int:
    """Worst-case time at which ``node``'s cross-processor operands are
    available if ``node`` runs on ``pe`` (same-processor producers are
    ordered by the stream itself)."""
    ready = 0
    for g in schedule.dag.real_preds(node):
        if schedule.processor_of(g) != pe:
            ready = max(ready, schedule.global_finish_hi(g))
    return ready


def _earliest_start_estimate(schedule: Schedule, node: NodeId, pe: int) -> int:
    """Worst-case estimated start of ``node`` on ``pe`` (step [2] metric)."""
    return max(schedule.completion_hi(pe), _ready_time_hi(schedule, node, pe))


def serialization_candidates(schedule: Schedule, node: NodeId) -> list[int]:
    """Producer processors whose last instruction is a producer of ``node``."""
    producer_pes = {
        schedule.processor_of(g) for g in schedule.dag.real_preds(node)
    }
    return [
        pe
        for pe in sorted(producer_pes)
        if schedule.last_instruction_on(pe) in set(schedule.dag.real_preds(node))
    ]


@dataclass
class ListPolicy:
    """The paper's default assignment heuristic (section 4.3).

    ``serialization_slack`` is an extension knob (0 = the paper's exact
    rule): in step [2], a producer processor whose estimated start is
    within ``slack`` time units of the global best is preferred over a
    foreign processor.  Small positive values trade a slightly longer
    worst-case makespan for noticeably fewer barriers (see the
    serialization-slack ablation bench and EXPERIMENTS.md).
    """

    serialization_slack: int = 0

    def choose(
        self,
        schedule: Schedule,
        node: NodeId,
        list_index: int,
        upcoming: Sequence[NodeId],
        rng: random.Random,
    ) -> int:
        pe = self._step1(schedule, node, rng)
        if pe is not None:
            return pe
        return self._step2(schedule, node, rng)

    # Step [1]: serialization-preferring placement.
    def _step1(self, schedule: Schedule, node: NodeId, rng: random.Random) -> int | None:
        candidates = serialization_candidates(schedule, node)
        if not candidates:
            return None
        if len(candidates) == 1:
            record_assignment(
                node, candidates[0], "serialization", candidates=candidates
            )
            return candidates[0]
        best_hi = max(schedule.completion_hi(pe) for pe in candidates)
        top = [pe for pe in candidates if schedule.completion_hi(pe) == best_hi]
        pe = top[0] if len(top) == 1 else rng.choice(top)
        record_assignment(
            node, pe, "serialization", candidates=candidates, ties=top
        )
        return pe

    # Step [2]: earliest-start placement.
    def _step2(self, schedule: Schedule, node: NodeId, rng: random.Random) -> int:
        if kernels.use_numpy("assign", schedule.n_pes):
            from repro.kernels import assignvec

            with kernels.timed("assign", "numpy"):
                best, ties, vec = assignvec.step2_estimates(schedule, node)
            if kernels.checking():
                kernels.verify(
                    "assign",
                    vec.tolist(),
                    [
                        _earliest_start_estimate(schedule, node, pe)
                        for pe in range(schedule.n_pes)
                    ],
                )
            get_est = lambda pe: int(vec[pe])  # noqa: E731
        else:
            with kernels.timed("assign", "python"):
                estimates = [
                    _earliest_start_estimate(schedule, node, pe)
                    for pe in range(schedule.n_pes)
                ]
                best = min(estimates)
                ties = [pe for pe, est in enumerate(estimates) if est == best]
            get_est = estimates.__getitem__
        if self.serialization_slack > 0:
            producer_pes = sorted(
                {schedule.processor_of(g) for g in schedule.dag.real_preds(node)}
            )
            close = [
                (get_est(pe), pe)
                for pe in producer_pes
                if get_est(pe) <= best + self.serialization_slack
            ]
            if close:
                est, pe = min(close)
                record_assignment(
                    node, pe, "slack-serialization", estimate=est, best=best
                )
                return pe
        pe = ties[0] if len(ties) == 1 else rng.choice(ties)
        record_assignment(node, pe, "earliest-start", estimate=best, ties=ties)
        return pe


@dataclass
class RoundRobinPolicy:
    """Section 5.4 ablation: the i-th list node goes to processor i mod N."""

    def choose(
        self,
        schedule: Schedule,
        node: NodeId,
        list_index: int,
        upcoming: Sequence[NodeId],
        rng: random.Random,
    ) -> int:
        pe = list_index % schedule.n_pes
        record_assignment(node, pe, "roundrobin", list_index=list_index)
        return pe


@dataclass
class LookaheadPolicy:
    """Section 5.4 ablation: protect upcoming serialization opportunities.

    When the inner list policy resolves via step [2] (no serialization for
    the current node), examine the next ``window`` list nodes; if the
    chosen processor's last instruction is a producer of one of them --
    an open slot the placement would destroy -- divert to the
    earliest-start processor that does not conflict, when one exists.
    """

    window: int = 4
    inner: ListPolicy = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("lookahead window must be >= 1")
        if self.inner is None:
            self.inner = ListPolicy()

    def choose(
        self,
        schedule: Schedule,
        node: NodeId,
        list_index: int,
        upcoming: Sequence[NodeId],
        rng: random.Random,
    ) -> int:
        serial = self.inner._step1(schedule, node, rng)
        if serial is not None:
            return serial  # the node's own serialization always wins
        default = self.inner._step2(schedule, node, rng)
        if not self._conflicts(schedule, node, default, upcoming):
            return default

        # Divert to the best non-conflicting processor, if any.
        alternatives = sorted(
            (
                (_earliest_start_estimate(schedule, node, pe), pe)
                for pe in range(schedule.n_pes)
                if pe != default
                and not self._conflicts(schedule, node, pe, upcoming)
            ),
        )
        if alternatives:
            est, pe = alternatives[0]
            record_assignment(
                node, pe, "lookahead-divert", diverted_from=default, estimate=est
            )
            return pe
        return default

    def _conflicts(
        self,
        schedule: Schedule,
        node: NodeId,
        pe: int,
        upcoming: Sequence[NodeId],
    ) -> bool:
        last = schedule.last_instruction_on(pe)
        if last is None:
            return False
        for waiting in upcoming[: self.window]:
            if last in schedule.dag.real_preds(waiting):
                return True
        return False


def make_policy(
    name: str,
    lookahead: int = 0,
    serialization_slack: int = 0,
) -> AssignmentPolicy:
    """Factory used by :class:`~repro.core.scheduler.SchedulerConfig`."""
    if name == "list":
        inner = ListPolicy(serialization_slack=serialization_slack)
        if lookahead > 0:
            return LookaheadPolicy(window=lookahead, inner=inner)
        return inner
    if name == "roundrobin":
        return RoundRobinPolicy()
    raise ValueError(f"unknown assignment policy {name!r}")
