"""Top-level list scheduler for barrier MIMDs (paper section 4).

:func:`schedule_dag` runs the two scheduling phases -- height-based list
ordering followed by processor assignment with on-the-fly barrier
insertion -- and returns a :class:`ScheduleResult` bundling the finished
schedule, the per-edge resolutions, and the synchronization statistics
that the paper's evaluation (section 5) is built on.

Every architectural and heuristic knob of the paper is a field of
:class:`SchedulerConfig`:

=================  ============================================================
``n_pes``          machine size, 2..128 in the paper's sweeps
``machine``        ``"sbm"`` (merging on, total barrier order) or ``"dbm"``
``insertion``      ``"conservative"`` (used for all the paper's experiments)
                   or ``"optimal"`` (section 4.4.2)
``ordering``       ``"maxmin"`` (default) or ``"minmax"`` (section 5.4)
``assignment``     ``"list"`` (default) or ``"roundrobin"`` (section 5.4)
``lookahead``      window size ``p`` for the section 5.4 lookahead variant
``seed``           drives the random tie-breaking of section 4.3
=================  ============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Literal

if TYPE_CHECKING:  # upper layer; imported lazily in schedule_dag
    from repro.hybrid.plan import HybridPlan

from repro.core.assignment import make_policy
from repro.core.barrier_insert import BarrierInserter, EdgeResolution, ResolutionKind
from repro.core.labeling import compute_heights
from repro.core.ordering import order_nodes
from repro.core.schedule import Schedule
from repro.timing import Interval
from repro.core.validate import finalize_schedule
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["SchedulerConfig", "SyncCounts", "ScheduleResult", "schedule_dag"]


@dataclass(frozen=True)
class SchedulerConfig:
    """All knobs of the scheduling pipeline (see module docstring)."""

    n_pes: int = 8
    machine: Literal["sbm", "dbm"] = "sbm"
    insertion: Literal["conservative", "optimal"] = "conservative"
    ordering: Literal["maxmin", "minmax"] = "maxmin"
    assignment: Literal["list", "roundrobin"] = "list"
    #: ``"static"`` is the paper's compiler.  ``"hybrid"`` additionally
    #: classifies every timing-proved edge against the ``hybrid_epsilon``
    #: budget and demotes the fragile ones to dynamic data guards
    #: (:mod:`repro.hybrid`).  The schedule itself is identical either
    #: way -- hybrid mode only attaches a guard plan to the result.
    mode: Literal["static", "hybrid"] = "static"
    #: Uniform overrun (ε) a hybrid compile must survive; 0 demotes nothing.
    hybrid_epsilon: float = 0.0
    lookahead: int = 0
    #: Extension (0 = paper's exact step [2]): prefer a producer processor
    #: whose estimated start is within this many time units of the best.
    serialization_slack: int = 0
    seed: int = 0
    #: Extra release latency per barrier (0 = paper's ideal hardware;
    #: see the barrier-cost experiment).
    barrier_latency: int = 0
    #: None -> merge iff machine == "sbm" (the paper merges only for SBM).
    merge_barriers: bool | None = None
    #: Re-validate every edge on the finished schedule (cheap; keep on).
    validate: bool = True

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if self.machine not in ("sbm", "dbm"):
            raise ValueError(f"unknown machine kind {self.machine!r}")
        if self.mode not in ("static", "hybrid"):
            raise ValueError(f"unknown scheduling mode {self.mode!r}")
        if self.hybrid_epsilon < 0:
            raise ValueError("hybrid_epsilon must be >= 0")
        if self.lookahead < 0:
            raise ValueError("lookahead must be >= 0")
        if self.barrier_latency < 0:
            raise ValueError("barrier_latency must be >= 0")

    @property
    def merging_enabled(self) -> bool:
        if self.merge_barriers is not None:
            return self.merge_barriers
        return self.machine == "sbm"

    def with_(self, **changes) -> "SchedulerConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class SyncCounts:
    """Raw synchronization counts for one schedule (section 3.1 terms)."""

    total_edges: int
    serialized_edges: int
    path_edges: int
    timing_edges: int
    barrier_edges: int  # edges whose resolution inserted a barrier
    barriers_final: int  # distinct barriers in the schedule (post-merging)
    merges: int
    secondary_resolutions: int
    optimal_rescues: int
    repairs: int
    #: Optimal-mode path walks that hit the MAX_PATHS cap and fell back to
    #: the conservative verdict (0 in conservative mode by construction).
    path_explosions: int = 0

    @property
    def static_edges(self) -> int:
        """Edges discharged without serialization or a dedicated barrier."""
        return self.path_edges + self.timing_edges


@dataclass(frozen=True)
class ScheduleResult:
    """A finished schedule plus everything the experiments measure."""

    schedule: Schedule
    config: SchedulerConfig
    counts: SyncCounts
    resolutions: tuple[EdgeResolution, ...]
    list_order: tuple[NodeId, ...]
    #: Guard plan of a ``mode="hybrid"`` compile (``None`` for static).
    #: The schedule above is identical in both modes; the plan only says
    #: which timing edges the runtime must additionally guard.
    hybrid: "HybridPlan | None" = None

    @property
    def makespan(self) -> Interval:
        return self.schedule.makespan()

    @property
    def n_barriers(self) -> int:
        return self.counts.barriers_final

    def describe(self) -> str:
        c = self.counts
        return (
            f"{self.config.n_pes} PEs {self.config.machine.upper()}: "
            f"{c.total_edges} syncs = {c.serialized_edges} serial "
            f"+ {c.static_edges} static + {c.barrier_edges} barrier-edges "
            f"({c.barriers_final} barriers after {c.merges} merges), "
            f"makespan {self.makespan}"
        )


def schedule_dag(
    dag: InstructionDAG,
    config: SchedulerConfig | None = None,
    heights: dict[NodeId, Interval] | None = None,
) -> ScheduleResult:
    """Schedule an instruction DAG onto a barrier MIMD.

    Phases (section 4): label nodes with min/max heights, sort them into
    the scheduling list, then assign each node to a processor and resolve
    each of its incoming producer edges -- inserting (and, for the SBM,
    merging) barriers where static timing cannot discharge them.

    ``heights`` accepts precomputed node labels (the batched driver
    labels a whole corpus chunk in one relaxation); ``None`` computes
    them here.
    """
    config = config or SchedulerConfig()
    schedule, inserter, order = _list_schedule(dag, config, heights)

    repairs = 0
    final_merges = 0
    if config.validate:
        repairs, final_merges = finalize_schedule(
            schedule, config.insertion, merge=config.merging_enabled
        )

    return _assemble_result(
        schedule, config, inserter, order, repairs, final_merges
    )


def _list_schedule(
    dag: InstructionDAG,
    config: SchedulerConfig,
    heights: dict[NodeId, Interval] | None = None,
) -> tuple[Schedule, BarrierInserter, list[NodeId]]:
    """The list-scheduling phases up to (not including) finalization."""
    if heights is None:
        heights = compute_heights(dag)
    order = order_nodes(dag, config.ordering, heights)
    schedule = Schedule(dag, config.n_pes, config.barrier_latency)
    policy = make_policy(
        config.assignment, config.lookahead, config.serialization_slack
    )
    rng = random.Random(config.seed)
    inserter = BarrierInserter(
        schedule, mode=config.insertion, merge=config.merging_enabled
    )

    for index, node in enumerate(order):
        upcoming = order[index + 1:] if config.lookahead else ()
        pe = policy.choose(schedule, node, index, upcoming, rng)
        schedule.append_instruction(pe, node)
        # Resolve this consumer's incoming edges, most constraining
        # producer first so its barrier can discharge the others (the
        # figure 7/8 secondary effect).
        producers = sorted(
            dag.real_preds(node),
            key=lambda g: (-schedule.global_finish_hi(g), str(g)),
        )
        for g in producers:
            inserter.ensure_edge(g, node)

    return schedule, inserter, order


def _assemble_result(
    schedule: Schedule,
    config: SchedulerConfig,
    inserter: BarrierInserter,
    order: list[NodeId],
    repairs: int,
    final_merges: int,
) -> ScheduleResult:
    """Tally a finalized schedule into the :class:`ScheduleResult`."""
    resolutions = tuple(inserter.resolutions)
    counts = _tally(schedule, resolutions, repairs, final_merges)

    hybrid = None
    if config.mode == "hybrid":
        # Upper-layer import kept local so the core scheduler has no
        # static dependency on the hybrid/faults machinery.
        from repro.hybrid.plan import hybridize_schedule

        hybrid = hybridize_schedule(
            schedule, config.hybrid_epsilon, config.insertion
        )

    return ScheduleResult(
        schedule, config, counts, resolutions, tuple(order), hybrid
    )


def _tally(
    schedule: Schedule,
    resolutions: tuple[EdgeResolution, ...],
    repairs: int,
    final_merges: int = 0,
) -> SyncCounts:
    by_kind = {kind: 0 for kind in ResolutionKind}
    merges = 0
    secondary = 0
    rescues = 0
    explosions = 0
    for r in resolutions:
        by_kind[r.kind] += 1
        merges += r.merges
        if r.secondary:
            secondary += 1
        if r.via_optimal:
            rescues += 1
        if r.explosion:
            explosions += 1
    return SyncCounts(
        total_edges=len(resolutions),
        serialized_edges=by_kind[ResolutionKind.SERIALIZED],
        path_edges=by_kind[ResolutionKind.PATH],
        timing_edges=by_kind[ResolutionKind.TIMING],
        barrier_edges=by_kind[ResolutionKind.BARRIER],
        barriers_final=schedule.n_barriers,
        merges=merges + final_merges,
        secondary_resolutions=secondary,
        optimal_rescues=rescues,
        repairs=repairs,
        path_explosions=explosions,
    )
