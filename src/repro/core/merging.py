"""SBM barrier merging (paper section 4.4.3).

"If the execution time range of the new barrier overlaps with any other
barriers currently scheduled, and if the overlapping barriers are not
ordered with respect to the barrier dag, then they are merged into a
single barrier."

Merging is required for the *static* barrier MIMD, whose hardware executes
barriers from a FIFO queue in one compile-time total order: two unordered
barriers whose fire-time windows overlap could arrive in either order at
run time, so the SBM fuses them into one wider barrier.  (The dynamic
barrier MIMD's associative matching hardware handles either order, so DBM
schedules skip this step.)

Orderedness is judged against the full **happens-before graph H**
(:meth:`repro.core.schedule.Schedule.hb_barrier_ordered`): stream
adjacency plus every committed producer/consumer data edge.  The bare
barrier dag is too weak a test -- two barriers can be dag-unordered yet
forced into one run-time order by an instruction edge that was discharged
by *timing*, and merging such a pair would demand the consumer's region
complete before its producer's, an unrepairable inversion.  H-unordered
pairs are genuinely concurrent, so merging them is always sound (possibly
after a cheap revalidation, since a merge can still *delay* a producer --
the finalization loop in :mod:`repro.core.validate` handles that).

Two structural facts keep the operation well-defined:

* H-unordered barriers never share a processor (a shared processor's
  stream would chain them), so participant sets union disjointly;
* merging two H-unordered nodes cannot create a cycle in H (a path
  between the merge partners would have made them ordered).
"""

from __future__ import annotations

from repro import kernels
from repro.barriers.model import Barrier
from repro.core.schedule import Schedule
from repro.obs.metrics import current_registry
from repro.obs.provenance import current_recorder, record_merge
from repro.obs.spans import span

__all__ = [
    "merge_new_barrier",
    "find_merge_candidate",
    "merge_all_overlapping",
]


def find_merge_candidate(schedule: Schedule, barrier: Barrier) -> Barrier | None:
    """The first scheduled barrier that is H-unordered with ``barrier``
    and whose fire-time interval overlaps it, or ``None``."""
    fire = schedule.fire_times()
    window = fire[barrier.id]
    reg = current_registry()
    rec = current_recorder()
    for other in schedule.barriers():
        if other is barrier:
            continue
        if schedule.hb_barrier_ordered(barrier.id, other.id):
            if reg is not None:
                reg.inc("merge.verdict.recomputed")
                reg.inc("merge.verdict.ordered")
            if rec is not None:
                record_merge("insert", barrier.id, other.id, False, "hb-ordered")
            continue
        if reg is not None:
            reg.inc("merge.verdict.recomputed")
        if window.overlaps(fire[other.id]):
            return other
        if reg is not None:
            reg.inc("merge.verdict.disjoint")
        if rec is not None:
            record_merge(
                "insert", barrier.id, other.id, False, "windows-disjoint"
            )
    return None


def merge_new_barrier(schedule: Schedule, barrier: Barrier) -> int:
    """Merge every eligible barrier into ``barrier``; return how many were
    absorbed.  ``barrier`` survives and widens."""
    absorbed = 0
    reg = current_registry()
    while True:
        other = find_merge_candidate(schedule, barrier)
        if other is None:
            return absorbed
        if reg is not None:
            reg.inc("merge.verdict.merged")
        record_merge("insert", barrier.id, other.id, True, "unordered-overlap")
        barrier.absorb(other)
        schedule.replace_barrier(other, barrier)
        absorbed += 1


def merge_all_overlapping(schedule: Schedule) -> int:
    """Global merge sweep: fuse *every* H-unordered,
    fire-window-overlapping barrier pair, to a fixpoint; return the number
    of merges performed.

    Per-insertion merging only examines the barrier just inserted, but a
    later insertion can shift other barriers' fire windows and re-create
    an overlap between two older barriers.  The SBM requires the invariant
    globally -- it is what makes the happens-before-consistent FIFO queue
    free of head-of-line blocking -- so the scheduler runs this sweep when
    an SBM schedule is finalized.

    The sweep is a worklist, not a full O(B^2) re-scan per merge: pair
    verdicts are cached and only invalidated when they can actually flip.
    An "H-ordered" verdict is permanent (merging only ever *adds* order:
    any path through the victim is preserved through the survivor), and a
    "fire windows disjoint" verdict holds as long as both barriers' fire
    values are unchanged.  Each round still walks pairs in the same
    id-sorted order as the naive scan and a cached verdict is skipped
    exactly when re-testing would reach the same conclusion, so the merge
    *sequence* -- and therefore the surviving barrier set -- is identical
    to the full-rescan fixpoint.
    """
    absorbed = 0
    fire = schedule.fire_times()
    ordered: set[tuple[int, int]] = set()  # permanent verdicts
    disjoint: set[tuple[int, int]] = set()  # valid while both windows hold
    reg = current_registry()
    rec = current_recorder()
    rounds = 0
    while True:
        rounds += 1
        with span("merge.round", round=rounds):
            barriers = schedule.barriers()
            pair: tuple[Barrier, Barrier] | None = None
            # The matrix kernel recomputes the whole round at once --
            # equivalent to the cached scan because "ordered" verdicts
            # are permanent and "disjoint" ones hold while fires do.
            # Provenance wants one record per rejected pair, so an
            # active recorder keeps the python scan.
            if rec is None and kernels.use_numpy("merge", len(barriers)):
                from repro.kernels import mergemat

                with kernels.timed("merge", "numpy"):
                    ids = [b.id for b in barriers]
                    found = mergemat.first_candidate(
                        ids,
                        [fire[bid].lo for bid in ids],
                        [fire[bid].hi for bid in ids],
                        schedule.hb_barrier_descendants(),
                    )
                if kernels.checking():
                    kernels.verify(
                        "merge",
                        found,
                        _first_candidate_python(schedule, barriers, fire),
                    )
                if reg is not None:
                    reg.inc("merge.verdict.matrix_rounds")
                if found is not None:
                    pair = (barriers[found[0]], barriers[found[1]])
            else:
                with kernels.timed("merge", "python"):
                    pair = _scan_round(
                        schedule, barriers, fire, ordered, disjoint, reg, rec
                    )
            if pair is None:
                return absorbed
            survivor, victim = pair
            if reg is not None:
                reg.inc("merge.verdict.merged")
            record_merge(
                "finalize", survivor.id, victim.id, True, "unordered-overlap"
            )
            survivor.absorb(victim)
            schedule.replace_barrier(victim, survivor)
            absorbed += 1
        old_fire = fire
        fire = schedule.fire_times()
        dirty = {victim.id, survivor.id}
        dirty.update(
            bid for bid, window in fire.items() if old_fire.get(bid) != window
        )
        ordered = {
            (x, y) for (x, y) in ordered if x != victim.id and y != victim.id
        }
        disjoint = {
            (x, y) for (x, y) in disjoint if x not in dirty and y not in dirty
        }


def _first_candidate_python(schedule, barriers, fire):
    """Cache-free reference scan for the matrix kernel's cross-check:
    position pair of the round's first H-unordered overlapping pair."""
    for a_idx, a in enumerate(barriers):
        for b_idx in range(a_idx + 1, len(barriers)):
            b = barriers[b_idx]
            if schedule.hb_barrier_ordered(a.id, b.id):
                continue
            if fire[a.id].overlaps(fire[b.id]):
                return (a_idx, b_idx)
    return None


def _scan_round(schedule, barriers, fire, ordered, disjoint, reg, rec):
    """One python round of the worklist scan (the canonical path):
    returns the first mergeable pair, updating the verdict caches."""
    for a_idx, a in enumerate(barriers):
        for b in barriers[a_idx + 1:]:
            key = (a.id, b.id)
            if key in ordered or key in disjoint:
                if reg is not None:
                    reg.inc("merge.verdict.cached")
                continue
            if reg is not None:
                reg.inc("merge.verdict.recomputed")
            if schedule.hb_barrier_ordered(a.id, b.id):
                if reg is not None:
                    reg.inc("merge.verdict.ordered")
                if rec is not None:
                    record_merge("finalize", a.id, b.id, False, "hb-ordered")
                ordered.add(key)
                continue
            if fire[a.id].overlaps(fire[b.id]):
                return (a, b)
            if reg is not None:
                reg.inc("merge.verdict.disjoint")
            if rec is not None:
                record_merge("finalize", a.id, b.id, False, "windows-disjoint")
            disjoint.add(key)
    return None
