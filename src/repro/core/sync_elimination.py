"""EXTENSION: timing-based synchronization removal for conventional MIMDs.

The paper's conclusion proposes "the possible application of the barrier
scheduling techniques to remove some synchronizations in conventional
MIMD architectures" (section 7).  This module implements that idea.

Setting: a conventional MIMD runs the same processor assignment the
barrier scheduler produced, but with **directed** producer/consumer
synchronizations (flags/messages) instead of barriers -- one per
cross-processor DAG edge, as in figure 3.  Prior art removes directed
syncs implied by the *structure* of the task graph (Shaffer's transitive
reduction, already available in :mod:`repro.machine.mimd`).  The paper's
insight is that `[min,max]` **timing** knowledge removes more:

    a directed sync ``(g, i)`` is redundant if, under the remaining
    synchronizations alone, the earliest possible start of ``i`` is no
    earlier than the latest possible finish of ``g``.

Without barriers there is no re-zeroing of skew, so bounds are computed
from machine start over the *sync graph* (per-processor program-order
chains plus the retained directed edges):

    ``start(i) = join(finish(prev on PE), finish(g') + L for retained
    (g', i))``, all in interval arithmetic.

These global bounds are valid in every execution (each processor starts
at time 0; a lower bound can only be under-approached, an upper bound
over-approached), so the removal test is sound -- conservative exactly
where the barrier machinery would also have been (shared-chain
correlations are not exploited).

The elimination is greedy-iterative: candidates are examined
most-slack-first; each removal relaxes start times (they can only get
*earlier*), so bounds are recomputed before testing the next candidate.
The result is verified two ways in the test suite: analytically (every
removed edge re-checked against the final retained set) and dynamically
(randomized-duration executions of the reduced-sync machine).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.machine.durations import DurationSampler, UniformSampler
from repro.timing import Interval, ZERO
from repro.ir.dag import NodeId

__all__ = [
    "SyncEliminationResult",
    "compute_sync_bounds",
    "eliminate_directed_syncs",
    "simulate_directed",
]


def _per_pe_chains(schedule: Schedule) -> dict[NodeId, NodeId]:
    """``node -> predecessor on the same processor`` (program order)."""
    prev: dict[NodeId, NodeId] = {}
    for pe in range(schedule.n_pes):
        chain = schedule.instructions_on(pe)
        for a, b in zip(chain, chain[1:]):
            prev[b] = a
    return prev


def _topo_nodes(schedule: Schedule, retained: set[tuple[NodeId, NodeId]]):
    """Topological order of the sync graph (chains + retained edges)."""
    preds: dict[NodeId, list[NodeId]] = {
        n: [] for pe in range(schedule.n_pes) for n in schedule.instructions_on(pe)
    }
    for b, a in _per_pe_chains(schedule).items():
        preds[b].append(a)
    for g, i in retained:
        preds[i].append(g)
    in_deg = {n: len(ps) for n, ps in preds.items()}
    succs: dict[NodeId, list[NodeId]] = {n: [] for n in preds}
    for n, ps in preds.items():
        for p in ps:
            succs[p].append(n)
    frontier = [n for n, d in in_deg.items() if d == 0]
    order = []
    while frontier:
        n = frontier.pop()
        order.append(n)
        for s in succs[n]:
            in_deg[s] -= 1
            if in_deg[s] == 0:
                frontier.append(s)
    if len(order) != len(preds):
        raise ValueError("sync graph is cyclic: invalid retained edge set")
    return order, preds


def compute_sync_bounds(
    schedule: Schedule,
    retained: set[tuple[NodeId, NodeId]],
    sync_latency: int = 0,
) -> tuple[dict[NodeId, Interval], dict[NodeId, Interval]]:
    """``(start, finish)`` interval bounds under the retained syncs only."""
    order, preds = _topo_nodes(schedule, retained)
    start: dict[NodeId, Interval] = {}
    finish: dict[NodeId, Interval] = {}
    for node in order:
        ready = ZERO
        for p in preds[node]:
            bound = finish[p]
            # retained edges are always cross-processor, so they never
            # coincide with the program-order chain predecessor
            if sync_latency and (p, node) in retained:
                bound = bound + sync_latency
            ready = ready.join(bound)
        start[node] = ready
        finish[node] = ready + schedule.dag.latency(node)
    return start, finish


@dataclass(frozen=True)
class SyncEliminationResult:
    """Outcome of directed-sync elimination for one schedule."""

    naive: int  # all cross-processor edges
    retained: tuple[tuple[NodeId, NodeId], ...]
    removed: tuple[tuple[NodeId, NodeId], ...]

    @property
    def n_retained(self) -> int:
        return len(self.retained)

    @property
    def removed_fraction(self) -> float:
        return len(self.removed) / self.naive if self.naive else 0.0

    def describe(self) -> str:
        return (
            f"directed syncs: {self.naive} naive -> {self.n_retained} retained "
            f"({self.removed_fraction:.0%} removed by timing)"
        )


def eliminate_directed_syncs(
    schedule: Schedule,
    sync_latency: int = 0,
    start_from: set[tuple[NodeId, NodeId]] | None = None,
) -> SyncEliminationResult:
    """Remove timing-redundant directed synchronizations.

    ``start_from`` optionally restricts the initial sync set (e.g. the
    transitively reduced set from :func:`repro.machine.mimd.directed_sync_counts`,
    to measure how much timing removes *beyond* structure); the default
    is one directed sync per cross-processor DAG edge.

    Every edge not in the retained set is still guaranteed: same-processor
    edges by program order, removed cross edges by the timing proof
    against the final retained set (re-verified at the end).
    """
    cross = [
        (g, i)
        for g, i in schedule.dag.real_edges()
        if schedule.processor_of(g) != schedule.processor_of(i)
    ]
    retained: set[tuple[NodeId, NodeId]] = set(
        cross if start_from is None else start_from
    )
    removed: list[tuple[NodeId, NodeId]] = []

    changed = True
    while changed:
        changed = False
        start, finish = compute_sync_bounds(schedule, retained, sync_latency)
        # most slack first: these removals relax later starts the least
        candidates = sorted(
            retained,
            key=lambda edge: start[edge[1]].lo - finish[edge[0]].hi,
            reverse=True,
        )
        for g, i in candidates:
            trial = retained - {(g, i)}
            trial_start, trial_finish = compute_sync_bounds(
                schedule, trial, sync_latency
            )
            if trial_start[i].lo >= trial_finish[g].hi:
                retained = trial
                removed.append((g, i))
                changed = True
                break  # bounds changed; re-rank remaining candidates

    # Final analytic re-verification of every removed edge.
    start, finish = compute_sync_bounds(schedule, retained, sync_latency)
    for g, i in removed:
        assert start[i].lo >= finish[g].hi, "elimination produced unsound set"

    return SyncEliminationResult(
        naive=len(cross), retained=tuple(sorted(retained, key=str)),
        removed=tuple(removed),
    )


def simulate_directed(
    schedule: Schedule,
    retained: set[tuple[NodeId, NodeId]] | tuple,
    sampler: DurationSampler | None = None,
    rng: random.Random | int | None = None,
    sync_latency: int = 0,
) -> tuple[dict[NodeId, int], dict[NodeId, int]]:
    """Execute the assignment enforcing only the retained directed syncs.

    Returns ``(start, finish)`` times; the caller checks the *full* DAG
    edge set against them (the oracle for the elimination).
    """
    sampler = sampler or UniformSampler()
    if rng is None or isinstance(rng, int):
        rng = random.Random(rng)
    retained_set = set(retained)
    order, preds = _topo_nodes(schedule, retained_set)
    start: dict[NodeId, int] = {}
    finish: dict[NodeId, int] = {}
    for node in order:
        ready = 0
        for p in preds[node]:
            t = finish[p]
            if sync_latency and (p, node) in retained_set:
                t += sync_latency
            ready = max(ready, t)
        start[node] = ready
        finish[node] = ready + sampler.sample(
            node, schedule.dag.latency(node), rng
        )
    return start, finish
