"""Final schedule validation and (defensive) repair.

The list scheduler discharges each producer/consumer edge at the moment
the consumer is placed.  Barriers inserted *later* can only delay events
(they add arrival constraints), and the step-[6] ``g+`` placement rule is
designed so the producer side's worst-case times do not grow; still, to
make soundness a checked invariant rather than an argument, every
completed schedule is re-validated edge by edge against its *final*
barrier dag:

* every real node is scheduled exactly once and same-processor edges
  respect stream order;
* every cross-processor edge is discharged structurally (PathFind) or by
  the conservative/optimal timing proof.

If a violation is ever found (counter exposed; observed 0 across the
corpus -- see EXPERIMENTS.md), :func:`repair_schedule` inserts a plain
barrier right after the producer / right before the consumer and
re-validates, which terminates because structurally-discharged edges stay
discharged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.barrier_insert import ResolutionKind, choose_safe_placements, classify_edge
from repro.core.merging import merge_all_overlapping
from repro.core.schedule import Schedule
from repro.ir.dag import NodeId
from repro.perf.timers import stage

__all__ = [
    "ScheduleError",
    "Violation",
    "check_structure",
    "find_violations",
    "repair_schedule",
    "finalize_schedule",
]


class ScheduleError(AssertionError):
    """A schedule failed a structural invariant."""


@dataclass(frozen=True, slots=True)
class Violation:
    producer: NodeId
    consumer: NodeId
    detail: str


def check_structure(schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` on structural breakage (not timing)."""
    dag = schedule.dag
    seen: dict[NodeId, int] = {}
    for pe, stream in enumerate(schedule.streams):
        if not stream or not getattr(stream[0], "is_initial", False):
            raise ScheduleError(f"PE {pe} stream does not start with b0")
        for item in stream:
            if hasattr(item, "participants"):  # Barrier
                if pe not in item.participants:
                    raise ScheduleError(
                        f"barrier {item!r} appears on PE {pe} it does not span"
                    )
                continue
            if item in seen:
                raise ScheduleError(f"node {item!r} scheduled twice")
            seen[item] = pe
    missing = [n for n in dag.real_nodes if n not in seen]
    if missing:
        raise ScheduleError(f"nodes never scheduled: {missing[:5]}...")
    # every barrier must appear on each of its participants' streams
    for barrier in schedule.barriers(include_initial=True):
        for pe in barrier.participants:
            schedule.barrier_position(barrier, pe)  # raises if absent


def find_violations(
    schedule: Schedule, mode: str = "conservative"
) -> list[Violation]:
    """Cross-processor edges not provably safe on the final schedule."""
    violations: list[Violation] = []
    for g, i in schedule.dag.real_edges():
        try:
            verdict = classify_edge(schedule, g, i, mode)
        except ValueError as exc:  # same-PE order inverted
            violations.append(Violation(g, i, str(exc)))
            continue
        if verdict.kind is ResolutionKind.BARRIER:
            violations.append(
                Violation(g, i, "no structural or timing guarantee on final schedule")
            )
    return violations


def repair_schedule(schedule: Schedule, mode: str = "conservative") -> int:
    """Insert plain barriers until no violation remains; return how many
    were added.  Defensive only: the list scheduler is expected to produce
    zero violations."""
    added = 0
    guard = schedule.dag.implied_synchronizations + 1
    for _ in range(guard):
        violations = find_violations(schedule, mode)
        if not violations:
            return added
        v = violations[0]
        placements = choose_safe_placements(schedule, v.producer, v.consumer)
        schedule.insert_barrier(placements)
        schedule.barrier_dag()  # raises immediately if a cycle was created
        added += 1
    raise ScheduleError("repair did not converge")


def finalize_schedule(
    schedule: Schedule, mode: str = "conservative", merge: bool = False
) -> tuple[int, int]:
    """Bring a freshly built schedule to its sound, invariant-satisfying
    final form; return ``(repairs, final_merges)``.

    For SBM schedules (``merge=True``) this alternates the global merge
    sweep (establishing the no-unordered-overlap FIFO invariant) with the
    edge revalidation/repair pass (merging delays barriers, which can in
    principle invalidate an earlier timing proof), until both are stable.
    """
    check_structure(schedule)
    total_repairs = 0
    total_merges = 0
    guard = schedule.dag.implied_synchronizations + len(schedule.barriers()) + 2
    for _ in range(guard):
        if merge:
            with stage("merge"):
                merges = merge_all_overlapping(schedule)
        else:
            merges = 0
        repairs = repair_schedule(schedule, mode)
        total_merges += merges
        total_repairs += repairs
        if merges == 0 and repairs == 0:
            return total_repairs, total_merges
    raise ScheduleError("finalization did not converge")
