"""The schedule under construction: per-processor instruction/barrier streams.

A schedule for an ``n_pes``-processor barrier MIMD assigns every
instruction node of an :class:`~repro.ir.dag.InstructionDAG` to one
processor's *stream* -- an ordered list of instructions interleaved with
:class:`~repro.barriers.model.Barrier` objects.  Every stream begins with
the shared *initial barrier* ``b0`` spanning all processors (the machine
start, section 3.1); a barrier that spans several processors appears in
each of their streams.

From the streams the class derives:

* the **barrier dag** ``(B, <_b)`` with figure 13 region weights,
* its **dominator tree**,
* per-processor **completion intervals** and per-instruction global
  ``[min,max]`` start/finish intervals (fire time of the instruction's
  last preceding barrier plus the trailing region).

Derived views are maintained **incrementally**.  Mutations split into two
classes with very different blast radii:

* *content* mutations (:meth:`append_instruction`) extend the open
  region after a stream's last barrier.  No barrier-dag edge exists for
  that region yet, so the cached dag, dominator tree, and fire times
  stay valid untouched; only the happens-before adjacency gains two
  edges, which are patched in place.
* *structure* mutations (:meth:`insert_barrier`, :meth:`replace_barrier`)
  change the barrier set.  The cached dag **evolves**
  (:meth:`~repro.barriers.dag.BarrierDag.evolved_insert` /
  ``evolved_replace``: fire-time re-propagation limited to the affected
  downstream cone, topological splicing, descendant-bitset patching) and
  the dominator tree is rebuilt only from the first affected node onward
  (:meth:`~repro.barriers.dominators.DominatorTree.evolved` -- the new
  node's idom is the nearest common dominator of its predecessors).

Timing queries (``delta_before``/``delta_through``/``global_finish``/
``completion``) answer in O(1) from per-stream prefix-sum tables
(barriers contribute zero, so a region sum is a difference of two
prefix sums and ``LastBar`` is one array lookup).

Set ``REPRO_CHECK_INCREMENTAL=1`` to cross-check every incremental view
against a scratch rebuild after each mutation (slow; debug/CI only).

The scheduler (:mod:`repro.core.scheduler`) mutates the schedule through
:meth:`append_instruction`, :meth:`insert_barrier` and
:meth:`replace_barrier` (merging) only.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Iterator, Union

from repro import kernels
from repro.barriers.dag import BarrierDag
from repro.barriers.dominators import DominatorTree
from repro.barriers.model import Barrier
from repro.obs.metrics import current_registry
from repro.timing import Interval, ZERO, interval_max
from repro.ir.dag import InstructionDAG, NodeId

__all__ = ["Item", "Schedule"]

#: A stream item: an instruction node id, or a Barrier object.
Item = Union[NodeId, Barrier]

#: A happens-before graph key: ``("n", node)`` or ``("b", barrier_id)``.
HbKey = tuple[str, object]


def _hb_key(item: Item) -> HbKey:
    if isinstance(item, Barrier):
        return ("b", item.id)
    return ("n", item)


class Schedule:
    """Mutable per-processor streams plus incrementally maintained views."""

    def __init__(
        self, dag: InstructionDAG, n_pes: int, barrier_latency: int = 0
    ) -> None:
        if n_pes < 1:
            raise ValueError("n_pes must be >= 1")
        if barrier_latency < 0:
            raise ValueError("barrier_latency must be >= 0")
        self.dag = dag
        self.n_pes = n_pes
        #: Extra time units each non-initial barrier takes to release
        #: after its last arrival (0 = the paper's ideal hardware).
        self.barrier_latency = barrier_latency
        self.initial_barrier = Barrier(0, range(n_pes), is_initial=True)
        self._next_barrier_id = 1
        self.streams: list[list[Item]] = [
            [self.initial_barrier] for _ in range(n_pes)
        ]
        self._processor_of: dict[NodeId, int] = {}
        #: Total mutation count (observability only -- the caches below
        #: are maintained incrementally, not keyed on a revision).
        self.revision = 0
        #: Structure revision: bumped when the *barrier set* changes
        #: (insert/replace).  ``revision - structure_revision`` is the
        #: content revision (instruction appends).
        self.structure_revision = 0
        # -- per-stream auxiliary tables (O(1) queries, patched per mutation)
        #: instruction -> (pe, stream index)
        self._pos: dict[NodeId, tuple[int, int]] = {}
        #: prefix sums of item latencies; barriers contribute 0, so
        #: ``cum[j] - cum[i]`` is the region time of items ``i..j-1``.
        self._cum_lo: list[list[int]] = [[] for _ in range(n_pes)]
        self._cum_hi: list[list[int]] = [[] for _ in range(n_pes)]
        #: position of the last barrier at index <= k
        self._lastbar: list[list[int]] = [[] for _ in range(n_pes)]
        #: sorted positions of the stream's barriers
        self._barpos: list[list[int]] = [[] for _ in range(n_pes)]
        #: barrier id -> position within the stream
        self._barindex: list[dict[int, int]] = [{} for _ in range(n_pes)]
        #: barrier id -> Barrier, every barrier present in some stream
        self._registry: dict[int, Barrier] = {}
        #: (u, v) barrier-id pair -> {pe: (lo, hi) region sum}: the
        #: per-stream contributions whose join is the dag edge weight.
        self._adj_contrib: dict[tuple[int, int], dict[int, tuple[int, int]]] = {}
        # -- derived-view caches: invariantly either None or *current*.
        self._bd_cache: BarrierDag | None = None
        self._dom_cache: DominatorTree | None = None
        self._fire_cache: dict[int, Interval] | None = None
        self._hb_cache: dict[HbKey, list[HbKey]] | None = None
        #: exact multiset mirror of ``_hb_cache`` (v -> [u: v in succs[u]]);
        #: lets the patch paths walk *into* a node without scanning every
        #: adjacency list.  Lives and dies with ``_hb_cache``.
        self._hb_pred_cache: dict[HbKey, list[HbKey]] | None = None
        self._hbdesc_cache: dict[int, frozenset[int]] | None = None
        #: per-PE id of the stream's last barrier and the hi-latency sum
        #: of the instructions after it -- exact at every revision, so
        #: the completion vector (numpy assign kernel) is a gather plus
        #: one vector add instead of an O(n_pes) python walk.
        self._last_bid: list[int] = [0] * n_pes
        self._tail_hi: list[int] = [0] * n_pes
        #: int64 vector of completion_hi(pe) for all PEs (numpy assign
        #: kernel); valid only while ``_comp_vec_rev == revision``.
        #: Appends patch it in place (+lat.hi on one PE); structural
        #: mutations drop it with the fire cache.
        self._comp_vec = None
        self._comp_vec_rev = -1
        self._check = os.environ.get("REPRO_CHECK_INCREMENTAL", "") not in ("", "0")
        self._rebuild_tables()

    # -- bookkeeping -----------------------------------------------------------

    def _bump(self, structure: bool = False) -> None:
        self.revision += 1
        if structure:
            self.structure_revision += 1

    def is_scheduled(self, node: NodeId) -> bool:
        return node in self._processor_of

    def processor_of(self, node: NodeId) -> int:
        return self._processor_of[node]

    @property
    def scheduled_nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._processor_of)

    def position_of(self, node: NodeId) -> tuple[int, int]:
        """``(pe, index)`` of an instruction within its stream."""
        return self._pos[node]

    def instructions_on(self, pe: int) -> list[NodeId]:
        return [it for it in self.streams[pe] if not isinstance(it, Barrier)]

    def last_instruction_on(self, pe: int) -> NodeId | None:
        for item in reversed(self.streams[pe]):
            if not isinstance(item, Barrier):
                return item
        return None

    def barriers(self, include_initial: bool = False) -> list[Barrier]:
        """Distinct barriers in the schedule, by id."""
        out = [
            b
            for b in self._registry.values()
            if include_initial or not b.is_initial
        ]
        out.sort(key=lambda b: b.id)
        return out

    @property
    def n_barriers(self) -> int:
        """Inserted barriers (the initial machine-start barrier excluded):
        the numerator of the paper's *Barrier Synchronization Fraction*."""
        return len(self.barriers(include_initial=False))

    def used_processors(self) -> int:
        """Processors with at least one instruction."""
        return sum(1 for pe in range(self.n_pes) if self.instructions_on(pe))

    # -- auxiliary-table maintenance ---------------------------------------------

    def _rebuild_tables(self) -> None:
        """Recompute every auxiliary table from the streams (construction,
        re-binding) and drop all derived-view caches."""
        self._registry = {}
        for stream in self.streams:
            for item in stream:
                if isinstance(item, Barrier):
                    self._registry.setdefault(item.id, item)
        self._pos = {}
        for pe in range(self.n_pes):
            self._reindex_stream(pe)
        self._rebuild_contrib()
        self._bd_cache = None
        self._dom_cache = None
        self._fire_cache = None
        self._hb_cache = None
        self._hb_pred_cache = None
        self._hbdesc_cache = None
        self._comp_vec = None

    def _reindex_stream(self, pe: int) -> None:
        """Rebuild one stream's prefix sums / barrier-position tables."""
        stream = self.streams[pe]
        dag = self.dag
        cum_lo = [0]
        cum_hi = [0]
        lastbar: list[int] = []
        barpos: list[int] = []
        barindex: dict[int, int] = {}
        pos = self._pos
        lo = hi = 0
        last = -1
        for k, item in enumerate(stream):
            if isinstance(item, Barrier):
                barpos.append(k)
                barindex[item.id] = k
                last = k
            else:
                lat = dag.latency(item)
                lo += lat.lo
                hi += lat.hi
                pos[item] = (pe, k)
            cum_lo.append(lo)
            cum_hi.append(hi)
            lastbar.append(last)
        self._cum_lo[pe] = cum_lo
        self._cum_hi[pe] = cum_hi
        self._lastbar[pe] = lastbar
        self._barpos[pe] = barpos
        self._barindex[pe] = barindex
        self._last_bid[pe] = stream[last].id  # every stream starts with b0
        self._tail_hi[pe] = hi - cum_hi[last + 1]

    def _rebuild_contrib(self) -> None:
        contrib: dict[tuple[int, int], dict[int, tuple[int, int]]] = {}
        dag = self.dag
        for pe, stream in enumerate(self.streams):
            prev: Barrier | None = None
            lo = hi = 0
            for item in stream:
                if isinstance(item, Barrier):
                    if prev is not None:
                        contrib.setdefault((prev.id, item.id), {})[pe] = (lo, hi)
                    prev = item
                    lo = hi = 0
                else:
                    lat = dag.latency(item)
                    lo += lat.lo
                    hi += lat.hi
        self._adj_contrib = contrib

    def _joined_weight(self, pair: tuple[int, int]) -> Interval:
        """Figure 13 join of a dag edge's per-stream region contributions."""
        entry = self._adj_contrib[pair]
        return Interval(
            max(lo for lo, _ in entry.values()),
            max(hi for _, hi in entry.values()),
        )

    # -- mutations ---------------------------------------------------------------

    def append_instruction(self, pe: int, node: NodeId) -> None:
        if node in self._processor_of:
            raise ValueError(f"node {node!r} already scheduled")
        from repro.ir.dag import ENTRY, EXIT  # local import avoids a cycle

        if node == ENTRY or node == EXIT:
            raise ValueError("dummy nodes are never scheduled")
        if node not in self.dag:
            raise ValueError(f"node {node!r} is not in the instruction DAG")
        stream = self.streams[pe]
        idx = len(stream)
        stream.append(node)
        self._processor_of[node] = pe
        self._pos[node] = (pe, idx)
        lat = self.dag.latency(node)
        self._cum_lo[pe].append(self._cum_lo[pe][-1] + lat.lo)
        self._cum_hi[pe].append(self._cum_hi[pe][-1] + lat.hi)
        self._lastbar[pe].append(self._lastbar[pe][-1])
        self._tail_hi[pe] += lat.hi
        self._bump()
        # Exact completion-vector patch: fire times and the last-barrier
        # position are untouched by a content append, so only this PE's
        # completion moves, by exactly the appended latency.
        if self._comp_vec is not None and self._comp_vec_rev == self.revision - 1:
            self._comp_vec[pe] += lat.hi
            self._comp_vec_rev = self.revision
        # A content mutation: the node lands in the open region after the
        # stream's last barrier, which no barrier-dag edge covers yet, so
        # the cached dag / dominator tree / fire times all stay valid.  H
        # gains edges prev->node and producer->node; when the list order
        # is topological (the scheduler guarantees producers are already
        # scheduled) the new node is an H-sink and the barrier descendant
        # sets are untouched too.  An out-of-order append (some consumer
        # already scheduled) would add *outgoing* H edges: drop the H
        # caches then.
        if self._hb_cache is not None or self._hbdesc_cache is not None:
            if any(s in self._processor_of for s in self.dag.real_succs(node)):
                self._hb_cache = None
                self._hb_pred_cache = None
                self._hbdesc_cache = None
            elif self._hb_cache is not None:
                self._patch_hb_append(pe, node)
        if self._check:
            self._verify_incremental()

    def insert_barrier(self, placements: dict[int, int]) -> Barrier:
        """Insert a new barrier before index ``placements[pe]`` in each
        participating processor's stream.  Indices refer to the streams as
        they are *before* the call."""
        if not placements:
            raise ValueError("a barrier needs at least one participant")
        for pe, idx in placements.items():
            stream = self.streams[pe]
            if not 1 <= idx <= len(stream):
                raise ValueError(
                    f"barrier index {idx} out of range on PE {pe} "
                    f"(stream length {len(stream)}; index 0 is b0)"
                )
        barrier = Barrier(self._next_barrier_id, placements.keys())
        self._next_barrier_id += 1
        # Pre-mutation split info: inserting at idx splits the region of
        # the enclosing dag edge (u, v) into (u, b) and (b, v); the two
        # halves are prefix-sum differences.
        splits: list[
            tuple[int, int, int | None, tuple[int, int], tuple[int, int] | None]
        ] = []
        for pe, idx in placements.items():
            stream = self.streams[pe]
            cum_lo, cum_hi = self._cum_lo[pe], self._cum_hi[pe]
            u_pos = self._lastbar[pe][idx - 1]
            u_id = stream[u_pos].id
            barpos = self._barpos[pe]
            k = bisect_left(barpos, idx)
            if k < len(barpos):
                v_pos = barpos[k]
                v_id = stream[v_pos].id
                w_bv = (cum_lo[v_pos] - cum_lo[idx], cum_hi[v_pos] - cum_hi[idx])
            else:
                v_id = None
                w_bv = None
            w_ub = (cum_lo[idx] - cum_lo[u_pos + 1], cum_hi[idx] - cum_hi[u_pos + 1])
            splits.append((pe, u_id, v_id, w_ub, w_bv))
        for pe, idx in placements.items():
            self.streams[pe].insert(idx, barrier)
        for pe in placements:
            self._reindex_stream(pe)
        self._registry[barrier.id] = barrier
        # Contribution-table surgery + the dag edge edits it implies.
        contrib = self._adj_contrib
        touched: set[tuple[int, int]] = set()
        for pe, u_id, v_id, w_ub, w_bv in splits:
            if v_id is not None:
                pair = (u_id, v_id)
                entry = contrib[pair]
                del entry[pe]
                if not entry:
                    del contrib[pair]
                touched.add(pair)
                contrib.setdefault((barrier.id, v_id), {})[pe] = w_bv
                touched.add((barrier.id, v_id))
            contrib.setdefault((u_id, barrier.id), {})[pe] = w_ub
            touched.add((u_id, barrier.id))
        edits: dict[tuple[int, int], Interval | None] = {
            pair: self._joined_weight(pair) if pair in contrib else None
            for pair in touched
        }
        old_bd = self._bd_cache
        old_dom = self._dom_cache
        self._bump(structure=True)
        if old_bd is not None:
            reg = current_registry()
            if reg is not None:
                reg.inc("views.dag.evolved")
                if old_dom is not None:
                    reg.inc("views.dom.evolved")
            new_bd = old_bd.evolved_insert(barrier, edits)
            self._bd_cache = new_bd
            self._dom_cache = (
                DominatorTree.evolved(new_bd, old_dom, (barrier.id,))
                if old_dom is not None
                else None
            )
        else:
            self._dom_cache = None
        self._fire_cache = None
        self._comp_vec = None
        if self._hb_cache is not None:
            self._patch_hb_insert(barrier, placements)
            if self._hbdesc_cache is not None:
                self._patch_hbdesc_insert(barrier)
        else:
            self._hbdesc_cache = None
        if self._check:
            self._verify_incremental()
        return barrier

    def replace_barrier(self, old: Barrier, new: Barrier) -> None:
        """Substitute ``new`` for ``old`` in every stream (merging step).

        The caller is responsible for having called ``new.absorb(old)``
        first so participant bookkeeping stays consistent."""
        if old.is_initial:
            raise ValueError("the initial barrier is never merged away")
        swaps: list[tuple[int, int]] = []
        for pe in range(self.n_pes):
            pos = self._barindex[pe].get(old.id)
            if pos is not None and self.streams[pe][pos] is old:
                swaps.append((pe, pos))
        if not swaps:
            self._bump(structure=True)
            return
        # Pre-mutation neighbors: the swap only relabels one endpoint of
        # the stream's adjacent barrier pairs, region sums are untouched.
        moves: list[tuple[int, int, int, int | None]] = []
        for pe, pos in swaps:
            stream = self.streams[pe]
            barpos = self._barpos[pe]
            k = bisect_left(barpos, pos)
            x_id = stream[barpos[k - 1]].id  # b0 precedes any non-initial barrier
            y_id = stream[barpos[k + 1]].id if k + 1 < len(barpos) else None
            moves.append((pe, pos, x_id, y_id))
        for pe, pos, _, _ in moves:
            self.streams[pe][pos] = new
            barindex = self._barindex[pe]
            del barindex[old.id]
            barindex[new.id] = pos
            if self._last_bid[pe] == old.id:
                self._last_bid[pe] = new.id
        del self._registry[old.id]
        self._registry[new.id] = new
        # Move the per-stream contributions from old-keyed to new-keyed
        # pairs; values are unchanged.
        contrib = self._adj_contrib
        removed: set[tuple[int, int]] = set()
        gained: set[tuple[int, int]] = set()
        for pe, pos, x_id, y_id in moves:
            pairs = [((x_id, old.id), (x_id, new.id))]
            if y_id is not None:
                pairs.append(((old.id, y_id), (new.id, y_id)))
            for old_pair, new_pair in pairs:
                entry = contrib[old_pair]
                value = entry.pop(pe)
                if not entry:
                    del contrib[old_pair]
                removed.add(old_pair)
                contrib.setdefault(new_pair, {})[pe] = value
                gained.add(new_pair)
        edits: dict[tuple[int, int], Interval | None] = {
            pair: None for pair in removed
        }
        for pair in gained:
            edits[pair] = self._joined_weight(pair)
        old_bd = self._bd_cache
        old_dom = self._dom_cache
        self._bump(structure=True)
        if old_bd is not None:
            reg = current_registry()
            if reg is not None:
                reg.inc("views.dag.evolved")
                if old_dom is not None:
                    reg.inc("views.dom.evolved")
            new_bd = old_bd.evolved_replace(old.id, new, edits)
            self._bd_cache = new_bd
            if old_dom is not None:
                affected = {new.id}
                affected.update(v for _, v in edits)
                self._dom_cache = DominatorTree.evolved(new_bd, old_dom, affected)
            else:
                self._dom_cache = None
        else:
            self._dom_cache = None
        self._fire_cache = None
        self._comp_vec = None
        if self._hb_cache is not None:
            self._patch_hb_replace(old, new)
        if self._hbdesc_cache is not None:
            self._patch_hbdesc_replace(old, new)
        if self._check:
            self._verify_incremental()

    # -- happens-before cache patches --------------------------------------------

    @staticmethod
    def _derive_hb_preds(
        succs: dict[HbKey, list[HbKey]]
    ) -> dict[HbKey, list[HbKey]]:
        preds: dict[HbKey, list[HbKey]] = {k: [] for k in succs}
        for key, outs in succs.items():
            for nxt in outs:
                preds[nxt].append(key)
        return preds

    def _patch_hb_append(self, pe: int, node: NodeId) -> None:
        succs = self._hb_cache
        preds = self._hb_pred_cache
        prev_key = _hb_key(self.streams[pe][-2])
        key = ("n", node)
        succs.setdefault(key, [])
        ins = preds.setdefault(key, [])
        outs = succs.setdefault(prev_key, [])
        preds.setdefault(prev_key, [])
        if key not in outs:
            outs.append(key)
            ins.append(prev_key)
        for g in self.dag.real_preds(node):
            if g in self._processor_of:
                gkey = ("n", g)
                succs.setdefault(gkey, []).append(key)
                preds.setdefault(gkey, [])
                ins.append(gkey)

    def _patch_hb_insert(self, barrier: Barrier, placements: dict[int, int]) -> None:
        # The implied prev->next stream edge is deliberately kept: extra
        # transitive edges never change H reachability, and dropping them
        # would need a per-edge membership scan.
        succs = self._hb_cache
        preds = self._hb_pred_cache
        bkey = ("b", barrier.id)
        succs.setdefault(bkey, [])
        bins = preds.setdefault(bkey, [])
        for pe, idx in placements.items():
            stream = self.streams[pe]
            pkey = _hb_key(stream[idx - 1])
            outs = succs.setdefault(pkey, [])
            preds.setdefault(pkey, [])
            if bkey not in outs:
                outs.append(bkey)
                bins.append(pkey)
            if idx + 1 < len(stream):
                nxt = _hb_key(stream[idx + 1])
                bouts = succs[bkey]
                if nxt not in bouts:
                    bouts.append(nxt)
                    preds.setdefault(nxt, []).append(bkey)

    def _patch_hb_replace(self, old: Barrier, new: Barrier) -> None:
        succs = self._hb_cache
        preds = self._hb_pred_cache
        okey, nkey = ("b", old.id), ("b", new.id)
        old_outs = succs.pop(okey, [])
        new_outs = succs.setdefault(nkey, [])
        nins = preds.setdefault(nkey, [])
        for k in old_outs:
            preds[k].remove(okey)
            if k != nkey and k not in new_outs:
                new_outs.append(k)
                preds[k].append(nkey)
        # Rewrite every edge into the victim.  Stream adjacencies put the
        # victim only in its swap streams' predecessor lists, but kept
        # implied edges (see _patch_hb_insert) may reference it from
        # items that are no longer adjacent; the pred mirror names every
        # referrer, so no full adjacency scan is needed.  (A barrier has
        # no duplicate in-edges: stream adjacency and the kept implied
        # edges are both inserted with membership checks, and data edges
        # only link instructions.)
        for p in preds.pop(okey, []):
            outs = succs[p]
            if nkey in outs:
                outs.remove(okey)
            else:
                outs[outs.index(okey)] = nkey
                nins.append(p)

    def _patch_hbdesc_insert(self, barrier: Barrier) -> None:
        # Every H edge the insert adds is incident to the new barrier, so
        # all *new* reachability routes through it: the new barrier's own
        # closure is a forward walk, its H-ancestors gain that closure
        # plus the new id, and every other descendant set is unchanged.
        # (Called after _patch_hb_insert, so the graph includes the new
        # barrier already.)
        desc = self._hbdesc_cache
        succs = self._hb_cache
        bkey = ("b", barrier.id)
        forward: set[int] = set()
        seen: set[HbKey] = {bkey}
        stack: list[HbKey] = [bkey]
        while stack:
            for nxt in succs.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    if nxt[0] == "b":
                        forward.add(nxt[1])
                    stack.append(nxt)
        preds = self._hb_pred_cache
        gain: set[int] = set()
        seen = {bkey}
        stack = [bkey]
        while stack:
            for prv in preds.get(stack.pop(), ()):
                if prv not in seen:
                    seen.add(prv)
                    if prv[0] == "b":
                        gain.add(prv[1])
                    stack.append(prv)
        closure = frozenset(forward | {barrier.id})
        patched = {
            bid: (d | closure if bid in gain else d) for bid, d in desc.items()
        }
        patched[barrier.id] = frozenset(forward)
        self._hbdesc_cache = patched

    def _patch_hbdesc_replace(self, old: Barrier, new: Barrier) -> None:
        desc = self._hbdesc_cache
        d_old = desc.get(old.id, frozenset())
        d_new = desc.get(new.id, frozenset())
        if new.id in d_old or old.id in d_new:
            # Fusing H-ordered barriers (never done by SBM merging, which
            # only merges H-unordered candidates) collapses a chain; the
            # closure-union patch below assumes unordered.  Recompute.
            self._hbdesc_cache = None
            return
        # Every node that reached either endpoint now reaches the fused
        # barrier and, transitively, the union of both closures.
        fused = d_old | d_new
        patched: dict[int, frozenset[int]] = {}
        for bid, d in desc.items():
            if bid == old.id:
                continue
            if bid == new.id:
                patched[bid] = frozenset(fused)
            elif old.id in d or new.id in d:
                patched[bid] = frozenset((d | fused | {new.id}) - {old.id})
            else:
                patched[bid] = d
        self._hbdesc_cache = patched

    # -- re-binding (ε-hardening support) ---------------------------------------

    def with_dag(self, dag: InstructionDAG) -> "Schedule":
        """A deep copy of this schedule bound to a different latency table.

        ``dag`` must contain every scheduled node (same node ids, same
        edges -- typically an ε-inflated variant built by
        :func:`repro.faults.model.inflate_dag`).  Barrier objects are
        cloned, not shared: barriers are mutable (merging widens their
        participant sets), so insertions and merges performed on the copy
        must never leak back into this schedule.
        """
        missing = [n for n in self._processor_of if n not in dag]
        if missing:
            raise ValueError(
                f"target DAG is missing scheduled nodes: {missing[:5]}..."
            )
        clone = Schedule(dag, self.n_pes, self.barrier_latency)
        copies: dict[int, Barrier] = {}
        for old in (self.initial_barrier, *self.barriers()):
            copy = Barrier(old.id, old.participants, is_initial=old.is_initial)
            copy.merged_from = list(old.merged_from)
            copies[old.id] = copy
        clone.initial_barrier = copies[self.initial_barrier.id]
        clone.streams = [
            [copies[item.id] if isinstance(item, Barrier) else item for item in stream]
            for stream in self.streams
        ]
        clone._processor_of = dict(self._processor_of)
        clone._next_barrier_id = self._next_barrier_id
        clone._rebuild_tables()
        clone._bump(structure=True)
        return clone

    # -- stream navigation ----------------------------------------------------------

    def last_barrier_before(self, pe: int, idx: int) -> Barrier:
        """``LastBar``: the nearest barrier at a position ``< idx`` on ``pe``.
        Always exists because every stream starts with ``b0``."""
        k = min(idx, len(self.streams[pe])) - 1
        if k < 0:
            raise AssertionError("stream missing its initial barrier")
        return self.streams[pe][self._lastbar[pe][k]]

    def next_barrier_after(self, pe: int, idx: int) -> Barrier | None:
        """``NextBar``: the nearest barrier at a position ``> idx``, if any."""
        barpos = self._barpos[pe]
        k = bisect_right(barpos, idx)
        if k < len(barpos):
            return self.streams[pe][barpos[k]]
        return None

    def barrier_position(self, barrier: Barrier, pe: int) -> int:
        pos = self._barindex[pe].get(barrier.id)
        if pos is None or self.streams[pe][pos] is not barrier:
            raise ValueError(f"barrier {barrier!r} not on PE {pe}")
        return pos

    def region_after(self, pe: int, barrier: Barrier) -> list[NodeId]:
        """Instructions on ``pe`` strictly after ``barrier`` up to the next
        barrier (or the end of the stream)."""
        stream = self.streams[pe]
        start = self.barrier_position(barrier, pe) + 1
        region: list[NodeId] = []
        for item in stream[start:]:
            if isinstance(item, Barrier):
                break
            region.append(item)
        return region

    # -- delta times (section 4.4.1 steps [3] and [4]) ----------------------------
    #
    # All O(1): barriers contribute zero latency, so a region sum is a
    # difference of two prefix sums and LastBar is one table lookup.

    def delta_through(self, node: NodeId) -> Interval:
        """Region time from just after ``LastBar(node)`` up to *and
        including* ``node``: ``delta_max`` uses ``.hi``, ``delta_min``
        uses ``.lo``."""
        pe, idx = self._pos[node]
        j = self._lastbar[pe][idx]
        cl, ch = self._cum_lo[pe], self._cum_hi[pe]
        return Interval(cl[idx + 1] - cl[j + 1], ch[idx + 1] - ch[j + 1])

    def delta_before(self, pe: int, idx: int) -> Interval:
        """Region time from just after the last barrier before ``idx`` up to
        but *excluding* the item at ``idx`` (the paper's
        ``delta(i-)`` quantities)."""
        i = min(idx, len(self.streams[pe]))
        if i <= 0:
            return ZERO
        j = self._lastbar[pe][i - 1]
        cl, ch = self._cum_lo[pe], self._cum_hi[pe]
        return Interval(cl[i] - cl[j + 1], ch[i] - ch[j + 1])

    def delta_through_hi(self, node: NodeId) -> int:
        """``delta_max`` through ``node`` as a bare int (hot-path variant
        of :meth:`delta_through` that allocates no Interval)."""
        pe, idx = self._pos[node]
        ch = self._cum_hi[pe]
        return ch[idx + 1] - ch[self._lastbar[pe][idx] + 1]

    def delta_before_lo(self, pe: int, idx: int) -> int:
        """``delta_min`` before index ``idx`` as a bare int."""
        i = min(idx, len(self.streams[pe]))
        if i <= 0:
            return 0
        cl = self._cum_lo[pe]
        return cl[i] - cl[self._lastbar[pe][i - 1] + 1]

    def delta_before_hi(self, pe: int, idx: int) -> int:
        """``delta_max`` before index ``idx`` as a bare int."""
        i = min(idx, len(self.streams[pe]))
        if i <= 0:
            return 0
        ch = self._cum_hi[pe]
        return ch[i] - ch[self._lastbar[pe][i - 1] + 1]

    # -- derived views, maintained incrementally --------------------------------------

    def barrier_dag(self) -> BarrierDag:
        if self._bd_cache is None:
            reg = current_registry()
            if reg is not None:
                reg.inc("views.dag.scratch")
            self._bd_cache = self._scratch_barrier_dag()
        return self._bd_cache

    def _scratch_barrier_dag(self) -> BarrierDag:
        """Full rebuild from the streams (cold cache, and the debug-mode
        reference the incremental snapshots are checked against)."""
        region: dict[tuple[int, int], Interval] = {}
        barriers: dict[int, Barrier] = {self.initial_barrier.id: self.initial_barrier}
        for stream in self.streams:
            prev: Barrier | None = None
            acc = ZERO
            for item in stream:
                if isinstance(item, Barrier):
                    barriers.setdefault(item.id, item)
                    if prev is not None:
                        key = (prev.id, item.id)
                        joined = region.get(key)
                        region[key] = acc if joined is None else joined.join(acc)
                    prev = item
                    acc = ZERO
                else:
                    acc = acc + self.dag.latency(item)
        return BarrierDag(
            barriers.values(), region, self.initial_barrier, self.barrier_latency
        )

    def dominator_tree(self) -> DominatorTree:
        if self._dom_cache is None:
            reg = current_registry()
            if reg is not None:
                reg.inc("views.dom.scratch")
            self._dom_cache = DominatorTree(self.barrier_dag())
        return self._dom_cache

    def fire_times(self) -> dict[int, Interval]:
        if self._fire_cache is None:
            self._fire_cache = self.barrier_dag().fire_times()
        return self._fire_cache

    # -- the combined happens-before graph H ------------------------------------------
    #
    # Nodes: every scheduled instruction and every barrier.  Edges: stream
    # adjacency (consecutive items on each processor, through barriers) and
    # every committed producer/consumer data edge.  H is the complete
    # "happens-before" relation the schedule promises; it must stay acyclic
    # at all times -- a barrier insertion or merge that would make H cyclic
    # would force some consumer before its producer, which no amount of
    # further barrier insertion can repair.
    #
    # The cached adjacency is patched in place across mutations.  Barrier
    # insertion keeps the now-implied prev->next stream edge, so the cache
    # can be a *supergraph* of the scratch adjacency -- every extra edge is
    # transitively implied, so reachability (the only thing H is queried
    # for) is identical.

    def hb_successors(self) -> dict[HbKey, list[HbKey]]:
        """Adjacency of H.  Keys are ``("n", node)`` / ``("b", barrier_id)``."""
        if self._hb_cache is None:
            self._hb_cache = self._scratch_hb_successors()
            self._hb_pred_cache = self._derive_hb_preds(self._hb_cache)
        return self._hb_cache

    def _scratch_hb_successors(self) -> dict[HbKey, list[HbKey]]:
        succs: dict[HbKey, list[HbKey]] = {}
        for stream in self.streams:
            prev_key: HbKey | None = None
            for item in stream:
                key = _hb_key(item)
                succs.setdefault(key, [])
                if prev_key is not None and key not in succs[prev_key]:
                    succs[prev_key].append(key)
                prev_key = key
        for g, i in self.dag.real_edges():
            if g in self._processor_of and i in self._processor_of:
                succs.setdefault(("n", g), []).append(("n", i))
        return succs

    def hb_reachable(self, src: HbKey, dst: HbKey) -> bool:
        """True iff ``src`` happens-before ``dst`` (or they are equal)."""
        if src == dst:
            return True
        succs = self.hb_successors()
        seen = {src}
        stack = [src]
        while stack:
            for nxt in succs.get(stack.pop(), ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def hb_barrier_ordered(self, a: int, b: int) -> bool:
        """True iff barriers ``a`` and ``b`` are comparable in H."""
        if a == b:
            return True
        desc = self.hb_barrier_descendants()
        return b in desc[a] or a in desc[b]

    def hb_barrier_descendants(self) -> dict[int, frozenset[int]]:
        """For each barrier, the set of barrier ids it happens-before.

        Computed in a single reverse-topological sweep over H with integer
        bitsets, then patched in place across appends, barrier insertions,
        and merges.
        """
        if self._hbdesc_cache is None:
            self._hbdesc_cache = self._scratch_hb_barrier_descendants(
                self.hb_successors()
            )
        return self._hbdesc_cache

    def _hb_topo_order(self, succs: dict[HbKey, list[HbKey]]) -> list[HbKey]:
        # Kahn topological order of H (acyclic by construction).
        in_deg: dict[HbKey, int] = {k: 0 for k in succs}
        for outs in succs.values():
            for nxt in outs:
                in_deg[nxt] = in_deg.get(nxt, 0) + 1
        frontier = [k for k, d in in_deg.items() if d == 0]
        order: list[HbKey] = []
        while frontier:
            key = frontier.pop()
            order.append(key)
            for nxt in succs.get(key, ()):
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(in_deg):
            raise AssertionError("happens-before graph H contains a cycle")
        return order

    def _scratch_hb_barrier_descendants(
        self, succs: dict[HbKey, list[HbKey]]
    ) -> dict[int, frozenset[int]]:
        order = self._hb_topo_order(succs)

        barrier_ids = [b.id for b in self.barriers(include_initial=True)]
        bit_of = {bid: 1 << k for k, bid in enumerate(barrier_ids)}
        mask: dict[HbKey, int] = {}
        for key in reversed(order):
            acc = 0
            for nxt in succs.get(key, ()):
                acc |= mask.get(nxt, 0)
                if nxt[0] == "b":
                    acc |= bit_of[nxt[1]]
            mask[key] = acc

        result: dict[int, frozenset[int]] = {}
        for bid in barrier_ids:
            bits = mask.get(("b", bid), 0)
            result[bid] = frozenset(
                other for other in barrier_ids if bits & bit_of[other]
            )
        return result

    def hb_descendants_cold(self) -> bool:
        """True when :meth:`hb_barrier_descendants` would run the full
        scratch sweep (cache empty) -- the batched driver batches those
        sweeps across a corpus chunk."""
        return self._hbdesc_cache is None

    def hb_reach_inputs(self):
        """The scratch H sweep as batched-reachability inputs.

        Returns ``(succ_idx, self_bits, barrier_ids, barrier_pos)``:
        successor topological positions per H node, the per-position
        barrier bit masks (``1 << barrier index`` for barrier nodes,
        0 for instruction nodes), the barrier ids in bit order, and
        each barrier's position.  Feeding these to
        :func:`repro.kernels.batch.reach_batch` computes exactly the
        bitset sweep of :meth:`_scratch_hb_barrier_descendants`.
        """
        succs = self.hb_successors()
        order = self._hb_topo_order(succs)
        barrier_ids = [b.id for b in self.barriers(include_initial=True)]
        bit_of = {bid: 1 << k for k, bid in enumerate(barrier_ids)}
        pos = {key: i for i, key in enumerate(order)}
        succ_idx = [
            [pos[nxt] for nxt in succs.get(key, ())] for key in order
        ]
        self_bits = [
            bit_of[key[1]] if key[0] == "b" else 0 for key in order
        ]
        barrier_pos = [pos[("b", bid)] for bid in barrier_ids]
        return succ_idx, self_bits, barrier_ids, barrier_pos

    def adopt_hb_descendants(
        self, rows: list[int], barrier_ids: list[int], barrier_pos: list[int]
    ) -> None:
        """Install a batch-computed descendant closure as the cache.

        ``rows`` are the reachability bitsets for the ``hb_reach_inputs``
        positions; the extraction below mirrors the tail of
        :meth:`_scratch_hb_barrier_descendants`, so the adopted cache is
        exactly what the scratch sweep would have produced.
        """
        bit_of = {bid: 1 << k for k, bid in enumerate(barrier_ids)}
        result: dict[int, frozenset[int]] = {}
        for bid, p in zip(barrier_ids, barrier_pos):
            bits = rows[p]
            result[bid] = frozenset(
                other for other in barrier_ids if bits & bit_of[other]
            )
        self._hbdesc_cache = result

    def insertion_creates_hb_cycle(self, placements: dict[int, int]) -> bool:
        """Would inserting a barrier at ``placements`` make H cyclic?

        The new barrier's H-predecessors are the items just before each
        insertion point and its successors the items at each point; a
        cycle appears iff some successor already reaches some predecessor.
        """

        def key_at(pe: int, idx: int) -> HbKey | None:
            stream = self.streams[pe]
            if 0 <= idx < len(stream):
                return _hb_key(stream[idx])
            return None

        preds = [key_at(pe, idx - 1) for pe, idx in placements.items()]
        succs = [key_at(pe, idx) for pe, idx in placements.items()]
        for s in succs:
            if s is None:
                continue
            for p in preds:
                if p is None:
                    continue
                # p == s: the same (multi-processor) barrier sits just
                # before one insertion point and just after another, so
                # the new barrier would be ordered both ways against it.
                if p == s or self.hb_reachable(s, p):
                    return True
        return False

    # -- global timing queries --------------------------------------------------------

    def global_finish(self, node: NodeId) -> Interval:
        """``[min,max]`` finish time of ``node`` measured from machine start
        (conservative: via its last preceding barrier's fire time)."""
        pe, idx = self._pos[node]
        last = self.streams[pe][self._lastbar[pe][idx]]
        return self.fire_times()[last.id] + self.delta_through(node)

    def global_finish_hi(self, node: NodeId) -> int:
        """Upper bound of :meth:`global_finish` as a bare int (hot path:
        the scheduler's producer ordering and start estimates)."""
        pe, idx = self._pos[node]
        j = self._lastbar[pe][idx]
        ch = self._cum_hi[pe]
        return (
            self.fire_times()[self.streams[pe][j].id].hi + ch[idx + 1] - ch[j + 1]
        )

    def global_start(self, node: NodeId) -> Interval:
        """``[min,max]`` start time of ``node`` from machine start."""
        pe, idx = self._pos[node]
        last = self.streams[pe][self._lastbar[pe][idx]]
        return self.fire_times()[last.id] + self.delta_before(pe, idx)

    def completion(self, pe: int) -> Interval:
        """``[min,max]`` time at which processor ``pe`` finishes its stream."""
        stream = self.streams[pe]
        last_bar = self.last_barrier_before(pe, len(stream))
        trailing = self.delta_before(pe, len(stream))
        return self.fire_times()[last_bar.id] + trailing

    def completion_hi(self, pe: int) -> int:
        """Upper bound of :meth:`completion` as a bare int."""
        stream = self.streams[pe]
        n = len(stream)
        j = self._lastbar[pe][n - 1]
        ch = self._cum_hi[pe]
        return self.fire_times()[stream[j].id].hi + ch[n] - ch[j + 1]

    def completion_hi_all(self):
        """:meth:`completion_hi` of every PE as one shared int64 numpy
        vector (the assignment kernel's hot input).  Callers must not
        mutate the returned array.

        The per-PE last-barrier ids and post-barrier latency sums are
        maintained exactly across mutations, so the rebuild is a fire
        gather plus one vector add -- O(barriers + n_pes array ops),
        never an O(n_pes) python walk.
        """
        if self._comp_vec is not None and self._comp_vec_rev == self.revision:
            return self._comp_vec
        np = kernels.numpy()
        fire_hi = np.zeros(self._next_barrier_id, dtype=np.int64)
        for bid, window in self.fire_times().items():
            fire_hi[bid] = window.hi
        vec = fire_hi[np.asarray(self._last_bid, dtype=np.int64)]
        vec += np.asarray(self._tail_hi, dtype=np.int64)
        self._comp_vec = vec
        self._comp_vec_rev = self.revision
        return vec

    def makespan(self) -> Interval:
        """``[min,max]`` completion time of the whole schedule."""
        return interval_max(self.completion(pe) for pe in range(self.n_pes))

    # -- debug cross-checks (REPRO_CHECK_INCREMENTAL=1) --------------------------------

    def _verify_incremental(self) -> None:
        """Compare every maintained table and live cache against a scratch
        rebuild; raise AssertionError on the first divergence.

        Outcomes are surfaced as obs counters (``views.check.checked``
        counts view cross-checks performed, ``views.check.mismatches``
        counts divergences) so a ``REPRO_CHECK_INCREMENTAL=1`` run can
        report how much it actually verified instead of passing
        silently.
        """
        reg = current_registry()
        try:
            checked = self._cross_check_views()
        except AssertionError:
            if reg is not None:
                reg.inc("views.check.mismatches")
            raise
        if reg is not None:
            reg.inc("views.check.checked", checked)

    def _cross_check_views(self) -> int:
        """The actual cross-checks; returns how many views were compared."""
        checked = 1
        self._verify_stream_tables()
        scratch_bd: BarrierDag | None = None
        if self._bd_cache is not None:
            checked += 1
            scratch_bd = self._scratch_barrier_dag()
            self._verify_dag(self._bd_cache, scratch_bd)
        if self._dom_cache is not None:
            checked += 1
            if scratch_bd is None:
                scratch_bd = self._scratch_barrier_dag()
            expect = DominatorTree(scratch_bd)._idom
            if self._dom_cache._idom != expect:
                raise AssertionError(
                    f"incremental dominators diverged: {self._dom_cache._idom} "
                    f"!= {expect}"
                )
        if self._fire_cache is not None:
            checked += 1
            if scratch_bd is None:
                scratch_bd = self._scratch_barrier_dag()
            if self._fire_cache != scratch_bd.fire_times():
                raise AssertionError("cached fire times diverged from scratch")
        if self._hb_cache is not None or self._hbdesc_cache is not None:
            scratch_hb = self._scratch_hb_successors()
            if self._hb_cache is not None:
                checked += 1
                self._verify_hb(self._hb_cache, scratch_hb)
                derived = self._derive_hb_preds(self._hb_cache)
                actual = self._hb_pred_cache or {}
                for key in derived.keys() | actual.keys():
                    want = sorted(map(repr, derived.get(key, [])))
                    have = sorted(map(repr, actual.get(key, [])))
                    if want != have:
                        raise AssertionError(
                            f"hb pred mirror diverged at {key}: "
                            f"{have} != {want}"
                        )
            if self._hbdesc_cache is not None:
                checked += 1
                expect_desc = self._scratch_hb_barrier_descendants(scratch_hb)
                if self._hbdesc_cache != expect_desc:
                    raise AssertionError(
                        "patched barrier descendant sets diverged from scratch"
                    )
        return checked

    def _verify_stream_tables(self) -> None:
        registry: dict[int, Barrier] = {}
        for stream in self.streams:
            for item in stream:
                if isinstance(item, Barrier):
                    registry.setdefault(item.id, item)
        if registry.keys() != self._registry.keys() or any(
            registry[bid] is not self._registry[bid] for bid in registry
        ):
            raise AssertionError("barrier registry diverged from streams")
        pos: dict[NodeId, tuple[int, int]] = {}
        for pe, stream in enumerate(self.streams):
            cum_lo = [0]
            cum_hi = [0]
            lastbar: list[int] = []
            barpos: list[int] = []
            barindex: dict[int, int] = {}
            lo = hi = 0
            last = -1
            for k, item in enumerate(stream):
                if isinstance(item, Barrier):
                    barpos.append(k)
                    barindex[item.id] = k
                    last = k
                else:
                    lat = self.dag.latency(item)
                    lo += lat.lo
                    hi += lat.hi
                    pos[item] = (pe, k)
                cum_lo.append(lo)
                cum_hi.append(hi)
                lastbar.append(last)
            if (
                cum_lo != self._cum_lo[pe]
                or cum_hi != self._cum_hi[pe]
                or lastbar != self._lastbar[pe]
                or barpos != self._barpos[pe]
                or barindex != self._barindex[pe]
            ):
                raise AssertionError(f"stream tables diverged on PE {pe}")
        if pos != self._pos:
            raise AssertionError("instruction position table diverged")
        contrib = self._adj_contrib
        self._rebuild_contrib()
        if contrib != self._adj_contrib:
            raise AssertionError("edge contribution table diverged")
        self._adj_contrib = contrib

    @staticmethod
    def _verify_dag(evolved: BarrierDag, scratch: BarrierDag) -> None:
        if evolved._barriers.keys() != scratch._barriers.keys():
            raise AssertionError("evolved dag barrier set diverged")
        if evolved._weight != scratch._weight:
            raise AssertionError("evolved dag edge weights diverged")
        index = evolved._order_index
        for (u, v) in evolved._weight:
            if index[u] >= index[v]:
                raise AssertionError(
                    f"evolved topological order violates edge ({u},{v})"
                )
        if evolved._topo[0] != evolved.initial.id:
            raise AssertionError("evolved topological order must start at b0")
        if evolved._fire is not None and dict(evolved._fire) != scratch.fire_times():
            raise AssertionError("evolved fire times diverged")
        if evolved._desc_bits is not None:
            topo = evolved._topo
            for k, word in enumerate(evolved._desc_bits):
                got = {topo[i] for i in range(len(topo)) if (word >> i) & 1}
                if got != scratch.descendants(topo[k]):
                    raise AssertionError(
                        f"patched descendant bitset diverged for barrier {topo[k]}"
                    )

    @staticmethod
    def _verify_hb(
        patched: dict[HbKey, list[HbKey]], scratch: dict[HbKey, list[HbKey]]
    ) -> None:
        if patched.keys() != scratch.keys():
            raise AssertionError("patched H node set diverged")
        # The patched adjacency may keep transitively-implied edges; it is
        # correct iff it is a supergraph whose extras are already implied
        # by the scratch graph (then reachability is identical).
        for key, outs in scratch.items():
            missing = [k for k in outs if k not in patched[key]]
            if missing:
                raise AssertionError(f"patched H lost edges {key} -> {missing}")
        for key, outs in patched.items():
            base = scratch[key]
            for extra in outs:
                if extra in base:
                    continue
                seen = {key}
                stack = [key]
                found = False
                while stack and not found:
                    for nxt in scratch.get(stack.pop(), ()):
                        if nxt == extra:
                            found = True
                            break
                        if nxt not in seen:
                            seen.add(nxt)
                            stack.append(nxt)
                if not found:
                    raise AssertionError(
                        f"patched H edge {key} -> {extra} is not implied"
                    )

    # -- rendering -----------------------------------------------------------------------

    def render(self) -> str:
        """Text dump: one line per processor stream."""
        lines = []
        for pe, stream in enumerate(self.streams):
            parts = []
            for item in stream:
                if isinstance(item, Barrier):
                    parts.append(f"|b{item.id}|")
                else:
                    parts.append(str(item))
            lines.append(f"PE{pe}: " + " ".join(parts))
        return "\n".join(lines)

    def __iter__(self) -> Iterator[tuple[int, list[Item]]]:
        return iter(enumerate(self.streams))
